//! M01 — the zero-external-dependency gate.
//!
//! Tier-1 must build with `CARGO_NET_OFFLINE=true`, so every entry in a
//! dependency table of any `Cargo.toml` must resolve inside the
//! workspace: either a `path = "…"` dependency, a `key.workspace = true`
//! inheritance, or (in `[workspace.dependencies]`) a `path` definition.
//! Anything that would hit a registry is an M01 diagnostic.
//!
//! This is a purpose-built line scanner, not a TOML parser: the
//! workspace's manifests are plain `key = value` tables, which is all we
//! accept. A manifest exotic enough to confuse the scanner should fail
//! loudly, not pass silently.

use crate::rules::Diagnostic;

/// True for `[section]` headers naming a dependency-like table, e.g.
/// `dependencies`, `dev-dependencies`, `workspace.dependencies`,
/// `target.'cfg(unix)'.dependencies`, `dependencies.odlb-core`.
fn is_dependency_section(name: &str) -> bool {
    name.split('.').any(|seg| {
        matches!(
            seg,
            "dependencies" | "dev-dependencies" | "build-dependencies"
        )
    })
}

/// Checks one manifest. `file` is the workspace-relative path used in
/// diagnostics.
pub fn check_manifest(file: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut section = String::new();
    // For `[dependencies.foo]` sub-tables the whole table is one entry:
    // it is vendored iff any line inside is `path = …` or
    // `workspace = true`.
    let mut subtable: Option<(u32, String, bool)> = None;

    let flush_subtable = |sub: &mut Option<(u32, String, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((line, name, vendored)) = sub.take() {
            if !vendored {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line,
                    rule: "M01",
                    message: format!(
                        "dependency table `[{name}]` has no `path` or `workspace = true`; \
                         external dependencies are forbidden (offline tier-1)"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            flush_subtable(&mut subtable, &mut out);
            section = line
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .to_string();
            if is_dependency_section(&section) && section.split('.').count() > 1 {
                // `[dependencies.foo]`-style sub-table — but not
                // `[workspace.dependencies]`, where the last segment is
                // the table itself.
                let last = section.rsplit('.').next().unwrap_or("");
                if !matches!(
                    last,
                    "dependencies" | "dev-dependencies" | "build-dependencies"
                ) {
                    subtable = Some((line_no, section.clone(), false));
                }
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }

        if let Some((_, _, vendored)) = subtable.as_mut() {
            if line.starts_with("path") || line == "workspace = true" {
                *vendored = true;
            }
            continue;
        }

        // `key = value` inside a flat dependency table.
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let vendored = (key.ends_with(".workspace") && value.starts_with("true"))
            || value.contains("path =")
            || value.contains("path=")
            || value.contains("workspace = true")
            || value.contains("workspace=true");
        if !vendored {
            out.push(Diagnostic {
                file: file.to_string(),
                line: line_no,
                rule: "M01",
                message: format!(
                    "`{key}` in [{section}] is not a path/workspace dependency; external \
                     dependencies are forbidden (offline tier-1)"
                ),
                chain: Vec::new(),
            });
        }
    }
    flush_subtable(&mut subtable, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let toml = "\
[package]
name = \"x\"

[dependencies]
odlb-core = { workspace = true }
odlb-sim.workspace = true
local = { path = \"../local\" }

[workspace.dependencies]
odlb-core = { path = \"crates/core\" }
";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_deps_fail() {
        let toml = "\
[dependencies]
serde = \"1.0\"
rand = { version = \"0.8\", features = [\"small_rng\"] }
";
        let got = check_manifest("Cargo.toml", toml);
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|d| d.rule == "M01"));
        assert_eq!(got[0].line, 2);
        assert_eq!(got[1].line, 3);
    }

    #[test]
    fn dev_and_build_dependencies_are_gated_too() {
        let toml = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        assert_eq!(check_manifest("c", toml).len(), 1);
        let toml = "[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(check_manifest("c", toml).len(), 1);
    }

    #[test]
    fn dependency_subtables_need_path_or_workspace() {
        let good = "[dependencies.odlb-core]\npath = \"../core\"\n";
        assert!(check_manifest("c", good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let got = check_manifest("c", bad);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "M01");
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nversion = \"0.1.0\"\n\n[features]\ndefault = []\n";
        assert!(check_manifest("c", toml).is_empty());
    }
}
