//! The workspace call graph.
//!
//! Links the per-file item tables from [`crate::parse`] into one graph:
//! every `fn` in every policy-covered file becomes a node, and every
//! call expression becomes an edge to the node(s) it can refer to.
//!
//! Name resolution is best-effort and *over-approximating* — exactly the
//! right bias for taint checking:
//!
//! - Same-crate paths resolve exactly (module-relative, then crate
//!   root), with `crate::` / `self::` / `super::` normalised away.
//! - Cross-crate paths resolve through `use` imports and the workspace's
//!   `crates/<dir>` → `odlb_<dir>` naming convention; re-exports are
//!   handled by suffix-matching the path inside the target crate.
//! - Method calls (`.m(…)`) have no receiver type, so they link to
//!   *every* workspace method named `m` — a deliberate union.
//! - Calls that resolve to nothing in the workspace (std, primitives)
//!   are recorded per node as unresolved, so the taint layer can stay
//!   honest about what it did not see.
//!
//! Everything is ordered (BTreeMap, sorted edge lists) so downstream
//! output is byte-identical across runs.

use crate::lexer::Lexed;
use crate::parse::{Callee, ParsedFile};
use std::collections::BTreeMap;

/// One analyzed source file: path, tokens and its parsed item table.
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The lexed token stream (taint scans bodies through this).
    pub lexed: Lexed,
    /// The parsed item skeleton.
    pub parsed: ParsedFile,
}

/// One function node in the workspace call graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Fully-qualified id, e.g. `odlb_trace::sink::fnv1a64`.
    pub id: String,
    /// Index of the defining [`FileUnit`].
    pub file_idx: usize,
    /// Index into that unit's `parsed.fns`.
    pub fn_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Resolved callees as node indices, sorted and deduplicated.
    pub callees: Vec<usize>,
    /// Callee names that resolved to nothing in the workspace, sorted
    /// and deduplicated (std and primitive calls land here).
    pub unresolved: Vec<String>,
}

/// The workspace call graph over a set of [`FileUnit`]s.
pub struct CallGraph {
    /// All nodes, ordered by (file, declaration order).
    pub nodes: Vec<FnNode>,
}

/// Maps a workspace-relative path to `(crate id, module path)` following
/// cargo's layout conventions. Binary targets get a `#bin` suffix so
/// their items can never collide with the sibling library's.
pub fn crate_and_module(rel: &str) -> Option<(String, Vec<String>)> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest): (String, &[&str]) =
        if parts.len() > 3 && parts[0] == "crates" && parts[2] == "src" {
            (format!("odlb_{}", parts[1].replace('-', "_")), &parts[3..])
        } else if parts.len() > 1 && parts[0] == "src" {
            ("odlb".to_string(), &parts[1..])
        } else {
            return None;
        };
    let mut rest = rest.to_vec();
    if rest.first() == Some(&"bin") {
        let name = rest.get(1)?.trim_end_matches(".rs");
        return Some((format!("{krate}#bin_{name}"), Vec::new()));
    }
    let last = rest.pop()?;
    let mut module: Vec<String> = rest.iter().map(|s| (*s).to_string()).collect();
    match last {
        "lib.rs" | "mod.rs" => {}
        "main.rs" => return Some((format!("{krate}#main"), module)),
        f => module.push(f.trim_end_matches(".rs").to_string()),
    }
    Some((krate, module))
}

/// Strips the lexer's `r#` raw-identifier prefix for name matching.
fn plain(seg: &str) -> &str {
    seg.strip_prefix("r#").unwrap_or(seg)
}

struct Resolver<'a> {
    units: &'a [FileUnit],
    /// (crate, terminal segment) → candidate node indices.
    by_terminal: BTreeMap<(String, String), Vec<usize>>,
    /// Exact fully-qualified id → node indices (trait impls can share).
    by_id: BTreeMap<String, Vec<usize>>,
    /// Method name → node indices of all `impl`/`trait` fns with it.
    methods: BTreeMap<String, Vec<usize>>,
    /// Segments of each node: crate first, then modules/type/fn.
    segs: Vec<Vec<String>>,
    crates: Vec<String>,
}

/// Builds the call graph over `units`. Units whose path does not map to
/// a crate (`crate_and_module` → `None`) contribute no nodes.
pub fn build(units: &[FileUnit]) -> CallGraph {
    let mut nodes = Vec::new();
    let mut r = Resolver {
        units,
        by_terminal: BTreeMap::new(),
        by_id: BTreeMap::new(),
        methods: BTreeMap::new(),
        segs: Vec::new(),
        crates: Vec::new(),
    };

    // Pass 1: declare every fn as a node.
    for (file_idx, u) in units.iter().enumerate() {
        let Some((krate, module)) = crate_and_module(&u.rel) else {
            continue;
        };
        if !r.crates.contains(&krate) {
            r.crates.push(krate.clone());
        }
        for (fn_idx, f) in u.parsed.fns.iter().enumerate() {
            let mut segs: Vec<String> = vec![krate.clone()];
            segs.extend(module.iter().cloned());
            segs.extend(f.path.iter().map(|s| plain(s).to_string()));
            let id = segs.join("::");
            let n = nodes.len();
            nodes.push(FnNode {
                id: id.clone(),
                file_idx,
                fn_idx,
                line: f.line,
                callees: Vec::new(),
                unresolved: Vec::new(),
            });
            let terminal = segs.last().cloned().unwrap_or_default();
            r.by_terminal
                .entry((krate.clone(), terminal.clone()))
                .or_default()
                .push(n);
            r.by_id.entry(id).or_default().push(n);
            if f.is_method {
                r.methods.entry(terminal).or_default().push(n);
            }
            r.segs.push(segs);
        }
    }

    // Pass 2: resolve every call site.
    let mut node_iter = 0usize;
    for u in units {
        let Some((krate, module)) = crate_and_module(&u.rel) else {
            continue;
        };
        for f in &u.parsed.fns {
            let node = node_iter;
            node_iter += 1;
            let mut callees = Vec::new();
            let mut unresolved = Vec::new();
            for call in &f.calls {
                let found = match &call.callee {
                    Callee::Method(name) => r.methods.get(plain(name)).cloned().unwrap_or_default(),
                    Callee::Path(segs) => r.resolve_path(segs, &krate, &module, u),
                };
                if found.is_empty() {
                    let name = match &call.callee {
                        Callee::Method(m) => format!(".{m}"),
                        Callee::Path(s) => s.join("::"),
                    };
                    unresolved.push(name);
                } else {
                    callees.extend(found);
                }
            }
            callees.sort_unstable();
            callees.dedup();
            unresolved.sort();
            unresolved.dedup();
            nodes[node].callees = callees;
            nodes[node].unresolved = unresolved;
        }
    }

    CallGraph { nodes }
}

impl Resolver<'_> {
    /// Resolves one path call written in crate `krate`, module `module`,
    /// file `u`. Returns every node it can refer to (possibly empty).
    fn resolve_path(
        &self,
        raw_segs: &[String],
        krate: &str,
        module: &[String],
        u: &FileUnit,
    ) -> Vec<usize> {
        let mut segs: Vec<String> = raw_segs.iter().map(|s| plain(s).to_string()).collect();
        if segs.is_empty() {
            return Vec::new();
        }

        // `use` binding for the first segment (first match in source
        // order; scopes are rare enough that file-level lookup is fine).
        if let Some(b) = u.parsed.uses.iter().find(|b| plain(&b.name) == segs[0]) {
            let mut full: Vec<String> = b.path.iter().map(|s| plain(s).to_string()).collect();
            full.extend(segs.drain(1..));
            segs = full;
        }

        // Normalise `crate` / `self` / `super` heads.
        match segs[0].as_str() {
            "crate" => {
                segs[0] = krate.to_string();
            }
            "self" => {
                let mut full = vec![krate.to_string()];
                full.extend(module.iter().cloned());
                full.extend(segs.drain(1..));
                segs = full;
            }
            "super" => {
                let mut full = vec![krate.to_string()];
                let parent = module.len().saturating_sub(1);
                full.extend(module.iter().take(parent).cloned());
                full.extend(segs.drain(1..));
                segs = full;
            }
            "std" | "core" | "alloc" => return Vec::new(),
            _ => {}
        }

        // Crate-qualified: exact id, then suffix match inside that crate
        // (covers re-exports like `odlb_trace::fnv1a64` for
        // `odlb_trace::sink::fnv1a64`).
        if self.crates.iter().any(|c| c == &segs[0]) {
            if let Some(hit) = self.by_id.get(&segs.join("::")) {
                return hit.clone();
            }
            return self.suffix_match(&segs[0], &segs[1..]);
        }

        // Unqualified: same module, then crate root.
        let mut in_module: Vec<String> = vec![krate.to_string()];
        in_module.extend(module.iter().cloned());
        in_module.extend(segs.iter().cloned());
        if let Some(hit) = self.by_id.get(&in_module.join("::")) {
            return hit.clone();
        }
        let mut at_root: Vec<String> = vec![krate.to_string()];
        at_root.extend(segs.iter().cloned());
        if let Some(hit) = self.by_id.get(&at_root.join("::")) {
            return hit.clone();
        }
        // Glob imports: `use base::*;` then `foo()`.
        for (_, base) in &u.parsed.globs {
            let mut p: Vec<String> = base.iter().map(|s| plain(s).to_string()).collect();
            if p.first().map(String::as_str) == Some("crate") {
                p[0] = krate.to_string();
            }
            p.extend(segs.iter().cloned());
            if let Some(hit) = self.by_id.get(&p.join("::")) {
                return hit.clone();
            }
        }
        // Multi-segment leftovers (`Type::method` with a local or
        // use-resolved type): suffix match within this crate only —
        // single segments stay exact to keep `new()`-style calls from
        // fanning out to every constructor.
        if segs.len() >= 2 {
            let hits = self.suffix_match(krate, &segs);
            if !hits.is_empty() {
                return hits;
            }
            // A type imported from another crate resolves its methods
            // there (the import bound the *type*; calls append the fn).
            if let Some(b) = self
                .units
                .get(self.unit_idx(u))
                .and_then(|u| u.parsed.uses.iter().find(|b| plain(&b.name) == segs[0]))
            {
                if let Some(target) = b.path.first() {
                    if self.crates.iter().any(|c| c == plain(target)) {
                        return self.suffix_match(plain(target), &segs);
                    }
                }
            }
        }
        Vec::new()
    }

    fn unit_idx(&self, u: &FileUnit) -> usize {
        self.units
            .iter()
            .position(|x| std::ptr::eq(x, u))
            .unwrap_or(0)
    }

    /// Nodes in `krate` whose path ends with `suffix`.
    fn suffix_match(&self, krate: &str, suffix: &[String]) -> Vec<usize> {
        let Some(term) = suffix.last() else {
            return Vec::new();
        };
        let Some(cands) = self.by_terminal.get(&(krate.to_string(), term.clone())) else {
            return Vec::new();
        };
        cands
            .iter()
            .copied()
            .filter(|&n| {
                let s = &self.segs[n];
                s.len() >= suffix.len() && s[s.len() - suffix.len()..] == *suffix
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse_file(&lexed);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            parsed,
        }
    }

    fn edges(g: &CallGraph) -> Vec<(String, Vec<String>)> {
        g.nodes
            .iter()
            .map(|n| {
                (
                    n.id.clone(),
                    n.callees.iter().map(|&c| g.nodes[c].id.clone()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn crate_and_module_mapping() {
        assert_eq!(
            crate_and_module("crates/trace/src/lib.rs"),
            Some(("odlb_trace".into(), vec![]))
        );
        assert_eq!(
            crate_and_module("crates/trace/src/sink.rs"),
            Some(("odlb_trace".into(), vec!["sink".into()]))
        );
        assert_eq!(
            crate_and_module("crates/sim/src/a/mod.rs"),
            Some(("odlb_sim".into(), vec!["a".into()]))
        );
        assert_eq!(
            crate_and_module("crates/sim/src/a/b.rs"),
            Some(("odlb_sim".into(), vec!["a".into(), "b".into()]))
        );
        assert_eq!(
            crate_and_module("crates/bench/src/bin/experiments.rs"),
            Some(("odlb_bench#bin_experiments".into(), vec![]))
        );
        assert_eq!(
            crate_and_module("crates/lint/src/main.rs"),
            Some(("odlb_lint#main".into(), vec![]))
        );
        assert_eq!(crate_and_module("crates/lint/Cargo.toml"), None);
    }

    #[test]
    fn same_crate_resolution_module_and_root() {
        let g = build(&[
            unit(
                "crates/a/src/lib.rs",
                "pub fn root() {}\npub fn caller() { root(); m::in_mod(); }\nmod m { pub fn in_mod() { super::root(); } }",
            ),
        ]);
        let e = edges(&g);
        let caller = e.iter().find(|(id, _)| id == "odlb_a::caller").unwrap();
        assert_eq!(
            caller.1,
            vec!["odlb_a::root".to_string(), "odlb_a::m::in_mod".to_string()]
        );
        let in_mod = e.iter().find(|(id, _)| id == "odlb_a::m::in_mod").unwrap();
        assert_eq!(in_mod.1, vec!["odlb_a::root".to_string()]);
    }

    #[test]
    fn cross_crate_via_use_and_reexport_suffix() {
        let g = build(&[
            unit(
                "crates/trace/src/sink.rs",
                "pub fn fnv1a64(x: &[u8]) -> u64 { 0 }",
            ),
            unit(
                "crates/b/src/lib.rs",
                "use odlb_trace::fnv1a64;\npub fn h() -> u64 { fnv1a64(b\"x\") }\npub fn q() -> u64 { odlb_trace::sink::fnv1a64(b\"y\") }",
            ),
        ]);
        let e = edges(&g);
        for id in ["odlb_b::h", "odlb_b::q"] {
            let n = e.iter().find(|(i, _)| i == id).unwrap();
            assert_eq!(n.1, vec!["odlb_trace::sink::fnv1a64".to_string()], "{id}");
        }
    }

    #[test]
    fn method_calls_union_all_candidates() {
        let g = build(&[
            unit(
                "crates/a/src/lib.rs",
                "pub struct A; impl A { pub fn emit(&self) {} }",
            ),
            unit(
                "crates/b/src/lib.rs",
                "pub struct B; impl B { pub fn emit(&self) {} }",
            ),
            unit("crates/c/src/lib.rs", "pub fn go(x: &X) { x.emit(); }"),
        ]);
        let e = edges(&g);
        let go = e.iter().find(|(id, _)| id == "odlb_c::go").unwrap();
        assert_eq!(
            go.1,
            vec!["odlb_a::A::emit".to_string(), "odlb_b::B::emit".to_string()]
        );
    }

    #[test]
    fn type_method_path_resolves_through_import() {
        let g = build(&[
            unit(
                "crates/trace/src/lib.rs",
                "pub struct Tracer; impl Tracer { pub fn with_digest() -> Self { Tracer } }",
            ),
            unit(
                "crates/b/src/lib.rs",
                "use odlb_trace::Tracer;\npub fn mk() { let t = Tracer::with_digest(); }",
            ),
        ]);
        let e = edges(&g);
        let mk = e.iter().find(|(id, _)| id == "odlb_b::mk").unwrap();
        assert_eq!(mk.1, vec!["odlb_trace::Tracer::with_digest".to_string()]);
    }

    #[test]
    fn std_and_unknown_calls_are_recorded_unresolved() {
        let g = build(&[unit(
            "crates/a/src/lib.rs",
            "pub fn f() { std::mem::drop(1); String::from(\"x\"); local(); }",
        )]);
        assert!(g.nodes[0].callees.is_empty());
        assert_eq!(
            g.nodes[0].unresolved,
            vec![
                "String::from".to_string(),
                "local".to_string(),
                "std::mem::drop".to_string()
            ]
        );
    }

    #[test]
    fn build_is_deterministic() {
        let units = || {
            vec![
                unit("crates/a/src/lib.rs", "pub fn a() { b::bb(); }"),
                unit("crates/a/src/b.rs", "pub fn bb() { crate::a(); }"),
            ]
        };
        let g1 = edges(&build(&units()));
        let g2 = edges(&build(&units()));
        assert_eq!(g1, g2);
    }
}
