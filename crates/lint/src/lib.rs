//! `odlb-lint` — the workspace's self-hosted static-analysis pass.
//!
//! The reproduction's headline guarantees (golden trace digests,
//! byte-identical metric exports, offline tier-1 builds) rest on
//! invariants the compiler does not check. This crate encodes them as
//! lint rules over a real token stream (see [`lexer`]) plus a manifest
//! gate (see [`manifest`]), and is wired into both CI and
//! `cargo test -q` so every future change is checked.
//!
//! On top of the token rules sits a three-layer syntactic analysis:
//! [`parse`] extracts each file's item skeleton, [`graph`] links the
//! skeletons into a workspace call graph, and [`taint`] propagates
//! nondeterminism from sources to export sinks over that graph (rules
//! T01–T03), reporting full source→…→sink chains.
//!
//! Entry points: [`run_workspace`] walks a workspace root and returns
//! every diagnostic; [`analyze_sources`] does the same over in-memory
//! sources (the mutation tests use this); the `odlb-lint` binary prints
//! findings as `file:line: rule: message` (or `--format=json`) and
//! exits nonzero if any exist.

pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;
pub mod taint;

pub use rules::{ChainStep, Diagnostic, Policy};

use graph::FileUnit;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One in-memory source file handed to [`analyze_sources`].
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (drives both
    /// [`policy_for`] and the call graph's crate mapping).
    pub rel: String,
    /// The file's full text.
    pub text: String,
}

/// Decides which rule families apply to the workspace-relative path
/// `rel` (always `/`-separated). Returns `None` for files the lint pass
/// skips entirely.
pub fn policy_for(rel: &str) -> Option<Policy> {
    // Lint fixtures contain violations on purpose; build artifacts and
    // vendored sources are not ours to police.
    if rel.starts_with("crates/lint/tests/fixtures/")
        || rel.starts_with("target/")
        || rel.contains("/target/")
    {
        return None;
    }
    // Integration tests and benches may freely use wall clocks, hash
    // iteration and unwraps: they never feed artifacts.
    if rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("tests/") {
        return None;
    }

    // D05: folded-stacks dumps leave the workspace only through the
    // validated exporter path — the profiler that renders them, the
    // exporter that defines `validate_folded`, and the experiments
    // binary that validates-then-writes. Any other call site could ship
    // a dump the validator never saw.
    let folded = rel != "crates/telemetry/src/profiler.rs"
        && rel != "crates/telemetry/src/export.rs"
        && rel != "crates/bench/src/bin/experiments.rs";
    let mut p = Policy {
        folded,
        ..Policy::default()
    };

    if rel.contains("/examples/") {
        p.timing = true;
        p.rng = true;
        return Some(p);
    }

    // D01: wall-clock time, except the overhead profiler (whose whole
    // job is measuring wall time), the live scrape endpoint (socket
    // timeouts and scrape-await deadlines are wall-clock by nature, and
    // the listener only ever reads a published copy of the exposition —
    // nothing flows back into simulation state) and the bench harness.
    let serve_side =
        rel == "crates/telemetry/src/profiler.rs" || rel == "crates/telemetry/src/serve.rs";
    p.timing = !serve_side && !rel.starts_with("crates/bench/");

    // D02/D03: crates whose output feeds digests or exported artifacts.
    let artifact_crate = ["trace", "telemetry", "metrics", "cluster", "engine"]
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    p.hash_iter = artifact_crate;
    p.float_fmt = artifact_crate;

    // D04: everywhere except the seeded simulation RNG itself, the
    // scrape endpoint's listener thread (see the D01 note above for why
    // it cannot perturb determinism), and the experiment runner's
    // ordered worker pool — each of its threads owns an entire isolated
    // simulation and only `Send` results cross back, with outputs
    // committed in canonical order (parity pinned by
    // tests/parallel_parity.rs).
    p.rng = rel != "crates/sim/src/rng.rs"
        && rel != "crates/telemetry/src/serve.rs"
        && rel != "crates/bench/src/runner.rs";

    // P01: binary code only — `src/bin/*` and crate `main.rs`.
    p.io_unwrap = rel.contains("/src/bin/") || rel.ends_with("src/main.rs");

    Some(p)
}

/// Recursively collects files under `dir` whose name passes `keep`,
/// skipping `target/` and hidden directories. Results are sorted so the
/// pass itself is deterministic.
fn collect_files(dir: &Path, keep: &dyn Fn(&Path) -> bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_files(&path, keep, out);
        } else if keep(&path) {
            out.push(path);
        }
    }
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints every `.rs` file and every `Cargo.toml` under `root`. Returns
/// all diagnostics, sorted by file, line, rule. I/O errors on individual
/// files become diagnostics too — a file the linter cannot read is a
/// file the linter cannot vouch for.
pub fn run_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut paths = Vec::new();
    collect_files(
        root,
        &|p| {
            p.extension().is_some_and(|e| e == "rs")
                || p.file_name().is_some_and(|n| n == "Cargo.toml")
        },
        &mut paths,
    );

    let mut out = Vec::new();
    let mut files = Vec::new();
    for path in paths {
        let rel = relative(root, &path);
        match std::fs::read_to_string(&path) {
            Ok(text) => files.push(SourceFile { rel, text }),
            Err(e) => out.push(Diagnostic {
                file: rel,
                line: 0,
                rule: "S00",
                message: format!("cannot read: {e}"),
                chain: Vec::new(),
            }),
        }
    }
    out.extend(analyze_sources(&files));
    out.sort();
    out
}

/// Runs the full pass — manifest gate, token rules, and the
/// parse → call-graph → taint pipeline — over in-memory sources.
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Diagnostic> {
    analyze_sources_with(files, &taint::SANCTIONS)
}

/// [`analyze_sources`] with an explicit sanction table; the policy tests
/// use this to prove every default sanction is load-bearing.
pub fn analyze_sources_with(
    files: &[SourceFile],
    sanctions: &[taint::Sanction],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Lex + token rules per file; keep raw (pre-pragma) findings so the
    // taint findings can join them under one pragma pass.
    let mut units: Vec<FileUnit> = Vec::new();
    let mut raw_by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for f in files {
        if f.rel.ends_with("Cargo.toml") {
            out.extend(manifest::check_manifest(&f.rel, &f.text));
            continue;
        }
        let Some(policy) = policy_for(&f.rel) else {
            continue;
        };
        let lexed = lexer::lex(&f.text);
        raw_by_file
            .entry(f.rel.clone())
            .or_default()
            .extend(rules::token_rules(&f.rel, &lexed, policy));
        let parsed = parse::parse_file(&lexed);
        units.push(FileUnit {
            rel: f.rel.clone(),
            lexed,
            parsed,
        });
    }

    let call_graph = graph::build(&units);
    let taint::TaintResult {
        diagnostics: taint_diags,
        used_pragmas,
    } = taint::analyze(&units, &call_graph, sanctions);
    for d in taint_diags {
        raw_by_file.entry(d.file.clone()).or_default().push(d);
    }

    let empty = BTreeSet::new();
    for u in &units {
        let raw = raw_by_file.remove(&u.rel).unwrap_or_default();
        let extra = used_pragmas.get(&u.rel).unwrap_or(&empty);
        out.extend(rules::apply_pragmas(&u.rel, &u.lexed, raw, extra));
    }
    out.sort();
    out
}

/// Renders diagnostics as a JSON array with a stable field order
/// (`file`, `line`, `rule`, `message`, `chain`), one object per finding,
/// byte-identical across runs. Hand-rolled on purpose: the linter is
/// zero-dependency.
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n  {\"file\":\"");
        esc(&d.file, &mut s);
        s.push_str(&format!(
            "\",\"line\":{},\"rule\":\"{}\",\"message\":\"",
            d.line, d.rule
        ));
        esc(&d.message, &mut s);
        s.push_str("\",\"chain\":[");
        for (j, step) in d.chain.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str("{\"file\":\"");
            esc(&step.file, &mut s);
            s.push_str(&format!("\",\"line\":{},\"label\":\"", step.line));
            esc(&step.label, &mut s);
            s.push_str("\"}");
        }
        s.push_str("]}");
    }
    s.push_str("\n]\n");
    s
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_exemptions_match_the_issue() {
        // profiler and bench may read wall clocks
        assert!(
            !policy_for("crates/telemetry/src/profiler.rs")
                .unwrap()
                .timing
        );
        assert!(
            !policy_for("crates/bench/src/bin/experiments.rs")
                .unwrap()
                .timing
        );
        assert!(policy_for("crates/engine/src/engine.rs").unwrap().timing);

        // the scrape endpoint is the sanctioned home for threads and
        // socket wall-clock I/O; the rest of telemetry stays strict
        let serve = policy_for("crates/telemetry/src/serve.rs").unwrap();
        assert!(!serve.timing);
        assert!(!serve.rng);
        let registry = policy_for("crates/telemetry/src/registry.rs").unwrap();
        assert!(registry.timing);
        assert!(registry.rng);

        // artifact crates get D02/D03; others do not
        assert!(policy_for("crates/trace/src/event.rs").unwrap().float_fmt);
        assert!(
            policy_for("crates/metrics/src/collector.rs")
                .unwrap()
                .hash_iter
        );
        assert!(!policy_for("crates/sim/src/clock.rs").unwrap().hash_iter);

        // the sim RNG is the one sanctioned randomness source
        assert!(!policy_for("crates/sim/src/rng.rs").unwrap().rng);
        assert!(policy_for("crates/core/src/lib.rs").unwrap().rng);

        // the ordered worker pool is the only other sanctioned home for
        // threads; the rest of the bench crate stays strict
        assert!(!policy_for("crates/bench/src/runner.rs").unwrap().rng);
        assert!(policy_for("crates/bench/src/suite.rs").unwrap().rng);
        assert!(policy_for("crates/bench/src/harness.rs").unwrap().rng);
        assert!(
            policy_for("crates/bench/src/bin/experiments.rs")
                .unwrap()
                .rng
        );

        // folded dumps leave only through the validated exporter path:
        // the profiler renders, the exporter validates, the experiments
        // binary writes — everyone else must go through them
        assert!(
            !policy_for("crates/telemetry/src/profiler.rs")
                .unwrap()
                .folded
        );
        assert!(!policy_for("crates/telemetry/src/export.rs").unwrap().folded);
        assert!(
            !policy_for("crates/bench/src/bin/experiments.rs")
                .unwrap()
                .folded
        );
        assert!(policy_for("crates/bench/src/suite.rs").unwrap().folded);
        assert!(policy_for("crates/cluster/src/driver.rs").unwrap().folded);
        assert!(
            policy_for("crates/bench/src/bin/promcheck.rs")
                .unwrap()
                .folded
        );

        // P01 applies to binaries only
        assert!(
            policy_for("crates/bench/src/bin/promcheck.rs")
                .unwrap()
                .io_unwrap
        );
        assert!(!policy_for("crates/trace/src/sink.rs").unwrap().io_unwrap);

        // fixtures and tests are skipped wholesale
        assert!(policy_for("crates/lint/tests/fixtures/d01_time.rs").is_none());
        assert!(policy_for("crates/trace/tests/golden.rs").is_none());
    }
}
