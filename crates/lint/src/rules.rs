//! The rule engine: token-level checks for the workspace's determinism
//! invariants.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D01  | no wall-clock (`Instant::now`, `SystemTime`, `std::time`) outside the profiler and the bench harness |
//! | D02  | no iteration over `HashMap`/`HashSet` in digest/export-feeding crates unless immediately sorted |
//! | D03  | no float formatted into an artifact without an explicit precision or the shared formatter |
//! | D04  | no `thread::spawn` and no ambient randomness outside the sim RNG |
//! | D05  | no folded-stacks dumps rendered outside the validated exporter path |
//! | P01  | no `unwrap()`/`expect()` on I/O results in non-test binary code |
//!
//! Checks are heuristic token analyses, not type checking — they are
//! tuned to have zero false positives on this workspace, and anything
//! they over-flag elsewhere can carry a reasoned
//! `// odlb-lint: allow(<rule>) — <reason>` pragma (rule S00 keeps the
//! pragma inventory honest: a reason is mandatory and a pragma that
//! suppresses nothing is itself an error).

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Which rule families apply to a file (decided from its path by
/// [`crate::policy_for`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Policy {
    /// D01: wall-clock time is forbidden here.
    pub timing: bool,
    /// D02: unordered `HashMap`/`HashSet` iteration is forbidden here.
    pub hash_iter: bool,
    /// D03: bare float formatting is forbidden here.
    pub float_fmt: bool,
    /// D04: spawned threads / ambient randomness are forbidden here.
    pub rng: bool,
    /// D05: rendering folded-stacks dumps is forbidden here — only the
    /// validated exporter path may (profiler, exporter, experiments bin).
    pub folded: bool,
    /// P01: `unwrap`/`expect` on I/O results is forbidden here.
    pub io_unwrap: bool,
}

/// One hop of a taint propagation chain (see [`crate::taint`]):
/// source function first, sink-touching function last.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainStep {
    /// Workspace-relative path of the function's file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `crate::module::fn_name`, plus a source/sink annotation.
    pub label: String,
}

/// One finding, rendered as `file:line: rule: message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`D01` … `P01`, `M01`, `S00`, `T01` … `T03`).
    pub rule: &'static str,
    /// Human-readable explanation. For taint findings this includes the
    /// rendered source→…→sink chain.
    pub message: String,
    /// Structured taint chain (empty for token-level findings); the
    /// steps are also rendered into `message` for plain-text output.
    pub chain: Vec<ChainStep>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Iteration methods whose order reflects the hasher, not the data.
pub(crate) const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Tokens downstream of an iteration site that prove the order is fixed
/// before anything observable happens.
const SORTED_EVIDENCE: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_unstable_by",
];

/// Format-like macros whose first argument is a format string.
const FMT_MACROS: [&str; 8] = [
    "format", "write", "writeln", "print", "println", "eprint", "eprintln", "panic",
];

/// Identifiers that mark a statement as I/O-flavoured for P01.
const IO_EVIDENCE: [&str; 17] = [
    "fs",
    "File",
    "OpenOptions",
    "read_to_string",
    "write_all",
    "flush",
    "create",
    "create_dir_all",
    "open",
    "read_dir",
    "remove_file",
    "remove_dir_all",
    "rename",
    "copy",
    "metadata",
    "canonicalize",
    "stdin",
];

/// Ambient-randomness markers for D04.
pub(crate) const RNG_EVIDENCE: [&str; 5] = [
    "rand",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

const INT_TYPES: [&str; 12] = [
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

/// Checks one lexed file under `policy`, applying suppression pragmas.
/// `file` is the workspace-relative path used in diagnostics.
pub fn check_file(file: &str, lexed: &Lexed, policy: Policy) -> Vec<Diagnostic> {
    let raw = token_rules(file, lexed, policy);
    apply_pragmas(file, lexed, raw, &BTreeSet::new())
}

/// Runs the token rules only, returning findings *before* pragma
/// filtering — [`crate::analyze_sources`] pools these with the taint
/// pass's findings and applies pragmas once per file.
pub(crate) fn token_rules(file: &str, lexed: &Lexed, policy: Policy) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let in_test = test_spans(toks);
    let mut raw = Vec::new();

    let diag = |line: u32, rule: &'static str, message: String| Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
        chain: Vec::new(),
    };

    if policy.timing {
        rule_d01(toks, &in_test, &mut |l, m| raw.push(diag(l, "D01", m)));
    }
    if policy.hash_iter {
        rule_d02(toks, &in_test, &mut |l, m| raw.push(diag(l, "D02", m)));
    }
    if policy.float_fmt {
        rule_d03(toks, &in_test, &mut |l, m| raw.push(diag(l, "D03", m)));
    }
    if policy.rng {
        rule_d04(toks, &in_test, &mut |l, m| raw.push(diag(l, "D04", m)));
    }
    if policy.folded {
        rule_d05(toks, &in_test, &mut |l, m| raw.push(diag(l, "D05", m)));
    }
    if policy.io_unwrap {
        rule_p01(toks, &in_test, &mut |l, m| raw.push(diag(l, "P01", m)));
    }
    raw
}

/// Filters `raw` findings through the file's suppression pragmas and
/// appends S00 findings for malformed, reason-less or unused pragmas.
/// `extra_used` lists pragma lines consumed outside this pass (taint
/// boundary pragmas stop propagation inside [`crate::taint`], so no
/// diagnostic ever reaches them here — without this they would be
/// flagged as suppressing nothing).
pub(crate) fn apply_pragmas(
    file: &str,
    lexed: &Lexed,
    raw: Vec<Diagnostic>,
    extra_used: &BTreeSet<u32>,
) -> Vec<Diagnostic> {
    // line -> indices into lexed.pragmas that may suppress that line
    // (a pragma covers its own line and the line directly below it).
    let mut by_line: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, p) in lexed.pragmas.iter().enumerate() {
        by_line.entry(p.line).or_default().push(i);
        by_line.entry(p.line + 1).or_default().push(i);
    }

    let mut used: Vec<bool> = lexed
        .pragmas
        .iter()
        .map(|p| extra_used.contains(&p.line))
        .collect();
    let mut out = Vec::new();
    'diags: for d in raw {
        if let Some(candidates) = by_line.get(&d.line) {
            for &i in candidates {
                let p = &lexed.pragmas[i];
                if p.well_formed
                    && !p.reason.is_empty()
                    && p.rules.iter().any(|r| r == d.rule || r == "all")
                {
                    used[i] = true;
                    continue 'diags;
                }
            }
        }
        out.push(d);
    }

    for (i, p) in lexed.pragmas.iter().enumerate() {
        if !p.well_formed {
            out.push(Diagnostic {
                file: file.to_string(),
                line: p.line,
                rule: "S00",
                message: "malformed pragma: expected `odlb-lint: allow(<rules>) — <reason>`"
                    .to_string(),
                chain: Vec::new(),
            });
        } else if p.reason.is_empty() {
            out.push(Diagnostic {
                file: file.to_string(),
                line: p.line,
                rule: "S00",
                message: format!(
                    "pragma allow({}) has no reason; a justification is mandatory",
                    p.rules.join(",")
                ),
                chain: Vec::new(),
            });
        } else if !used[i] {
            out.push(Diagnostic {
                file: file.to_string(),
                line: p.line,
                rule: "S00",
                message: format!(
                    "pragma allow({}) suppresses nothing on this or the next line; delete it",
                    p.rules.join(",")
                ),
                chain: Vec::new(),
            });
        }
    }
    out.sort();
    out
}

/// Marks every token inside a `#[cfg(test)] mod … { … }` span; rules
/// skip those tokens (unit tests may use wall clocks, hash iteration and
/// unwraps freely).
pub(crate) fn test_spans(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i + 7 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while j < toks.len() && toks[j].is_punct('#') {
            // skip a balanced `[...]`
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j < toks.len() && (toks[j].is_ident("mod") || toks[j].is_ident("pub")) {
            // find the opening brace, then its match
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let open = j;
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = j.min(in_test.len() - 1);
            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = j.max(open) + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

fn path2(toks: &[Token], i: usize, a: &str, b: &str) -> bool {
    i + 3 < toks.len()
        && toks[i].is_ident(a)
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && toks[i + 3].is_ident(b)
}

/// D01 — wall-clock time never reaches deterministic artifacts.
fn rule_d01(toks: &[Token], in_test: &[bool], emit: &mut impl FnMut(u32, String)) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if toks[i].is_ident("SystemTime") || toks[i].is_ident("UNIX_EPOCH") {
            emit(
                toks[i].line,
                format!(
                    "`{}` reads the wall clock; simulated time only",
                    toks[i].text
                ),
            );
        } else if path2(toks, i, "std", "time") {
            emit(
                toks[i].line,
                "`std::time` is wall-clock time; use the simulation clock (odlb-sim)".to_string(),
            );
        } else if path2(toks, i, "Instant", "now") {
            emit(
                toks[i].line,
                "`Instant::now()` reads the wall clock; simulated time only".to_string(),
            );
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file: struct
/// fields (`name: HashMap<…>`), annotated lets / params
/// (`name: &mut HashMap<…>`) and inferred lets (`name = HashMap::new()`).
pub(crate) fn hash_bound_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over `&`, `mut` and lifetimes to the binder.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            if prev.is_punct('&') || prev.is_ident("mut") || prev.kind == TokKind::Lifetime {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].is_punct(':') && !toks[j - 2].is_punct(':') {
            if toks[j - 2].kind == TokKind::Ident {
                bound.insert(toks[j - 2].text.clone());
            }
        } else if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == TokKind::Ident {
            bound.insert(toks[j - 2].text.clone());
        }
    }
    bound
}

/// D02 — no unordered iteration feeding digests or exporters.
fn rule_d02(toks: &[Token], in_test: &[bool], emit: &mut impl FnMut(u32, String)) {
    let bound = hash_bound_idents(toks);
    if bound.is_empty() {
        return;
    }

    // `.iter()` / `.keys()` / … on a tracked receiver.
    for i in 1..toks.len() {
        if in_test[i] {
            continue;
        }
        if toks[i].is_punct('.')
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('(')
            && toks[i - 1].kind == TokKind::Ident
            && bound.contains(&toks[i - 1].text)
            && !sorted_downstream(toks, i)
        {
            emit(
                toks[i].line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in hasher order on a digest/export \
                     path; use BTreeMap/BTreeSet or sort before anything observable",
                    toks[i - 1].text,
                    toks[i + 1].text
                ),
            );
        }
    }

    // `for pat in <expr mentioning a tracked map> { … }`.
    let mut i = 0;
    while i < toks.len() {
        if in_test[i] || !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0 before the loop body's `{`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_pos = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            } else if depth == 0 && t.is_ident("in") {
                in_pos = Some(j);
            }
            j += 1;
        }
        if let Some(p) = in_pos {
            for t in toks.iter().take(j).skip(p + 1) {
                if t.kind == TokKind::Ident && bound.contains(&t.text) {
                    emit(
                        t.line,
                        format!(
                            "`for … in` over HashMap/HashSet `{}` visits entries in hasher \
                             order on a digest/export path; use BTreeMap/BTreeSet",
                            t.text
                        ),
                    );
                    break;
                }
            }
        }
        i = j + 1;
    }
}

/// True when, between the iteration site and the end of the statement,
/// the chain is explicitly sorted or lands in an ordered collection.
pub(crate) fn sorted_downstream(toks: &[Token], from: usize) -> bool {
    for t in toks.iter().skip(from).take(80) {
        if t.is_punct(';') {
            return false;
        }
        if t.kind == TokKind::Ident
            && (SORTED_EVIDENCE.contains(&t.text.as_str())
                || t.text == "BTreeMap"
                || t.text == "BTreeSet")
        {
            return true;
        }
    }
    false
}

/// Function spans `(start, end)` in token indices, used to scope D03's
/// float-identifier tracking (a `v: f64` parameter of one function must
/// not taint a same-named `v: u64` in its sibling).
fn fn_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_punct(';') {
                    // trait method declaration without a body
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        depth += 1;
                    } else if toks[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                spans.push((i, k));
                // nested fns are rare; a flat list is fine because we pick
                // the *innermost* containing span at query time.
            }
        }
        i += 1;
    }
    spans
}

fn innermost_span(spans: &[(usize, usize)], idx: usize) -> Option<usize> {
    spans
        .iter()
        .enumerate()
        .filter(|(_, &(s, e))| s <= idx && idx <= e)
        .min_by_key(|(_, &(s, e))| e - s)
        .map(|(i, _)| i)
}

/// D03 — floats must not reach artifact text through a bare `{}` /
/// `{name}` placeholder; either give an explicit precision (`{:.6}`) or
/// go through the shared formatter (`field_f64` / `render_value`).
fn rule_d03(toks: &[Token], in_test: &[bool], emit: &mut impl FnMut(u32, String)) {
    let spans = fn_spans(toks);
    // (ident, span or None=file level) for every `name: f64 | f32`.
    let mut float_idents: Vec<(String, Option<usize>)> = Vec::new();
    for i in 2..toks.len() {
        if (toks[i].is_ident("f64") || toks[i].is_ident("f32"))
            && toks[i - 1].is_punct(':')
            && toks[i - 2].kind == TokKind::Ident
        {
            float_idents.push((toks[i - 2].text.clone(), innermost_span(&spans, i)));
        }
    }

    let visible = |name: &str, at: usize| -> bool {
        let here = innermost_span(&spans, at);
        float_idents
            .iter()
            .any(|(n, sp)| n == name && (sp.is_none() || *sp == here))
    };

    let mut i = 0;
    while i + 2 < toks.len() {
        let is_fmt = !in_test[i]
            && toks[i].kind == TokKind::Ident
            && FMT_MACROS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('(');
        if !is_fmt {
            i += 1;
            continue;
        }
        // Token group of the macro call.
        let open = i + 2;
        let mut depth = 0i32;
        let mut close = open;
        while close < toks.len() {
            if toks[close].is_punct('(') {
                depth += 1;
            } else if toks[close].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        let group = &toks[open..close.min(toks.len())];
        if let Some(fmt) = group.iter().find(|t| t.kind == TokKind::Str) {
            let bare = bare_placeholders(&fmt.text);
            if !bare.is_empty() {
                // Inline `{name}` placeholders naming a float.
                let inline_hit = bare
                    .iter()
                    .find(|name| !name.is_empty() && visible(name, i));
                // Float-typed argument tokens feeding a bare placeholder.
                let mut arg_hit = None;
                for (k, t) in group.iter().enumerate() {
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    let idx = open + k;
                    let cast_to_float = (t.text == "f64" || t.text == "f32")
                        && k > 0
                        && group[k - 1].is_ident("as");
                    let float_var = visible(&t.text, idx)
                        // `v as i64` launders the float into an integer.
                        && !(k + 2 < group.len()
                            && group[k + 1].is_ident("as")
                            && INT_TYPES.contains(&group[k + 2].text.as_str()));
                    if cast_to_float || float_var {
                        arg_hit = Some(t.text.clone());
                        break;
                    }
                }
                if let Some(name) = inline_hit.cloned().or(arg_hit) {
                    emit(
                        toks[i].line,
                        format!(
                            "float `{name}` formatted without explicit precision; floats in \
                             artifacts need `{{:.N}}` or the shared formatter \
                             (field_f64/render_value)"
                        ),
                    );
                }
            }
        }
        i = close + 1;
    }
}

/// Placeholder names in `fmt` that carry no format spec: `{}` yields
/// `""`, `{v}` yields `"v"`; `{v:.3}` and `{:>8.1}` yield nothing.
fn bare_placeholders(fmt: &str) -> Vec<String> {
    let chars: Vec<char> = fmt.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' if chars.get(i + 1) == Some(&'{') => i += 2,
            '}' if chars.get(i + 1) == Some(&'}') => i += 2,
            '{' => {
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '}' {
                    j += 1;
                }
                let inner: String = chars[i + 1..j.min(chars.len())].iter().collect();
                if !inner.contains(':') {
                    out.push(inner);
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// D04 — one seeded RNG, one logical thread.
fn rule_d04(toks: &[Token], in_test: &[bool], emit: &mut impl FnMut(u32, String)) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if path2(toks, i, "thread", "spawn") || path2(toks, i, "std", "thread") {
            emit(
                toks[i].line,
                "spawned threads make event interleaving nondeterministic; the simulation is \
                 single-threaded by design"
                    .to_string(),
            );
        } else if toks[i].kind == TokKind::Ident && RNG_EVIDENCE.contains(&toks[i].text.as_str()) {
            emit(
                toks[i].line,
                format!(
                    "`{}` is ambient randomness; all randomness flows from the seeded sim RNG",
                    toks[i].text
                ),
            );
        }
    }
}

/// D05 — folded-stacks dumps leave only through the validated exporter.
/// Any new call site that renders a dump risks writing an artifact that
/// `validate_folded` never saw; route it through the experiments binary's
/// `--profile-folded` path (which validates before writing) instead.
fn rule_d05(toks: &[Token], in_test: &[bool], emit: &mut impl FnMut(u32, String)) {
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if toks[i].is_ident("folded_sim") || toks[i].is_ident("folded_wall") {
            emit(
                toks[i].line,
                format!(
                    "`{}` renders a folded-stacks dump outside the sanctioned exporter path; \
                     route it through `experiments --profile-folded`, which runs \
                     `validate_folded` before writing",
                    toks[i].text
                ),
            );
        }
    }
}

/// P01 — binaries surface I/O failures as friendly errors, not panics.
fn rule_p01(toks: &[Token], in_test: &[bool], emit: &mut impl FnMut(u32, String)) {
    for i in 2..toks.len() {
        if in_test[i] {
            continue;
        }
        let is_unwrap = toks[i].is_punct('.')
            && i + 2 < toks.len()
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            && toks[i + 2].is_punct('(');
        if !is_unwrap {
            continue;
        }
        // Walk back through the statement looking for I/O vocabulary.
        let mut j = i;
        let mut io = None;
        let mut steps = 0;
        while j > 0 && steps < 80 {
            j -= 1;
            steps += 1;
            let t = &toks[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.kind == TokKind::Ident && IO_EVIDENCE.contains(&t.text.as_str()) {
                // `write!` is a formatting macro, not I/O.
                if toks.get(j + 1).is_some_and(|n| n.is_punct('!')) {
                    continue;
                }
                io = Some(t.text.clone());
                break;
            }
        }
        if let Some(op) = io {
            emit(
                toks[i].line,
                format!(
                    "`.{}()` on an I/O result ({op}); print a `file: error` message and exit \
                     nonzero instead",
                    toks[i + 1].text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, policy: Policy) -> Vec<(u32, &'static str)> {
        check_file("test.rs", &lex(src), policy)
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect()
    }

    const ALL: Policy = Policy {
        timing: true,
        hash_iter: true,
        float_fmt: true,
        rng: true,
        folded: true,
        io_unwrap: true,
    };

    #[test]
    fn d01_flags_wall_clock() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let got = run(src, ALL);
        assert!(got.contains(&(1, "D01")), "{got:?}");
        assert!(got.contains(&(2, "D01")), "{got:?}");
    }

    #[test]
    fn d02_flags_iteration_but_not_sorted_collects() {
        let src = "\
struct S { m: HashMap<u32, u32> }
impl S {
    fn bad(&self) -> Vec<u32> { self.m.keys().copied().collect() }
    fn good(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.m.keys().copied().collect();
        v.sort();
        v
    }
}";
        // `good` collects then sorts on the *next* statement, which the
        // heuristic cannot see — it must sort within the statement:
        let got = run(src, ALL);
        assert!(got.contains(&(3, "D02")), "{got:?}");
    }

    #[test]
    fn d02_exempts_inline_sort_and_btreemap() {
        let src = "\
fn f(m: &HashMap<u32, u32>) {
    let v: Vec<u32> = m.keys().copied().collect::<Vec<_>>().sort_unstable_by_key(|k| *k);
    let b: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>();
}";
        let got = run(src, ALL);
        assert!(got.iter().all(|(_, r)| *r != "D02"), "{got:?}");
    }

    #[test]
    fn d02_flags_for_loops() {
        let src = "fn f() { let m = HashMap::new(); for (k, v) in &m { use_it(k, v); } }";
        let got = run(src, ALL);
        assert!(got.iter().any(|(_, r)| *r == "D02"), "{got:?}");
    }

    #[test]
    fn d03_flags_bare_float_placeholder() {
        let src = "fn f(v: f64) -> String { format!(\"{v}\") }";
        assert!(run(src, ALL).contains(&(1, "D03")));
        let src = "fn f(x: u64) -> String { format!(\"{}\", x as f64) }";
        assert!(run(src, ALL).contains(&(1, "D03")));
    }

    #[test]
    fn d03_accepts_precision_int_cast_and_foreign_scope() {
        // precision spec
        assert!(run("fn f(v: f64) -> String { format!(\"{v:.6}\") }", ALL).is_empty());
        // float laundered through an integer cast
        assert!(run("fn f(v: f64) -> String { format!(\"{}\", v as i64) }", ALL).is_empty());
        // `v: f64` in one fn must not taint `v: u64` in another
        let src = "\
fn a(v: f64) -> f64 { v }
fn b(v: u64) -> String { format!(\"{v}\") }";
        assert!(run(src, ALL).is_empty());
    }

    #[test]
    fn d04_flags_threads_and_randomness() {
        let got = run(
            "fn f() { std::thread::spawn(|| {}); let r = rand::random(); }",
            ALL,
        );
        assert!(
            got.iter().filter(|(_, r)| *r == "D04").count() >= 2,
            "{got:?}"
        );
    }

    #[test]
    fn d05_flags_folded_dump_rendering() {
        let src = "fn f(p: &SpanProfiler) { let dump = p.folded_sim(); eprint!(\"{}\", p.folded_wall()); }";
        let got = run(src, ALL);
        assert_eq!(
            got.iter().filter(|(_, r)| *r == "D05").count(),
            2,
            "{got:?}"
        );
        // A policy without `folded` (the sanctioned files) stays silent.
        let got = run(src, Policy::default());
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn p01_flags_unwrap_on_io_only() {
        let src = "\
fn main() {
    let text = std::fs::read_to_string(path).unwrap();
    let n: u32 = \"42\".parse().unwrap();
}";
        let got = run(src, ALL);
        assert_eq!(
            got.iter().filter(|(_, r)| *r == "P01").count(),
            1,
            "{got:?}"
        );
        assert!(got.contains(&(2, "P01")));
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { let i = Instant::now(); std::fs::read(p).unwrap(); }
}";
        assert!(run(src, ALL).is_empty());
    }

    #[test]
    fn pragma_suppresses_with_reason_and_errors_without() {
        let with = "\
// odlb-lint: allow(D01) — this comparison needs wall time
fn f() { let t = Instant::now(); }";
        assert!(run(with, ALL).is_empty());

        let without = "\
// odlb-lint: allow(D01)
fn f() { let t = Instant::now(); }";
        let got = run(without, ALL);
        assert!(got.contains(&(1, "S00")), "{got:?}");
        assert!(got.contains(&(2, "D01")), "{got:?}");
    }

    #[test]
    fn unused_pragma_is_an_error() {
        let src = "// odlb-lint: allow(D01) — stale\nfn f() {}";
        let got = run(src, ALL);
        assert_eq!(got, vec![(1, "S00")]);
    }

    #[test]
    fn same_line_pragma_works() {
        let src = "fn f() { let t = Instant::now(); } // odlb-lint: allow(D01) — demo only";
        assert!(run(src, ALL).is_empty());
    }
}
