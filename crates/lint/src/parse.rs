//! A lightweight recursive-descent *item* parser over the lexer's token
//! stream.
//!
//! The token rules (D01–D05) see one line at a time; the taint engine
//! (see [`crate::taint`]) needs to know *which function* a token lives
//! in and *which functions that function calls*. This parser extracts
//! exactly that skeleton: module blocks, `impl`/`trait` blocks, `fn`
//! items with their body token ranges, every call expression inside a
//! body, and `use` imports for cross-crate name resolution. It is not a
//! Rust parser — expressions, types and generics are skipped with
//! bracket balancing — but it is exact about the things the call graph
//! needs: nesting, body extents and call-site lines.
//!
//! `#[cfg(test)]` items are skipped entirely: unit tests may use wall
//! clocks and hash iteration freely, so their calls must not show up as
//! taint edges.

use crate::lexer::{Lexed, TokKind, Token};

/// The callee of one call expression, as written at the call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::c(…)` or bare `f(…)` — path segments as written (after
    /// `Self` substitution inside `impl` blocks).
    Path(Vec<String>),
    /// `.m(…)` — method call; the receiver's type is unknown.
    Method(String),
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// 1-based line of the callee token.
    pub line: u32,
    /// What is being called.
    pub callee: Callee,
}

/// One `fn` item with a body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Path within the file: enclosing module blocks, then the
    /// `impl`/`trait` type name (if any), then the function name.
    pub path: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Every call expression found in the body, in source order.
    pub calls: Vec<CallSite>,
    /// True when defined inside an `impl` or `trait` block (callable via
    /// `.name(…)` method syntax).
    pub is_method: bool,
}

/// One name bound by a `use` declaration.
#[derive(Clone, Debug)]
pub struct UseImport {
    /// The local name the import binds (the alias after `as`, or the
    /// path's last segment).
    pub name: String,
    /// The full path as written, e.g. `["odlb_trace", "sink", "fnv1a64"]`.
    pub path: Vec<String>,
    /// Module-block path the `use` appears under within this file.
    pub scope: Vec<String>,
}

/// Everything the parser extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items with bodies, in source order.
    pub fns: Vec<FnItem>,
    /// All `use` bindings.
    pub uses: Vec<UseImport>,
    /// Glob imports: (module scope, base path of `use base::*`).
    pub globs: Vec<(Vec<String>, Vec<String>)>,
}

/// Keywords that must never be read as the head of a call expression
/// (`if (…)`, `return (…)`, …) or as a path segment.
const EXPR_KEYWORDS: [&str; 22] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "move", "ref", "mut", "box", "await", "dyn", "where", "unsafe", "async", "yield",
];

/// Parses one lexed file into its item skeleton.
pub fn parse_file(lexed: &Lexed) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
        out: ParsedFile::default(),
    };
    let mut scope = Vec::new();
    p.items(&mut scope, None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    out: ParsedFile,
}

impl Parser<'_> {
    fn tok(&self, at: usize) -> Option<&Token> {
        self.toks.get(at)
    }

    fn is(&self, at: usize, c: char) -> bool {
        self.tok(at).is_some_and(|t| t.is_punct(c))
    }

    fn ident_at(&self, at: usize) -> Option<&str> {
        match self.tok(at) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// Skips a balanced `(…)`, `[…]` or `{…}` group whose opener is at
    /// `self.i`; leaves `self.i` just past the closer.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.tok(self.i) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips a balanced generic argument list `<…>` whose `<` is at
    /// `self.i`. A `>` directly preceded by `-` is an arrow (`->`)
    /// inside `Fn(…) -> T` bounds, not a closer.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.tok(self.i) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            prev_dash = t.is_punct('-');
            self.i += 1;
        }
    }

    /// Parses items until the matching `}` of an already-consumed `{`
    /// (or EOF at the top level). `in_type` carries the `impl`/`trait`
    /// type name so nested `fn`s become methods.
    fn items(&mut self, scope: &mut Vec<String>, in_type: Option<&str>) {
        while let Some(t) = self.tok(self.i) {
            // Attributes: skip, remembering a `#[cfg(test)]`.
            if t.is_punct('#') && (self.is(self.i + 1, '[') || self.is(self.i + 2, '[')) {
                let mut saw_cfg_test = false;
                while self.is(self.i, '#') || (self.is(self.i, '#') && self.is(self.i + 1, '!')) {
                    self.i += 1; // '#'
                    if self.is(self.i, '!') {
                        self.i += 1;
                    }
                    if !self.is(self.i, '[') {
                        break;
                    }
                    let start = self.i;
                    self.skip_balanced('[', ']');
                    saw_cfg_test |= self.attr_is_cfg_test(start, self.i);
                }
                if saw_cfg_test {
                    self.skip_item();
                }
                continue;
            }
            if t.is_punct('}') {
                self.i += 1;
                return;
            }
            if t.kind != TokKind::Ident {
                self.i += 1;
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    self.i += 1;
                    if self.is(self.i, '(') {
                        self.skip_balanced('(', ')');
                    }
                }
                // Modifiers that may precede `fn`.
                "unsafe" | "async" | "default" => self.i += 1,
                "const" => {
                    // `const fn f` is a function; `const NAME: T = …;` an item.
                    if self.ident_at(self.i + 1) == Some("fn") {
                        self.i += 1;
                    } else {
                        self.skip_to_semi();
                    }
                }
                "extern" => {
                    // `extern "C" fn`, `extern crate x;`, `extern { … }`.
                    self.i += 1;
                    if self.tok(self.i).is_some_and(|t| t.kind == TokKind::Str) {
                        self.i += 1;
                    }
                    if self.is(self.i, '{') {
                        self.skip_balanced('{', '}');
                    } else if self.ident_at(self.i) == Some("crate") {
                        self.skip_to_semi();
                    }
                }
                "mod" => {
                    self.i += 1;
                    let name = self.ident_at(self.i).map(str::to_string);
                    self.i += 1;
                    if self.is(self.i, '{') {
                        self.i += 1;
                        scope.push(name.unwrap_or_default());
                        self.items(scope, None);
                        scope.pop();
                    } else {
                        // `mod x;` — the file-path mapping covers it.
                        self.skip_to_semi();
                    }
                }
                "impl" => self.impl_or_trait_block(scope, true),
                "trait" => self.impl_or_trait_block(scope, false),
                "fn" => self.fn_item(scope, in_type),
                "use" => self.use_decl(scope),
                "struct" | "enum" | "union" => {
                    self.i += 1;
                    // name, generics, then `{…}` / `(…);` / `;`.
                    while let Some(t) = self.tok(self.i) {
                        if t.is_punct('<') {
                            self.skip_angles();
                        } else if t.is_punct('{') {
                            self.skip_balanced('{', '}');
                            break;
                        } else if t.is_punct('(') {
                            self.skip_balanced('(', ')');
                        } else if t.is_punct(';') {
                            self.i += 1;
                            break;
                        } else {
                            self.i += 1;
                        }
                    }
                }
                "static" | "type" => self.skip_to_semi(),
                "macro_rules" => {
                    // `macro_rules! name { … }`
                    self.i += 1;
                    while self.i < self.toks.len() && !self.is(self.i, '{') {
                        self.i += 1;
                    }
                    self.skip_balanced('{', '}');
                }
                _ => self.i += 1,
            }
        }
    }

    /// True when the attribute group `[start..end)` is `[cfg(test)]` or
    /// `[cfg(test, …)]` / `[cfg(any(test, …))]`.
    fn attr_is_cfg_test(&self, start: usize, end: usize) -> bool {
        let mut saw_cfg = false;
        for k in start..end {
            if let Some(t) = self.tok(k) {
                if t.is_ident("cfg") {
                    saw_cfg = true;
                }
                if saw_cfg && t.is_ident("test") {
                    return true;
                }
            }
        }
        false
    }

    /// Skips one whole item: either to the first `;` before any brace,
    /// or past the matching close of the first `{`.
    fn skip_item(&mut self) {
        while let Some(t) = self.tok(self.i) {
            if t.is_punct(';') {
                self.i += 1;
                return;
            }
            if t.is_punct('{') {
                self.skip_balanced('{', '}');
                return;
            }
            if t.is_punct('(') {
                self.skip_balanced('(', ')');
                continue;
            }
            if t.is_punct('<') {
                self.skip_angles();
                continue;
            }
            self.i += 1;
        }
    }

    /// Skips to the item-terminating `;`. Braces, brackets and parens
    /// are balanced over: array types (`[T; N]`) and array-repeat
    /// expressions carry interior semicolons, and struct-literal
    /// initializers carry interior braces — neither ends the item.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.tok(self.i) {
            if t.is_punct(';') {
                self.i += 1;
                return;
            }
            if t.is_punct('{') {
                self.skip_balanced('{', '}');
                continue;
            }
            if t.is_punct('[') {
                self.skip_balanced('[', ']');
                continue;
            }
            if t.is_punct('(') {
                self.skip_balanced('(', ')');
                continue;
            }
            self.i += 1;
        }
    }

    /// Parses an `impl`/`trait` header, pushes the type (or trait) name
    /// onto `scope` and parses the block's items as methods.
    fn impl_or_trait_block(&mut self, scope: &mut Vec<String>, is_impl: bool) {
        self.i += 1; // `impl` / `trait`
        if self.is(self.i, '<') {
            self.skip_angles();
        }
        // Read path segments until `for`, `where` or `{`; on `for`,
        // restart — the implementing type is what counts.
        let mut last_path: Vec<String> = Vec::new();
        loop {
            match self.tok(self.i) {
                Some(t) if t.is_ident("for") && is_impl => {
                    last_path.clear();
                    self.i += 1;
                }
                Some(t) if t.is_ident("where") || t.is_punct('{') => break,
                Some(t) if t.kind == TokKind::Ident => {
                    last_path.push(t.text.clone());
                    self.i += 1;
                }
                Some(t) if t.is_punct('<') => self.skip_angles(),
                Some(t) if t.is_punct('&') || t.is_punct(':') || t.kind == TokKind::Lifetime => {
                    self.i += 1;
                }
                Some(_) => self.i += 1,
                None => return,
            }
        }
        // Skip a `where` clause to the opening brace.
        while self.i < self.toks.len() && !self.is(self.i, '{') {
            if self.is(self.i, '<') {
                self.skip_angles();
            } else {
                self.i += 1;
            }
        }
        if !self.is(self.i, '{') {
            return;
        }
        self.i += 1;
        let ty = last_path.last().cloned().unwrap_or_default();
        scope.push(ty.clone());
        self.items_in_type(scope, &ty);
        scope.pop();
    }

    /// Like [`Parser::items`] but with the enclosing type name set, so
    /// `fn`s are recorded as methods.
    fn items_in_type(&mut self, scope: &mut Vec<String>, ty: &str) {
        let owned = ty.to_string();
        self.items(scope, Some(&owned));
    }

    /// Parses `fn name …(…) … { body }` and records the item.
    fn fn_item(&mut self, scope: &[String], in_type: Option<&str>) {
        let line = self.tok(self.i).map_or(0, |t| t.line);
        self.i += 1; // `fn`
        let Some(name) = self.ident_at(self.i).map(str::to_string) else {
            return;
        };
        self.i += 1;
        if self.is(self.i, '<') {
            self.skip_angles();
        }
        if self.is(self.i, '(') {
            self.skip_balanced('(', ')');
        }
        // Return type / where clause up to body or `;`.
        loop {
            match self.tok(self.i) {
                Some(t) if t.is_punct('{') => break,
                Some(t) if t.is_punct(';') => {
                    self.i += 1;
                    return; // declaration without a body
                }
                Some(t) if t.is_punct('<') => self.skip_angles(),
                Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                Some(t) if t.is_punct('[') => self.skip_balanced('[', ']'),
                Some(_) => self.i += 1,
                None => return,
            }
        }
        let body_start = self.i;
        self.skip_balanced('{', '}');
        let body_end = self.i.saturating_sub(1);

        let mut path: Vec<String> = scope.to_vec();
        path.push(name);
        let calls = self.scan_calls(body_start, body_end, in_type);
        self.out.fns.push(FnItem {
            path,
            line,
            body: (body_start, body_end),
            calls,
            is_method: in_type.is_some(),
        });
    }

    /// Collects every call expression in the token range `(start, end)`.
    /// The scan is flat: closures, nested blocks and macro arguments are
    /// all attributed to this function, which is the conservative choice
    /// for taint.
    fn scan_calls(&self, start: usize, end: usize, in_type: Option<&str>) -> Vec<CallSite> {
        let mut calls = Vec::new();
        let mut k = start + 1;
        while k < end {
            let t = &self.toks[k];
            // `.method(` / `.method::<T>(`
            if t.is_punct('.') {
                if let Some(name) = self.ident_at(k + 1) {
                    let mut j = k + 2;
                    if self.is(j, ':') && self.is(j + 1, ':') && self.is(j + 2, '<') {
                        j = self.angles_end(j + 2);
                    }
                    if self.is(j, '(') {
                        calls.push(CallSite {
                            line: self.toks[k + 1].line,
                            callee: Callee::Method(name.to_string()),
                        });
                    }
                    k += 2;
                    continue;
                }
                k += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                // Item declarations nested in the body are not calls.
                if matches!(t.text.as_str(), "fn" | "struct" | "enum" | "union") {
                    k += 2;
                    continue;
                }
                // Macro invocation: skip the name and bang; the macro's
                // arguments are scanned by the same flat walk.
                if self.is(k + 1, '!') {
                    k += 2;
                    continue;
                }
                if EXPR_KEYWORDS.contains(&t.text.as_str()) {
                    k += 1;
                    continue;
                }
                // Path: `a::b::c` with optional turbofish before `(`.
                let line = t.line;
                let mut segs = vec![t.text.clone()];
                let mut j = k + 1;
                while self.is(j, ':') && self.is(j + 1, ':') {
                    if let Some(seg) = self.ident_at(j + 2) {
                        segs.push(seg.to_string());
                        j += 3;
                    } else if self.is(j + 2, '<') {
                        j = self.angles_end(j + 2);
                    } else {
                        break;
                    }
                }
                if self.is(j, '(') {
                    if segs[0] == "Self" {
                        if let Some(ty) = in_type {
                            segs[0] = ty.to_string();
                        }
                    }
                    calls.push(CallSite {
                        line,
                        callee: Callee::Path(segs),
                    });
                }
                k = j.max(k + 1);
                continue;
            }
            k += 1;
        }
        calls
    }

    /// Index just past the `>` matching the `<` at `open`.
    fn angles_end(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        let mut prev_dash = false;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            prev_dash = t.is_punct('-');
            j += 1;
        }
        j
    }

    /// Parses `use path::{a, b as c, d::*};` into bindings.
    fn use_decl(&mut self, scope: &[String]) {
        self.i += 1; // `use`
        if self.is(self.i, ':') && self.is(self.i + 1, ':') {
            self.i += 2; // leading `::` (2015 absolute path)
        }
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, scope);
        self.skip_to_semi();
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>, scope: &[String]) {
        loop {
            if self.is(self.i, '{') {
                self.i += 1;
                loop {
                    if self.is(self.i, '}') {
                        self.i += 1;
                        return;
                    }
                    if self.is(self.i, ',') {
                        self.i += 1;
                        continue;
                    }
                    if self.tok(self.i).is_none() || self.is(self.i, ';') {
                        return;
                    }
                    let mut sub = prefix.clone();
                    self.use_tree(&mut sub, scope);
                }
            }
            if self.is(self.i, '*') {
                self.i += 1;
                self.out.globs.push((scope.to_vec(), prefix.clone()));
                return;
            }
            let Some(seg) = self.ident_at(self.i).map(str::to_string) else {
                return;
            };
            self.i += 1;
            if self.is(self.i, ':') && self.is(self.i + 1, ':') {
                self.i += 2;
                prefix.push(seg);
                continue;
            }
            // End of a path: optional `as` alias.
            let (name, path) = if seg == "self" {
                let name = prefix.last().cloned().unwrap_or_default();
                (name, prefix.clone())
            } else {
                let mut p = prefix.clone();
                p.push(seg.clone());
                (seg, p)
            };
            let name = if self.ident_at(self.i) == Some("as") {
                self.i += 1;
                let alias = self.ident_at(self.i).map(str::to_string);
                self.i += 1;
                alias.unwrap_or(name)
            } else {
                name
            };
            if !name.is_empty() {
                self.out.uses.push(UseImport {
                    name,
                    path,
                    scope: scope.to_vec(),
                });
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    fn fn_names(p: &ParsedFile) -> Vec<String> {
        p.fns.iter().map(|f| f.path.join("::")).collect()
    }

    #[test]
    fn modules_impls_and_fns_nest() {
        let src = "\
mod a {
    pub fn free() {}
    pub struct S { x: u32 }
    impl S {
        pub fn method(&self) -> u32 { helper() }
    }
    mod b {
        fn deep() {}
    }
}
fn top() {}
trait T {
    fn provided(&self) { default_impl(); }
    fn required(&self);
}";
        let p = parse(src);
        assert_eq!(
            fn_names(&p),
            vec![
                "a::free",
                "a::S::method",
                "a::b::deep",
                "top",
                "T::provided"
            ]
        );
        assert!(p.fns[1].is_method);
        assert!(!p.fns[0].is_method);
    }

    #[test]
    fn impl_trait_for_type_records_the_type() {
        let src = "\
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { inner() }
}
impl<W: Write> JsonlSink<W> {
    fn write(&mut self) { go() }
}";
        let p = parse(src);
        assert_eq!(fn_names(&p), vec!["Diagnostic::fmt", "JsonlSink::write"]);
    }

    #[test]
    fn calls_paths_methods_and_turbofish() {
        let src = "\
fn f() {
    helper();
    a::b::c(1, 2);
    x.method(3);
    v.collect::<Vec<_>>();
    Instant::now();
    Self::assoc();
    if cond(x) { return; }
    format!(\"{}\", inner_call());
}";
        let p = parse(src);
        let calls: Vec<String> = p.fns[0]
            .calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Path(s) => s.join("::"),
                Callee::Method(m) => format!(".{m}"),
            })
            .collect();
        assert_eq!(
            calls,
            vec![
                "helper",
                "a::b::c",
                ".method",
                ".collect",
                "Instant::now",
                "Self::assoc",
                "cond",
                "inner_call"
            ]
        );
    }

    #[test]
    fn self_resolves_to_impl_type() {
        let src = "impl Foo { fn f() { Self::make(); } }";
        let p = parse(src);
        assert_eq!(
            p.fns[0].calls[0].callee,
            Callee::Path(vec!["Foo".into(), "make".into()])
        );
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "\
fn live() { a(); }
#[cfg(test)]
mod tests {
    fn hidden() { std::time::Instant::now(); }
}
#[cfg(test)]
fn also_hidden() { b(); }
fn live2() {}";
        let p = parse(src);
        assert_eq!(fn_names(&p), vec!["live", "live2"]);
    }

    #[test]
    fn use_trees_bind_names() {
        let src = "\
use odlb_trace::{Tracer, sink::{fnv1a64, JsonlSink as JS}};
use odlb_engine::stamp;
use std::collections::BTreeMap;
use odlb_metrics::prelude::*;
mod inner { use crate::top::Thing; }";
        let p = parse(src);
        let bound: Vec<(String, String)> = p
            .uses
            .iter()
            .map(|u| (u.name.clone(), u.path.join("::")))
            .collect();
        assert!(bound.contains(&("Tracer".into(), "odlb_trace::Tracer".into())));
        assert!(bound.contains(&("fnv1a64".into(), "odlb_trace::sink::fnv1a64".into())));
        assert!(bound.contains(&("JS".into(), "odlb_trace::sink::JsonlSink".into())));
        assert!(bound.contains(&("stamp".into(), "odlb_engine::stamp".into())));
        assert!(bound.contains(&("Thing".into(), "crate::top::Thing".into())));
        assert_eq!(p.globs.len(), 1);
        assert_eq!(p.globs[0].1.join("::"), "odlb_metrics::prelude");
        // the `use` inside `mod inner` carries its scope
        let inner = p.uses.iter().find(|u| u.name == "Thing").unwrap();
        assert_eq!(inner.scope, vec!["inner".to_string()]);
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail() {
        let src = "\
fn generic<T: Fn(u32) -> u32, const N: usize>(x: [T; N]) -> Vec<u32>
where
    T: Clone,
{
    work(x)
}";
        let p = parse(src);
        assert_eq!(fn_names(&p), vec!["generic"]);
        assert_eq!(p.fns[0].calls.len(), 1);
    }

    #[test]
    fn struct_literal_consts_do_not_swallow_following_items() {
        // `[T; N]` carries a `;` inside brackets and a struct-literal
        // initializer carries `}` tokens; a naive skip-to-semicolon
        // stopped inside the type and the first `}` then ended the whole
        // file's item walk, silently dropping every later `fn`.
        let src = "\
pub struct Info { name: &'static str, traced: bool }
pub const REGISTRY: [Info; 2] = [
    Info { name: \"a\", traced: true },
    Info { name: \"b\", traced: false },
];
static PAIRS: [(u32, [u8; 4]); 1] = [(1, [0; 4])];
fn after() { survives(); }";
        let p = parse(src);
        assert_eq!(fn_names(&p), vec!["after"]);
        assert_eq!(p.fns[0].calls.len(), 1);
    }

    #[test]
    fn fn_body_ranges_cover_the_braces() {
        let src = "fn a() { x(); }\nfn b() { y(); }";
        let p = parse(src);
        for f in &p.fns {
            assert!(p.fns.len() == 2);
            let (s, e) = f.body;
            assert!(s < e);
        }
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[1].line, 2);
    }
}
