//! Source→sink taint analysis over the workspace call graph.
//!
//! The token rules (D01–D05) flag nondeterminism at the line that
//! produces it; this layer flags nondeterminism that *travels* — a
//! wall-clock read wrapped two crates away from the exporter that
//! finally writes it. The model is function-granular and
//! over-approximating:
//!
//! - A function is **tainted** with a category when its body touches a
//!   source directly, or when any callee is tainted (data is assumed to
//!   flow back through returns and out through arguments).
//! - A function **reaches a sink** when its body touches one directly or
//!   any callee does.
//! - A function that is tainted *and* reaches a sink is a violation,
//!   reported once at the meeting point (a node is skipped when one of
//!   its callees already violates for the same category) with the full
//!   source→…→sink chain rendered.
//!
//! Sanctioned boundaries kill taint: files whose *job* is the
//! nondeterminism in question (the overhead profiler measures wall time;
//! the bench harness's payload *is* wall time) are listed in
//! [`SANCTIONS`] per category, and a
//! `// odlb-lint: allow(T0x) — reason` pragma on a `fn` declaration
//! line does the same surgically. Every entry must stay load-bearing:
//! the policy tests remove each one and assert a diagnostic appears.

use crate::graph::{CallGraph, FileUnit};
use crate::lexer::{TokKind, Token};
use crate::rules::{
    hash_bound_idents, sorted_downstream, ChainStep, Diagnostic, HASH_ITER_METHODS, RNG_EVIDENCE,
};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of nondeterminism a taint fact carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Wall-clock reads (`Instant::now`, `SystemTime`, `UNIX_EPOCH`).
    WallClock,
    /// Ambient randomness (`rand`, `thread_rng`, `RandomState`, …).
    Randomness,
    /// Thread identity (`thread::current`, `ThreadId`).
    ThreadIdentity,
    /// Host parallelism (`available_parallelism`).
    Parallelism,
    /// Pointer-address formatting (`{:p}`).
    PtrAddr,
    /// Unordered `HashMap`/`HashSet` iteration.
    HashOrder,
}

/// All categories, in reporting order.
pub const CATEGORIES: [Category; 6] = [
    Category::WallClock,
    Category::Randomness,
    Category::ThreadIdentity,
    Category::Parallelism,
    Category::PtrAddr,
    Category::HashOrder,
];

impl Category {
    /// The diagnostic rule this category reports under.
    pub fn rule(self) -> &'static str {
        match self {
            Category::WallClock => "T01",
            Category::Randomness | Category::ThreadIdentity | Category::Parallelism => "T02",
            Category::PtrAddr | Category::HashOrder => "T03",
        }
    }

    /// Short human-readable phrase for messages.
    pub fn phrase(self) -> &'static str {
        match self {
            Category::WallClock => "wall-clock time",
            Category::Randomness => "ambient randomness",
            Category::ThreadIdentity => "thread identity",
            Category::Parallelism => "host parallelism",
            Category::PtrAddr => "a pointer address",
            Category::HashOrder => "hasher-dependent iteration order",
        }
    }
}

/// One sanctioned boundary: taint of the listed categories dies at every
/// function defined in `file`.
#[derive(Clone, Debug)]
pub struct Sanction {
    /// Workspace-relative path.
    pub file: &'static str,
    /// Categories whose taint this file may absorb.
    pub categories: &'static [Category],
    /// Why the boundary is sound (documentation; also surfaced in docs).
    pub reason: &'static str,
}

/// The workspace's sanctioned boundaries. Related to the D01/D04 policy
/// exemptions in [`crate::policy_for`], but strictly *smaller*: a policy
/// exemption lets a file touch a source, while a sanction is only needed
/// where that taint would otherwise reach an export sink. Every entry is
/// pinned load-bearing by `tests/taint_analysis.rs` — files like
/// `serve.rs`, `harness.rs`, `runner.rs`, and `rng.rs` touch sources but
/// need no entry because their taint never reaches a sink.
pub const SANCTIONS: [Sanction; 4] = [
    Sanction {
        file: "crates/telemetry/src/profiler.rs",
        categories: &[Category::WallClock],
        reason: "the overhead profiler's job is measuring wall time; its dumps are \
                 validated and wall figures are never diffed",
    },
    Sanction {
        file: "crates/bench/src/suite.rs",
        categories: &[Category::WallClock],
        reason: "suite wall timings are the bench payload; BENCH artifacts are \
                 explicitly environment-dependent and never byte-diffed",
    },
    Sanction {
        file: "crates/bench/src/bin/experiments.rs",
        categories: &[Category::WallClock],
        reason: "the experiments binary reports elapsed wall time to stderr; artifact \
                 payloads come from the simulation clock",
    },
    Sanction {
        file: "crates/bench/src/sweep.rs",
        categories: &[Category::WallClock],
        reason: "per-cell wall clocks are the sweep's bench payload, carried out of \
                 band in SweepOutcome; cell content hashes and merged artifacts are \
                 derived from the canonical config and simulation clock only",
    },
];

/// A direct source occurrence inside one function body.
#[derive(Clone, Debug)]
struct SourceHit {
    cat: Category,
    line: u32,
    what: String,
}

/// A direct sink occurrence inside one function body.
#[derive(Clone, Debug)]
struct SinkHit {
    line: u32,
    what: String,
}

/// The result of a taint pass.
pub struct TaintResult {
    /// T01–T03 findings, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Pragma lines (per file) consumed as propagation boundaries, so
    /// the S00 unused-pragma check does not flag them.
    pub used_pragmas: BTreeMap<String, BTreeSet<u32>>,
}

/// Iterator terminals whose result does not depend on visit order.
const ORDER_INSENSITIVE: [&str; 8] = [
    "sum", "count", "min", "max", "all", "any", "len", "is_empty",
];

/// Runs the taint pass over `units` and their call `graph` under the
/// given sanction table (pass [`SANCTIONS`] outside tests).
pub fn analyze(units: &[FileUnit], graph: &CallGraph, sanctions: &[Sanction]) -> TaintResult {
    let n = graph.nodes.len();

    // Per-node direct facts.
    let mut sources: Vec<Vec<SourceHit>> = Vec::with_capacity(n);
    let mut sinks: Vec<Vec<SinkHit>> = Vec::with_capacity(n);
    let bound_per_unit: Vec<BTreeSet<String>> = units
        .iter()
        .map(|u| hash_bound_idents(&u.lexed.tokens))
        .collect();
    for node in &graph.nodes {
        let u = &units[node.file_idx];
        let f = &u.parsed.fns[node.fn_idx];
        sources.push(scan_sources(
            &u.lexed.tokens,
            f.body,
            &bound_per_unit[node.file_idx],
        ));
        sinks.push(scan_sinks(&u.lexed.tokens, f.body));
    }

    // Boundaries: sanctioned files and fn-line pragmas.
    let mut boundary: Vec<BTreeSet<Category>> = vec![BTreeSet::new(); n];
    let mut used_pragmas: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let u = &units[node.file_idx];
        for s in sanctions {
            if s.file == u.rel {
                boundary[i].extend(s.categories.iter().copied());
            }
        }
        // An `allow(T0x) — reason` pragma on the fn line or the line
        // above stops propagation for that rule's categories. (The
        // pragma prefix is spelled out nowhere here: this comment would
        // otherwise lex as a pragma itself.)
        for p in &u.lexed.pragmas {
            if !p.well_formed || p.reason.is_empty() {
                continue;
            }
            if p.line != node.line && p.line + 1 != node.line {
                continue;
            }
            let mut hit = false;
            for cat in CATEGORIES {
                if p.rules.iter().any(|r| r == cat.rule() || r == "all") {
                    boundary[i].insert(cat);
                    hit = true;
                }
            }
            if hit {
                used_pragmas
                    .entry(u.rel.clone())
                    .or_default()
                    .insert(p.line);
            }
        }
    }

    // Fixpoint: tainted[cat] and sink_reach propagate callee → caller.
    let cat_idx = |c: Category| CATEGORIES.iter().position(|&x| x == c).unwrap_or(0);
    let mut tainted = vec![[false; CATEGORIES.len()]; n];
    let mut reach = vec![false; n];
    for i in 0..n {
        for s in &sources[i] {
            if !boundary[i].contains(&s.cat) {
                tainted[i][cat_idx(s.cat)] = true;
            }
        }
        reach[i] = !sinks[i].is_empty();
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for &c in &graph.nodes[i].callees {
                if reach[c] && !reach[i] {
                    reach[i] = true;
                    changed = true;
                }
                for (k, &cat) in CATEGORIES.iter().enumerate() {
                    if tainted[c][k] && !tainted[i][k] && !boundary[i].contains(&cat) {
                        tainted[i][k] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    // Report at meeting points only: skip a node when a callee already
    // violates for the same category *strictly below it* — a violating
    // callee that can reach back (recursion) is the same meeting point,
    // not a deeper one, and must not suppress the report.
    let violates = |i: usize, k: usize| tainted[i][k] && reach[i];
    let reaches = |from: usize, to: usize, k: usize| -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<usize> = [from].into();
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            for &c in &graph.nodes[u].callees {
                if violates(c, k) && seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        false
    };
    let mut diagnostics = Vec::new();
    for i in 0..n {
        for (k, &cat) in CATEGORIES.iter().enumerate() {
            if !violates(i, k) {
                continue;
            }
            if graph.nodes[i]
                .callees
                .iter()
                .any(|&c| c != i && violates(c, k) && !reaches(c, i, k))
            {
                continue;
            }
            diagnostics.push(render(
                units, graph, &sources, &sinks, &tainted, &reach, i, cat, k,
            ));
        }
    }
    diagnostics.sort();
    diagnostics.dedup();
    TaintResult {
        diagnostics,
        used_pragmas,
    }
}

/// Shortest deterministic path from `start` following `step`-eligible
/// callee edges to a node satisfying `is_target`; ties broken by node
/// index. Returns the node sequence including both endpoints.
fn walk_down(
    graph: &CallGraph,
    start: usize,
    is_target: &dyn Fn(usize) -> bool,
    step: &dyn Fn(usize) -> bool,
) -> Vec<usize> {
    if is_target(start) {
        return vec![start];
    }
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut frontier = vec![start];
    let mut seen: BTreeSet<usize> = [start].into();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &c in &graph.nodes[u].callees {
                if seen.contains(&c) || !step(c) {
                    continue;
                }
                seen.insert(c);
                prev.insert(c, u);
                if is_target(c) {
                    let mut path = vec![c];
                    let mut at = c;
                    while at != start {
                        at = prev[&at];
                        path.push(at);
                    }
                    path.reverse();
                    return path;
                }
                next.push(c);
            }
        }
        frontier = next;
    }
    vec![start]
}

#[allow(clippy::too_many_arguments)]
fn render(
    units: &[FileUnit],
    graph: &CallGraph,
    sources: &[Vec<SourceHit>],
    sinks: &[Vec<SinkHit>],
    tainted: &[[bool; CATEGORIES.len()]],
    reach: &[bool],
    node: usize,
    cat: Category,
    k: usize,
) -> Diagnostic {
    // Downward path from the meeting point to a concrete source…
    let has_src = |i: usize| sources[i].iter().any(|s| s.cat == cat);
    let to_source = walk_down(graph, node, &has_src, &|i| tainted[i][k]);
    // …and to a concrete sink.
    let has_sink = |i: usize| !sinks[i].is_empty();
    let to_sink = walk_down(graph, node, &has_sink, &|i| reach[i]);

    // Chain: source end first, meeting point in the middle, sink last.
    let mut order: Vec<usize> = to_source.iter().rev().copied().collect();
    order.extend(to_sink.iter().skip(1));

    let src_node = *to_source.last().unwrap_or(&node);
    let sink_node = *to_sink.last().unwrap_or(&node);
    let src_hit = sources[src_node].iter().find(|s| s.cat == cat);
    let sink_hit = sinks[sink_node].first();

    let chain: Vec<ChainStep> = order
        .iter()
        .map(|&i| {
            let n = &graph.nodes[i];
            let mut label = n.id.clone();
            if i == src_node {
                if let Some(s) = src_hit {
                    label.push_str(&format!(" [source: {} @ line {}]", s.what, s.line));
                }
            }
            if i == sink_node {
                if let Some(s) = sink_hit {
                    label.push_str(&format!(" [sink: {} @ line {}]", s.what, s.line));
                }
            }
            ChainStep {
                file: units[n.file_idx].rel.clone(),
                line: n.line,
                label,
            }
        })
        .collect();

    let rendered: Vec<String> = chain.iter().map(|s| s.label.clone()).collect();
    let meet = &graph.nodes[node];
    Diagnostic {
        file: units[meet.file_idx].rel.clone(),
        line: meet.line,
        rule: cat.rule(),
        message: format!(
            "{} flows into {} with no sanctioned boundary; chain: {}",
            cat.phrase(),
            sink_hit.map_or("an export sink".to_string(), |s| format!("`{}`", s.what)),
            rendered.join(" -> ")
        ),
        chain,
    }
}

/// Scans one fn body for direct nondeterminism sources.
fn scan_sources(toks: &[Token], body: (usize, usize), bound: &BTreeSet<String>) -> Vec<SourceHit> {
    let (start, end) = body;
    let end = end.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    let path2 = |i: usize, a: &str, b: &str| {
        i + 3 <= end
            && toks[i].is_ident(a)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident(b)
    };
    let mut i = start;
    while i <= end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if path2(i, "Instant", "now") {
                out.push(SourceHit {
                    cat: Category::WallClock,
                    line: t.line,
                    what: "Instant::now".into(),
                });
            } else if t.is_ident("SystemTime") || t.is_ident("UNIX_EPOCH") {
                out.push(SourceHit {
                    cat: Category::WallClock,
                    line: t.line,
                    what: t.text.clone(),
                });
            } else if RNG_EVIDENCE.contains(&t.text.as_str()) {
                out.push(SourceHit {
                    cat: Category::Randomness,
                    line: t.line,
                    what: t.text.clone(),
                });
            } else if path2(i, "thread", "current") || t.is_ident("ThreadId") {
                out.push(SourceHit {
                    cat: Category::ThreadIdentity,
                    line: t.line,
                    what: if t.is_ident("ThreadId") {
                        "ThreadId".into()
                    } else {
                        "thread::current".into()
                    },
                });
            } else if t.is_ident("available_parallelism") {
                out.push(SourceHit {
                    cat: Category::Parallelism,
                    line: t.line,
                    what: "available_parallelism".into(),
                });
            }
        } else if t.kind == TokKind::Str && (t.text.contains(":p}") || t.text.contains(":#p}")) {
            out.push(SourceHit {
                cat: Category::PtrAddr,
                line: t.line,
                what: "{:p} pointer formatting".into(),
            });
        }
        i += 1;
    }
    out.extend(scan_hash_order(toks, body, bound));
    out
}

/// Hash-order sources: unordered iteration that is not provably
/// neutralised (sorted in-statement, sorted later through the binder, or
/// consumed by an order-insensitive terminal).
fn scan_hash_order(
    toks: &[Token],
    body: (usize, usize),
    bound: &BTreeSet<String>,
) -> Vec<SourceHit> {
    let (start, end) = body;
    let end = end.min(toks.len().saturating_sub(1));
    if bound.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();

    // `.iter()`-family on a tracked receiver.
    for i in start + 1..end {
        if toks[i].is_punct('.')
            && i + 2 <= end
            && toks[i + 1].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('(')
            && toks[i - 1].kind == TokKind::Ident
            && bound.contains(&toks[i - 1].text)
            && !sorted_downstream(toks, i)
            && !order_insensitive_downstream(toks, i, end)
            && !binder_sorted_later(toks, body, i)
        {
            out.push(SourceHit {
                cat: Category::HashOrder,
                line: toks[i].line,
                what: format!("{}.{}()", toks[i - 1].text, toks[i + 1].text),
            });
        }
    }

    // `for … in <tracked map>`.
    let mut i = start;
    while i <= end {
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_pos = None;
        while j <= end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            } else if depth == 0 && t.is_ident("in") {
                in_pos = Some(j);
            }
            j += 1;
        }
        if let Some(p) = in_pos {
            for t in toks.iter().take(j).skip(p + 1) {
                if t.kind == TokKind::Ident && bound.contains(&t.text) {
                    out.push(SourceHit {
                        cat: Category::HashOrder,
                        line: t.line,
                        what: format!("for … in {}", t.text),
                    });
                    break;
                }
            }
        }
        i = j + 1;
    }
    out
}

/// True when the statement's result is order-free (`.sum()`, `.len()`…).
fn order_insensitive_downstream(toks: &[Token], from: usize, end: usize) -> bool {
    for t in toks.iter().take(end + 1).skip(from).take(80) {
        if t.is_punct(';') {
            return false;
        }
        if t.kind == TokKind::Ident && ORDER_INSENSITIVE.contains(&t.text.as_str()) {
            return true;
        }
    }
    false
}

/// True when the iteration statement binds `let [mut] NAME = …` and a
/// later statement in the same body sorts `NAME` (`NAME.sort*`): the
/// collect-then-sort idiom, invisible to the one-statement heuristic.
fn binder_sorted_later(toks: &[Token], body: (usize, usize), site: usize) -> bool {
    let (start, end) = body;
    // Statement start: previous `;`, `{` or `}`.
    let mut j = site;
    while j > start {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !toks[j].is_ident("let") {
        return false;
    }
    let mut name_at = j + 1;
    if toks.get(name_at).is_some_and(|t| t.is_ident("mut")) {
        name_at += 1;
    }
    let Some(name) = toks.get(name_at).filter(|t| t.kind == TokKind::Ident) else {
        return false;
    };
    // Later `NAME.sort*` anywhere in the body after the site.
    for i in site..end.min(toks.len().saturating_sub(2)) {
        if toks[i].is_ident(&name.text)
            && toks[i + 1].is_punct('.')
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"))
        {
            return true;
        }
    }
    false
}

/// Scans one fn body for direct export sinks.
fn scan_sinks(toks: &[Token], body: (usize, usize)) -> Vec<SinkHit> {
    let (start, end) = body;
    let end = end.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    let mut i = start;
    while i <= end {
        let t = &toks[i];
        // Method sinks: `.emit(…)` / `.emit_with(…)` on a trace sink.
        if t.is_punct('.')
            && i + 2 <= end
            && (toks[i + 1].is_ident("emit") || toks[i + 1].is_ident("emit_with"))
            && toks[i + 2].is_punct('(')
        {
            out.push(SinkHit {
                line: toks[i + 1].line,
                what: format!(".{}()", toks[i + 1].text),
            });
            i += 3;
            continue;
        }
        if t.kind == TokKind::Ident {
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            let name = t.text.as_str();
            let is_sink = match name {
                // digest and exporter terminals must actually be called
                "fnv1a64" | "render_prometheus" | "render_csv" => called,
                // rendering a folded dump is sink enough on its own
                "folded_sim" | "folded_wall" => true,
                // constructing a figure payload
                "FigureOutput" => true,
                // writing a JSONL trace
                "JsonlSink" => true,
                _ => false,
            };
            if is_sink {
                out.push(SinkHit {
                    line: t.line,
                    what: name.to_string(),
                });
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse_file(&lexed);
        FileUnit {
            rel: rel.to_string(),
            lexed,
            parsed,
        }
    }

    fn run(units: Vec<FileUnit>) -> Vec<Diagnostic> {
        let graph = build(&units);
        analyze(&units, &graph, &SANCTIONS).diagnostics
    }

    #[test]
    fn two_hop_cross_crate_flow_is_caught_with_chain() {
        let units = vec![
            unit(
                "crates/a/src/clock.rs",
                "pub fn wall_micros() -> u128 { std::time::Instant::now().elapsed().as_micros() }",
            ),
            unit(
                "crates/b/src/stamp.rs",
                "use odlb_a::clock::wall_micros;\npub fn stamp() -> u128 { wall_micros() }",
            ),
            unit(
                "crates/c/src/out.rs",
                "use odlb_b::stamp::stamp;\npub fn write_digest() -> u64 { fnv1a64(&stamp().to_le_bytes()) }",
            ),
        ];
        let got = run(units);
        assert_eq!(got.len(), 1, "{got:?}");
        let d = &got[0];
        assert_eq!(d.rule, "T01");
        assert_eq!(d.file, "crates/c/src/out.rs");
        // chain runs source-first: wall_micros -> stamp -> write_digest
        let labels: Vec<&str> = d.chain.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(d.chain.len(), 3, "{labels:?}");
        assert!(labels[0].starts_with("odlb_a::clock::wall_micros"));
        assert!(labels[0].contains("source: Instant::now"));
        assert!(labels[1].starts_with("odlb_b::stamp::stamp"));
        assert!(labels[2].contains("sink: fnv1a64"));
        assert!(d.message.contains("->"));
    }

    #[test]
    fn sanctioned_file_kills_taint() {
        let units = vec![
            unit(
                "crates/telemetry/src/profiler.rs",
                "pub fn overhead() -> u128 { Instant::now().elapsed().as_micros() }",
            ),
            unit(
                "crates/c/src/out.rs",
                "use odlb_telemetry::profiler::overhead;\npub fn write() -> u64 { fnv1a64(&overhead().to_le_bytes()) }",
            ),
        ];
        assert!(run(units).is_empty());
    }

    #[test]
    fn pragma_boundary_kills_taint_and_is_marked_used() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "// odlb-lint: allow(T01) — wall figure is advisory, never diffed\n\
             pub fn wall() -> u128 { Instant::now().elapsed().as_micros() }\n\
             pub fn write() -> u64 { fnv1a64(&wall().to_le_bytes()) }",
        )];
        let graph = build(&units);
        let r = analyze(&units, &graph, &SANCTIONS);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.used_pragmas["crates/a/src/lib.rs"].contains(&1));
    }

    #[test]
    fn source_without_sink_and_sink_without_source_are_clean() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn timed() -> u128 { Instant::now().elapsed().as_micros() }\n\
             pub fn export(v: &[u8]) -> u64 { fnv1a64(v) }",
        )];
        assert!(run(units).is_empty());
    }

    #[test]
    fn hash_order_source_categories() {
        // unordered iteration into an emit sink → T03
        let bad = unit(
            "crates/a/src/lib.rs",
            "pub fn dump(m: &HashMap<u32, u32>, t: &Tracer) { for (k, v) in m.iter() { t.emit(k, v); } }",
        );
        let got = run(vec![bad]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "T03");

        // collect-then-sort two statements apart is neutral
        let sorted = unit(
            "crates/a/src/lib.rs",
            "pub fn dump(m: &HashMap<u32, u32>, t: &Tracer) {\n\
                 let mut v: Vec<u32> = m.keys().copied().collect();\n\
                 v.sort_unstable();\n\
                 t.emit(0, v[0]);\n\
             }",
        );
        assert!(run(vec![sorted]).is_empty());

        // order-insensitive terminal is neutral
        let summed = unit(
            "crates/a/src/lib.rs",
            "pub fn dump(m: &HashMap<u32, u64>, t: &Tracer) { let s: u64 = m.values().sum(); t.emit(0, s); }",
        );
        assert!(run(vec![summed]).is_empty());
    }

    #[test]
    fn report_is_at_the_meeting_point_only() {
        // caller -> meeting -> {source, sink}: one diagnostic, at meeting.
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn source() -> u128 { Instant::now().elapsed().as_micros() }\n\
             pub fn meeting() -> u64 { fnv1a64(&source().to_le_bytes()) }\n\
             pub fn caller() -> u64 { meeting() }",
        )];
        let got = run(units);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn recursion_terminates() {
        let units = vec![unit(
            "crates/a/src/lib.rs",
            "pub fn a(n: u32) -> u64 { if n == 0 { fnv1a64(&SystemTime::now().elapsed().unwrap().as_micros().to_le_bytes()) } else { b(n - 1) } }\n\
             pub fn b(n: u32) -> u64 { a(n) }",
        )];
        let got = run(units);
        assert!(!got.is_empty());
    }

    #[test]
    fn output_is_deterministic() {
        let mk = || {
            vec![
                unit(
                    "crates/a/src/lib.rs",
                    "pub fn s1() -> u128 { Instant::now().elapsed().as_micros() }\n\
                     pub fn s2() { let r = rand::random::<u32>(); }\n\
                     pub fn m() -> u64 { s2(); fnv1a64(&s1().to_le_bytes()) }",
                ),
                unit(
                    "crates/b/src/lib.rs",
                    "use odlb_a::m;\npub fn top() -> u64 { m() }",
                ),
            ]
        };
        let a: Vec<String> = run(mk()).iter().map(|d| format!("{d}")).collect();
        let b: Vec<String> = run(mk()).iter().map(|d| format!("{d}")).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
