//! A small but correct Rust lexer.
//!
//! The rule engine must match real tokens — `Instant::now` inside a
//! string literal, a nested block comment, or a raw string is *not* a
//! violation. This lexer understands exactly enough of the language to
//! guarantee that: line comments (including doc comments), nested block
//! comments, string / raw-string / byte-string / char literals with
//! escapes, lifetimes vs char literals, identifiers, numbers and
//! single-character punctuation. Everything is tagged with its 1-based
//! source line so diagnostics stay precise.
//!
//! Suppression pragmas (`// odlb-lint: allow(<rules>) — <reason>`) live
//! in comments, which ordinary tokenisation discards, so the lexer
//! collects them as a side channel while scanning.

/// The kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `in`, `HashMap`, …).
    Ident,
    /// Single punctuation character (`:`, `.`, `(`, …).
    Punct,
    /// String literal of any flavour (cooked, raw, byte); text is the
    /// literal's *content*, with the quotes and any raw-string hashes
    /// stripped but escapes left as written.
    Str,
    /// Character or byte literal (content between the quotes).
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Lifetime (`'a`), without the leading quote.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One `odlb-lint: allow(...)` suppression pragma found in a comment.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Rule names listed inside `allow(...)`, e.g. `["D02", "P01"]`.
    pub rules: Vec<String>,
    /// Free-text justification after the closing parenthesis.
    pub reason: String,
    /// False when the comment said `odlb-lint:` but the `allow(...)`
    /// clause did not parse.
    pub well_formed: bool,
}

/// The result of lexing one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression pragmas, in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes `src`, returning tokens plus any suppression pragmas found in
/// comments. Never fails: unterminated literals simply end at EOF.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let text = self.cooked_string();
                    self.push(TokKind::Str, text, line);
                }
                '\'' => self.quote(),
                c if c.is_ascii_digit() => {
                    let text = self.number();
                    self.push(TokKind::Num, text, line);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let ident = self.ident();
                    // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#,
                    // b'…'. Only treat the ident as a prefix when the next
                    // character actually opens a literal.
                    match (ident.as_str(), self.peek(0)) {
                        ("r" | "br", Some('"' | '#')) if self.raw_string_follows() => {
                            let text = self.raw_string();
                            self.push(TokKind::Str, text, line);
                        }
                        ("b", Some('"')) => {
                            let text = self.cooked_string();
                            self.push(TokKind::Str, text, line);
                        }
                        ("b", Some('\'')) => {
                            self.bump();
                            let text = self.char_body();
                            self.push(TokKind::Char, text, line);
                        }
                        // Raw identifier `r#name` (raw_string_follows
                        // ruled out `r#"…"#` above). One token, prefix
                        // kept, so `r#fn` never injects a phantom `fn`
                        // keyword into the stream.
                        ("r", Some('#')) => {
                            self.bump();
                            let name = self.ident();
                            self.push(TokKind::Ident, format!("r#{name}"), line);
                        }
                        _ => self.push(TokKind::Ident, ident, line),
                    }
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Pragmas live in plain `//` comments only. Doc comments
        // (`///`, `//!`) document — including documenting the pragma
        // syntax itself — and must never act as suppressions.
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        if !is_doc {
            if let Some(p) = parse_pragma(&text, line) {
                self.out.pragmas.push(p);
            }
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn cooked_string(&mut self) -> String {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                c => text.push(c),
            }
        }
        text
    }

    /// At a position right after an `r`/`br` ident: does a raw string
    /// really start here (`#…#"` or `"`), as opposed to e.g. `r#raw_ident`?
    fn raw_string_follows(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                // Terminated only by `"` followed by `hashes` hashes.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        text
    }

    /// Lexes from a leading `'`: either a lifetime or a char literal.
    fn quote(&mut self) {
        let line = self.line;
        self.bump();
        match (self.peek(0), self.peek(1)) {
            // `'\n'`, `'\''`, `'\u{…}'` — escapes are always char literals.
            (Some('\\'), _) => {
                let text = self.char_body();
                self.push(TokKind::Char, text, line);
            }
            // `'x'` — a closing quote right after one char.
            (Some(_), Some('\'')) => {
                let text = self.char_body();
                self.push(TokKind::Char, text, line);
            }
            // `'ident` with no closing quote — a lifetime.
            (Some(c), _) if c.is_alphabetic() || c == '_' => {
                let name = self.ident();
                self.push(TokKind::Lifetime, name, line);
            }
            _ => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    /// Consumes a char-literal body up to and including the closing quote
    /// (the opening quote is already consumed).
    fn char_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                c => text.push(c),
            }
        }
        text
    }

    fn number(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.5` continues the number; `1.max(2)` and `0..n` do not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        text.push('.');
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        text
    }

    fn ident(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }
}

/// Parses a suppression pragma out of one line comment's text.
///
/// Grammar: `// odlb-lint: allow(RULE[,RULE…]) — reason text`. The
/// em-dash may also be `-` or `:`; the reason is everything after it.
fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let at = comment.find("odlb-lint:")?;
    let rest = comment[at + "odlb-lint:".len()..].trim_start();
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(Pragma {
            line,
            rules: Vec::new(),
            reason: String::new(),
            well_formed: false,
        });
    };
    let Some(close) = body.find(')') else {
        return Some(Pragma {
            line,
            rules: Vec::new(),
            reason: String::new(),
            well_formed: false,
        });
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = body[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim()
        .to_string();
    let well_formed = !rules.is_empty();
    Some(Pragma {
        line,
        rules,
        reason,
        well_formed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // Instant::now in a line comment
            /* SystemTime in /* a nested */ block comment */
            let s = "Instant::now inside a string";
            let r = r#"HashMap "quoted" raw"#;
            let actual = marker;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"marker".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = lex(r###"r##"a "# b"## after"###).tokens;
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].text, "a \"# b");
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\nb \"multi\nline\" c\nd";
        let toks = lex(src).tokens;
        let lines: Vec<(String, u32)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines[0], ("a".to_string(), 1));
        assert_eq!(lines[1], ("b".to_string(), 2));
        assert_eq!(lines[2], ("multi\nline".to_string(), 2));
        assert_eq!(lines[3], ("c".to_string(), 3));
        assert_eq!(lines[4], ("d".to_string(), 4));
    }

    #[test]
    fn numbers_do_not_swallow_method_calls_or_ranges() {
        let toks = lex("1.5 2.max(3) 0..7 0x1f 1_000u64").tokens;
        let nums: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.5", "2", "3", "0", "7", "0x1f", "1_000u64"]);
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn pragmas_are_collected_with_rules_and_reason() {
        let src = "// odlb-lint: allow(D03, P01) — sanctioned shared formatter\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        let p = &lexed.pragmas[0];
        assert_eq!(p.line, 1);
        assert_eq!(p.rules, vec!["D03", "P01"]);
        assert_eq!(p.reason, "sanctioned shared formatter");
        assert!(p.well_formed);
    }

    #[test]
    fn malformed_pragma_is_flagged_not_ignored() {
        let lexed = lex("// odlb-lint: allot(D01) whoops");
        assert_eq!(lexed.pragmas.len(), 1);
        assert!(!lexed.pragmas[0].well_formed);
    }

    #[test]
    fn raw_identifiers_stay_one_token() {
        // `r#for` must not desync into `r`, `#`, `for` — a phantom `for`
        // would look like a loop head to the hash-iteration rule.
        let toks = lex("let r#for = map.iter(); r#type::go(); r#\"still raw\"# tail").tokens;
        let texts: Vec<(TokKind, String)> = toks.iter().map(|t| (t.kind, t.text.clone())).collect();
        assert!(texts.contains(&(TokKind::Ident, "r#for".to_string())));
        assert!(texts.contains(&(TokKind::Ident, "r#type".to_string())));
        assert!(!toks.iter().any(|t| t.is_ident("for")));
        assert!(!toks.iter().any(|t| t.is_ident("type")));
        assert!(!toks.iter().any(|t| t.is_punct('#')));
        // the raw-string arm still wins when a literal really follows
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "still raw"));
        assert!(toks.last().unwrap().is_ident("tail"));
    }

    #[test]
    fn byte_char_escapes_do_not_desync() {
        // `b'\xNN'` and `b'\''` must consume through their closing quote;
        // a desync here would misclassify everything after as char/str.
        let toks = lex(r"b'\x4E' b'\'' b'\\' Instant").tokens;
        let chars: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec![r"\x4E", r"\'", r"\\"]);
        assert!(toks.last().unwrap().is_ident("Instant"));
        assert_eq!(toks.last().unwrap().kind, TokKind::Ident);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "b\"bytes\" b'x' br#\"raw\"# tail";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].text, "bytes");
        assert_eq!(toks[1].kind, TokKind::Char);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[2].kind, TokKind::Str);
        assert_eq!(toks[2].text, "raw");
        assert!(toks[3].is_ident("tail"));
    }
}
