//! `odlb-lint` binary: lints the workspace and exits nonzero on any
//! finding. Run as `cargo run --release -p odlb-lint` (CI does) or let
//! tier-1 `cargo test -q` reach it through the `workspace_clean`
//! integration test.
//!
//! Usage: `odlb-lint [START_DIR] [--root=DIR] [--format=json|text]`
//!
//! - `START_DIR` (positional): walk up from here to find the workspace
//!   root (a `Cargo.toml` with `[workspace]`). Defaults to the current
//!   directory.
//! - `--root=DIR`: analyze `DIR` as-is, without walking up — CI uses
//!   this to run the analyzer over fixture trees.
//! - `--format=json`: machine-readable output (stable field order, one
//!   object per finding including taint chains), byte-identical across
//!   runs. `--format=text` is the default `file:line: rule: message`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut start: Option<PathBuf> = None;
    let mut fixed_root: Option<PathBuf> = None;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if let Some(dir) = arg.strip_prefix("--root=") {
            fixed_root = Some(PathBuf::from(dir));
        } else if let Some(fmt) = arg.strip_prefix("--format=") {
            match fmt {
                "json" => json = true,
                "text" => json = false,
                other => {
                    eprintln!("odlb-lint: unknown format `{other}` (expected json|text)");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: odlb-lint [START_DIR] [--root=DIR] [--format=json|text]");
            return ExitCode::SUCCESS;
        } else {
            start = Some(PathBuf::from(arg));
        }
    }

    let root = match fixed_root {
        Some(r) => r,
        None => {
            let start = start
                .unwrap_or_else(|| std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
            match odlb_lint::find_workspace_root(&start) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "odlb-lint: no workspace root (Cargo.toml with [workspace]) above {}",
                        start.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = odlb_lint::run_workspace(&root);
    if json {
        print!("{}", odlb_lint::render_json(&diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if diags.is_empty() {
        println!("odlb-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("odlb-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
