//! `odlb-lint` binary: lints the workspace and exits nonzero on any
//! finding. Run as `cargo run --release -p odlb-lint` (CI does) or let
//! tier-1 `cargo test -q` reach it through the `workspace_clean`
//! integration test.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let start = std::env::args().nth(1).map_or_else(
        || std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
        PathBuf::from,
    );
    let Some(root) = odlb_lint::find_workspace_root(&start) else {
        eprintln!(
            "odlb-lint: no workspace root (Cargo.toml with [workspace]) above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    let diags = odlb_lint::run_workspace(&root);
    if diags.is_empty() {
        println!("odlb-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("odlb-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
