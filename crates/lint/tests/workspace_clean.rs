//! The tier-1 enforcement hook: `cargo test -q` fails if the live
//! workspace has any lint finding, and every suppression pragma in the
//! tree is proven load-bearing (neutering it re-surfaces a diagnostic).

use odlb_lint::{lexer, policy_for, rules, run_workspace};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "{}: not a workspace root",
        root.display()
    );
    root
}

#[test]
fn live_workspace_is_lint_clean() {
    let diags = run_workspace(&workspace_root());
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every pragma in live source must suppress something: rewriting it to
/// an inert comment must make the lint pass fail on that file. This is
/// what makes "deleting any one suppression pragma makes odlb-lint exit
/// nonzero" true by construction.
#[test]
fn every_live_pragma_is_load_bearing() {
    let root = workspace_root();
    let mut pragma_files = Vec::new();
    collect_rs(&root.join("crates"), &mut pragma_files);
    let mut checked = 0usize;

    for path in pragma_files {
        let rel = path
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let Some(policy) = policy_for(&rel) else {
            continue;
        };
        let text = std::fs::read_to_string(&path).unwrap();
        // Only pragmas the lexer actually parsed count (matching the raw
        // text would also hit pragma examples inside string literals).
        let pragmas = lexer::lex(&text).pragmas;

        for p in pragmas {
            let neutered = neuter_line(&text, p.line);
            let diags = rules::check_file(&rel, &lexer::lex(&neutered), policy);
            assert!(
                !diags.is_empty(),
                "{rel}:{}: neutering this pragma produced no diagnostic; it is dead weight",
                p.line
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 4,
        "expected at least the four known pragmas to be exercised, got {checked}"
    );
}

/// The manifest gate rejects an external dependency added to the root
/// manifest.
#[test]
fn manifest_gate_rejects_external_dependency() {
    let root = workspace_root();
    let mut toml = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
    toml.push_str("\n[dependencies.serde]\nversion = \"1\"\n");
    let diags = odlb_lint::manifest::check_manifest("Cargo.toml", &toml);
    assert!(
        diags.iter().any(|d| d.rule == "M01"),
        "external dependency not caught: {diags:?}"
    );
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Rewrites the pragma comment on 1-based `line` into an inert comment,
/// simulating its deletion.
fn neuter_line(text: &str, line: u32) -> String {
    text.lines()
        .enumerate()
        .map(|(i, l)| {
            if (i + 1) as u32 == line {
                l.replace("odlb-lint:", "neutered:")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}
