//! Fixture-driven tests: each file under `tests/fixtures/` seeds known
//! violations; these tests assert the exact `(line, rule)` diagnostics,
//! so any drift in the lexer or rule engine fails loudly.

use odlb_lint::{lexer, rules, Policy};
use std::path::PathBuf;

const ALL: Policy = Policy {
    timing: true,
    hash_iter: true,
    float_fmt: true,
    rng: true,
    folded: true,
    io_unwrap: true,
};

fn lint_fixture(name: &str) -> Vec<(u32, &'static str)> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: cannot read fixture: {e}", path.display()));
    let mut diags: Vec<(u32, &'static str)> = rules::check_file(name, &lexer::lex(&text), ALL)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect();
    diags.sort();
    diags
}

#[test]
fn d01_wall_clock_fixture() {
    assert_eq!(
        lint_fixture("d01_time.rs"),
        vec![(4, "D01"), (7, "D01"), (8, "D01")]
    );
}

#[test]
fn d02_hash_iteration_fixture() {
    // Line 15 is both a `for … in` over the map and a direct `.iter()`
    // call, so it is reported twice; the sorted collect on line 21 is
    // exempt.
    assert_eq!(
        lint_fixture("d02_hash_iter.rs"),
        vec![(11, "D02"), (15, "D02"), (15, "D02")]
    );
}

#[test]
fn d03_float_format_fixture() {
    assert_eq!(
        lint_fixture("d03_float_fmt.rs"),
        vec![(4, "D03"), (8, "D03")]
    );
}

#[test]
fn d04_thread_and_randomness_fixture() {
    // Line 4 matches both `std::thread` and `thread::spawn`.
    assert_eq!(
        lint_fixture("d04_thread.rs"),
        vec![(4, "D04"), (4, "D04"), (5, "D04"), (6, "D04")]
    );
}

#[test]
fn d05_folded_dump_fixture() {
    // Both dump renderers fire; the copy inside `#[cfg(test)]` does not.
    assert_eq!(lint_fixture("d05_folded.rs"), vec![(5, "D05"), (7, "D05")]);
}

#[test]
fn p01_io_unwrap_fixture() {
    // The `parse().unwrap()` on line 6 is not I/O and must not fire.
    assert_eq!(
        lint_fixture("p01_unwrap_io.rs"),
        vec![(4, "P01"), (5, "P01")]
    );
}

#[test]
fn tokens_inside_strings_and_comments_do_not_fire() {
    // tricky.rs hides rule tokens in strings, nested block comments and
    // raw strings; only the genuine SystemTime uses at the end count.
    assert_eq!(lint_fixture("tricky.rs"), vec![(21, "D01"), (22, "D01")]);
}

#[test]
fn lexer_edge_fixture_raw_idents_and_byte_chars() {
    // `r#type` / `r#for` and `b'\x1b'`-style escapes must not desync the
    // token stream: only the genuine wall-clock reads at the end fire
    // (line 14 `std::time`, line 15 `std::time` + `Instant::now`).
    assert_eq!(
        lint_fixture("lexer_edge.rs"),
        vec![(14, "D01"), (15, "D01"), (15, "D01")]
    );
}

#[test]
fn pragma_fixture_semantics() {
    // Suppressed-with-reason on line 4/5 vanishes; reasonless pragma is
    // S00 and its violation survives; stale and wrong-rule pragmas are
    // S00 (a pragma that suppresses nothing is itself an error).
    assert_eq!(
        lint_fixture("pragma.rs"),
        vec![
            (9, "S00"),
            (10, "D01"),
            (13, "S00"),
            (17, "S00"),
            (18, "D01"),
        ]
    );
}
