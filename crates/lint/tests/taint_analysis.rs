//! Acceptance tests for the taint layer (rules T01–T03).
//!
//! The core claim: a nondeterminism flow that token rules D01–D05
//! *provably* miss — source hidden in a D01-exempt bench-path file, two
//! call hops and two crate boundaries away from the sink — is caught
//! with its full source→…→sink chain rendered. Plus: the live workspace
//! is taint-clean, every sanctioned boundary is load-bearing, the
//! analyzer is byte-deterministic, and the full pass stays under the 5 s
//! gate.

use odlb_lint::taint::{Sanction, SANCTIONS};
use odlb_lint::{analyze_sources_with, lexer, policy_for, rules, run_workspace, SourceFile};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every policy-covered `.rs` file of the live workspace, in memory.
fn live_sources() -> Vec<SourceFile> {
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rs(&root, &mut paths);
    paths
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            policy_for(&rel)?;
            let text = std::fs::read_to_string(&p).ok()?;
            Some(SourceFile { rel, text })
        })
        .collect()
}

#[test]
fn indirect_cross_crate_flow_is_caught_with_full_chain() {
    let diags = run_workspace(&fixture_root("taint_ws"));
    assert_eq!(diags.len(), 1, "expected exactly one finding: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "T01");
    assert_eq!(d.file, "crates/trace/src/out.rs");

    // ≥ 2 call hops, crossing two crate boundaries.
    assert_eq!(d.chain.len(), 3, "{:#?}", d.chain);
    let labels: Vec<&str> = d.chain.iter().map(|s| s.label.as_str()).collect();
    assert!(labels[0].starts_with("odlb_bench::clock::wall_micros"));
    assert!(labels[0].contains("source: Instant::now"));
    assert!(labels[1].starts_with("odlb_engine::stamp::stamp_micros"));
    assert!(labels[2].starts_with("odlb_trace::out::stamp_digest"));
    assert!(labels[2].contains("sink: fnv1a64"));
    assert_eq!(d.chain[0].file, "crates/bench/src/clock.rs");
    assert_eq!(d.chain[2].file, "crates/trace/src/out.rs");
    // the message renders the same chain for plain-text consumers
    assert!(d.message.contains("wall_micros"));
    assert!(d.message.contains("->"));
}

#[test]
fn token_rules_provably_miss_the_fixture_flow() {
    // Run ONLY the token rules (D01–D05, P01) over every fixture file
    // under its real policy: zero findings. The pair (this test +
    // `indirect_cross_crate_flow_is_caught_with_full_chain`) is the
    // acceptance proof that the taint layer sees past the token layer.
    let root = fixture_root("taint_ws");
    let mut paths = Vec::new();
    collect_rs(&root, &mut paths);
    assert_eq!(paths.len(), 3);
    for p in paths {
        let rel = p
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let policy = policy_for(&rel).expect("fixture paths mirror real workspace shapes");
        let text = std::fs::read_to_string(&p).unwrap();
        let diags = rules::check_file(&rel, &lexer::lex(&text), policy);
        assert!(diags.is_empty(), "{rel}: token rules fired: {diags:?}");
    }
}

#[test]
fn deterministic_twin_is_fully_clean() {
    let diags = run_workspace(&fixture_root("taint_ws_clean"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn live_workspace_is_taint_clean() {
    let diags = analyze_sources_with(&live_sources(), &SANCTIONS);
    let taint: Vec<_> = diags.iter().filter(|d| d.rule.starts_with('T')).collect();
    assert!(taint.is_empty(), "live taint findings:\n{taint:#?}");
}

#[test]
fn every_sanction_is_load_bearing_per_category() {
    // Removing any single (file, category) entry from the sanction table
    // must surface at least one taint diagnostic: the table lists
    // exactly the boundaries the workspace needs, nothing more.
    let files = live_sources();
    for (i, s) in SANCTIONS.iter().enumerate() {
        for (j, cat) in s.categories.iter().enumerate() {
            let mut reduced: Vec<Sanction> = SANCTIONS.to_vec();
            let mut cats: Vec<_> = s.categories.to_vec();
            cats.remove(j);
            // Sanction holds &'static [Category]; leak the reduced list
            // (test-only, bounded by the table size).
            reduced[i].categories = Box::leak(cats.into_boxed_slice());
            let diags = analyze_sources_with(&files, &reduced);
            let hit = diags
                .iter()
                .any(|d| d.rule.starts_with('T') && d.rule == cat.rule());
            assert!(
                hit,
                "sanction ({}, {:?}) is not load-bearing: removing it surfaced nothing",
                s.file, cat
            );
        }
    }
}

#[test]
fn analyzer_output_is_byte_identical_across_runs() {
    let fixture = fixture_root("taint_ws");
    let a = odlb_lint::render_json(&run_workspace(&fixture));
    let b = odlb_lint::render_json(&run_workspace(&fixture));
    assert_eq!(a, b);
    assert!(a.contains("\"rule\":\"T01\""));

    let live_a = odlb_lint::render_json(&run_workspace(&workspace_root()));
    let live_b = odlb_lint::render_json(&run_workspace(&workspace_root()));
    assert_eq!(live_a, live_b);
}

#[test]
fn full_workspace_analysis_stays_under_the_gate() {
    let start = std::time::Instant::now();
    let _ = run_workspace(&workspace_root());
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "full analysis took {elapsed:?}, gate is 5s"
    );
}

#[test]
fn json_rendering_is_stable_and_escaped() {
    let diags = run_workspace(&fixture_root("taint_ws"));
    let json = odlb_lint::render_json(&diags);
    // stable field order, one object per finding, chain included
    let obj_start = json
        .find("{\"file\":")
        .expect("field order starts with file");
    let line_pos = json.find("\"line\":").unwrap();
    let rule_pos = json.find("\"rule\":").unwrap();
    let msg_pos = json.find("\"message\":").unwrap();
    let chain_pos = json.find("\"chain\":").unwrap();
    assert!(obj_start < line_pos && line_pos < rule_pos);
    assert!(rule_pos < msg_pos && msg_pos < chain_pos);
    assert!(json.contains("\"label\":"));
    // empty input renders an empty array
    assert_eq!(odlb_lint::render_json(&[]), "[\n]\n");
}
