//! Mutation-differential test for the taint engine.
//!
//! A clean three-crate workspace (bench source → engine relay → trace
//! digest sink) is analyzed in memory, then each seeded nondeterminism
//! mutation is injected at the source end — always ≥ 2 call hops and two
//! crate boundaries away from the sink, and always in a file whose token
//! policy exempts the corresponding D-rule. Every mutation must be caught
//! by exactly the right T-rule with a chain reaching the sink, with NO
//! token-rule findings at all: the differential proof that the flow layer
//! sees what the token layer cannot.

use odlb_lint::{analyze_sources, SourceFile};

/// Sink end: fixed across all mutations. `digest` calls the relay and
/// feeds the result to the workspace digest function.
const SINK_REL: &str = "crates/trace/src/emitjson.rs";
const SINK_SRC: &str = r#"
use odlb_engine::relay::relay;

pub fn digest(c: &mut u64) -> u64 {
    fnv1a64(&relay(c).to_le_bytes())
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
"#;

const RELAY_REL: &str = "crates/engine/src/relay.rs";

/// Clean source: a logical counter, no ambient state.
const CLEAN_REL: &str = "crates/bench/src/meter.rs";
const CLEAN_SRC: &str = r#"
pub fn sample(c: &mut u64) -> u64 {
    *c += 1;
    *c
}
"#;

struct Mutation {
    name: &'static str,
    rule: &'static str,
    /// Path of the mutated source file; chosen so the matching token
    /// rule is policy-exempt there (bench → D01 off, runner.rs → D04
    /// off), leaving the taint layer as the only possible detector.
    source_rel: &'static str,
    /// Module the relay imports `sample` from (derived from source_rel).
    source_mod: &'static str,
    source_src: &'static str,
}

const MUTATIONS: &[Mutation] = &[
    Mutation {
        name: "wall_instant",
        rule: "T01",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    std::time::Instant::now().elapsed().as_nanos() as u64
}
"#,
    },
    Mutation {
        name: "wall_system_time",
        rule: "T01",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
"#,
    },
    Mutation {
        name: "wall_hidden_local_hop",
        rule: "T01",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    now_ns()
}

fn now_ns() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
"#,
    },
    Mutation {
        name: "wall_method_hop",
        rule: "T01",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
pub struct Meter;

impl Meter {
    pub fn read(&self) -> u64 {
        std::time::Instant::now().elapsed().as_nanos() as u64
    }
}

pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    Meter.read()
}
"#,
    },
    Mutation {
        name: "rand_thread_rng",
        rule: "T02",
        source_rel: "crates/bench/src/runner.rs",
        source_mod: "runner",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    thread_rng()
}

fn thread_rng() -> u64 {
    7
}
"#,
    },
    Mutation {
        name: "thread_identity",
        rule: "T02",
        source_rel: "crates/bench/src/runner.rs",
        source_mod: "runner",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::hash::Hash::hash(&std::thread::current().id(), &mut h);
    std::hash::Hasher::finish(&h)
}
"#,
    },
    Mutation {
        name: "parallelism",
        rule: "T02",
        source_rel: "crates/bench/src/runner.rs",
        source_mod: "runner",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let _ = c;
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}
"#,
    },
    Mutation {
        name: "ptr_addr_format",
        rule: "T03",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
pub fn sample(c: &mut u64) -> u64 {
    let s = format!("{:p}", c);
    s.len() as u64
}
"#,
    },
    Mutation {
        name: "hash_order_iter",
        rule: "T03",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
use std::collections::HashMap;

pub fn sample(c: &mut u64) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(*c, 1);
    let vs: Vec<u64> = m.values().copied().collect();
    vs.first().copied().unwrap_or(0)
}
"#,
    },
    Mutation {
        name: "hash_order_for_loop",
        rule: "T03",
        source_rel: "crates/bench/src/meter.rs",
        source_mod: "meter",
        source_src: r#"
use std::collections::HashMap;

pub fn sample(c: &mut u64) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(*c, 1);
    let mut acc = 0;
    for (_k, v) in &m {
        acc ^= *v;
    }
    acc
}
"#,
    },
];

fn workspace(source_rel: &str, source_mod: &str, source_src: &str) -> Vec<SourceFile> {
    let relay_src = format!(
        "use odlb_bench::{source_mod}::sample;\n\n\
         pub fn relay(c: &mut u64) -> u64 {{\n    sample(c)\n}}\n"
    );
    vec![
        SourceFile {
            rel: source_rel.to_string(),
            text: source_src.to_string(),
        },
        SourceFile {
            rel: RELAY_REL.to_string(),
            text: relay_src,
        },
        SourceFile {
            rel: SINK_REL.to_string(),
            text: SINK_SRC.to_string(),
        },
    ]
}

#[test]
fn clean_base_has_no_findings() {
    let diags = analyze_sources(&workspace(CLEAN_REL, "meter", CLEAN_SRC));
    assert!(diags.is_empty(), "clean base flagged: {diags:#?}");
}

#[test]
fn every_seeded_mutation_is_caught_by_the_right_t_rule() {
    for m in MUTATIONS {
        let diags = analyze_sources(&workspace(m.source_rel, m.source_mod, m.source_src));
        // Token rules must stay silent — the mutation sits in a file
        // whose policy exempts the matching D-rule. Anything non-T here
        // means the differential premise broke.
        let non_taint: Vec<_> = diags.iter().filter(|d| !d.rule.starts_with('T')).collect();
        assert!(
            non_taint.is_empty(),
            "{}: token rules fired, mutation is not token-invisible: {non_taint:#?}",
            m.name
        );
        let hit = diags
            .iter()
            .find(|d| d.rule == m.rule && d.file == SINK_REL)
            .unwrap_or_else(|| panic!("{}: no {} at the sink; got {diags:#?}", m.name, m.rule));
        // The chain must walk back across both crate boundaries to the
        // mutated source file.
        assert!(
            hit.chain.iter().any(|s| s.file == m.source_rel),
            "{}: chain does not reach the mutated source: {:#?}",
            m.name,
            hit.chain
        );
        assert!(
            hit.chain.len() >= 3,
            "{}: expected >= 2 call hops, chain was {:#?}",
            m.name,
            hit.chain
        );
    }
}
