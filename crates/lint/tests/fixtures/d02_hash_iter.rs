// Fixture: D02 violations — unordered HashMap/HashSet iteration.

use std::collections::HashMap;

struct Report {
    per_class: HashMap<u32, f64>,
}

impl Report {
    fn emit(&self) -> Vec<u32> {
        self.per_class.keys().copied().collect()
    }

    fn walk(&self) {
        for (k, v) in self.per_class.iter() {
            observe(*k, *v);
        }
    }

    fn sorted_is_fine(&self) -> Vec<(u32, f64)> {
        let mut rows: Vec<(u32, f64)> = self.per_class.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>().sort_by_key(|r| r.0);
        rows
    }
}
