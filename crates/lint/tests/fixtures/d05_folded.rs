// Fixture: D05 violations — folded-stacks dumps rendered outside the
// validated exporter path. Never compiled; lexed by tests/lint_rules.rs.

fn dump_profile(profiler: &SpanProfiler) {
    let sim = profiler.folded_sim();
    std::fs::write("profile.folded", sim).ok();
    eprint!("{}", profiler.folded_wall());
}

#[cfg(test)]
mod tests {
    // Tests may render dumps directly (they assert on the contents).
    fn exempt(p: &SpanProfiler) -> String {
        p.folded_sim()
    }
}
