//! Hop two: folds the stamp into the trace digest — the export sink.
//! Token-clean in isolation; only the cross-crate chain is wrong.

use odlb_engine::stamp::stamp_micros;

/// Digest of the current stamp; feeds a trace artifact.
pub fn stamp_digest() -> u64 {
    fnv1a64(&stamp_micros().to_le_bytes())
}

/// FNV-1a over `bytes` (the workspace's trace digest function).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
