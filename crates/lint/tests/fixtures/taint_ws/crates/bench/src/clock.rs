//! A wall-clock helper hiding in a bench-crate file.
//!
//! D01 exempts all of `crates/bench/` (the harness's payload is wall
//! time), so token rules see nothing here — but this file is *not* a
//! sanctioned taint boundary, so the read taints every caller.

/// Microseconds since process start, straight off the wall clock.
pub fn wall_micros() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}
