//! Hop one: wraps the bench clock behind an innocent-looking name.
//! Token-clean — no wall-clock token appears anywhere in this crate.

use odlb_bench::clock::wall_micros;

/// An event stamp for trace records.
pub fn stamp_micros() -> u128 {
    wall_micros()
}
