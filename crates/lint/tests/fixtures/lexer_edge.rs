// Raw identifiers and byte-char escapes must not desync token
// classification: everything above the last line is rule-clean, and a
// desync would surface as phantom or missing findings.
struct Sample {
    r#type: u32,
    r#loop: u8,
}
fn r#for(x: Sample) -> u32 {
    let marker = b'\x1b';
    let quote = b'\'';
    let backslash = b'\\';
    x.r#type + u32::from(marker) + u32::from(quote) + u32::from(backslash)
}
fn genuine() -> std::time::Instant {
    std::time::Instant::now()
}
