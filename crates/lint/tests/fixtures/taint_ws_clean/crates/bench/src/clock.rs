//! The deterministic twin of `taint_ws`: identical shape, but the
//! "clock" is a caller-owned counter — no nondeterminism source.

/// Next tick of a caller-owned logical clock.
pub fn tick_micros(counter: &mut u128) -> u128 {
    *counter += 1;
    *counter
}
