//! Hop one of the deterministic twin.

use odlb_bench::clock::tick_micros;

/// An event stamp for trace records, from the logical clock.
pub fn stamp_micros(counter: &mut u128) -> u128 {
    tick_micros(counter)
}
