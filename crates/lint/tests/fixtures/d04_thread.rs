// Fixture: D04 violations — spawned threads and ambient randomness.

fn run() {
    std::thread::spawn(|| work());
    let seed = rand::random::<u64>();
    let h = thread_rng();
}
