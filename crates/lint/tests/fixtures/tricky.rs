// Fixture: rule tokens hidden where they must NOT fire — inside string
// literals, nested block comments and raw strings — plus one real
// violation at the end so the test proves the file was actually linted.

/* Instant::now() inside a block comment
   /* and SystemTime inside a nested one */
   still commented here: thread::spawn
*/

fn decoys() -> Vec<String> {
    let a = "Instant::now() in a string";
    let b = "std::time::SystemTime in a string";
    let c = r#"thread::spawn and rand::random in a raw string"#;
    let d = r##"raw with "# inside: HashMap.iter()"##;
    let e = 'x';
    let f: &'static str = "lifetime then Instant::now in a string";
    vec![a.into(), b.into(), c.into(), d.into(), e.to_string(), f.into()]
}

// The one real violation in this file:
fn real() -> SystemTime {
    SystemTime::now()
}
