// Fixture: P01 violations — unwrap/expect on I/O results in binary code.

fn main() {
    let text = std::fs::read_to_string("config.toml").unwrap();
    let f = std::fs::File::create("out.jsonl").expect("create failed");
    let n: u32 = "42".parse().unwrap();
    process(&text, f, n);
}
