// Fixture: suppression pragma semantics.

fn suppressed() -> u64 {
    // odlb-lint: allow(D01) — fixture exercises a justified suppression
    Instant::now().elapsed().as_secs()
}

fn reasonless() -> u64 {
    // odlb-lint: allow(D01)
    Instant::now().elapsed().as_secs()
}

// odlb-lint: allow(D04) — stale pragma suppressing nothing
fn unused_pragma() {}

fn wrong_rule() {
    // odlb-lint: allow(D04) — wrong rule for the line below
    let t = Instant::now();
}
