// Fixture: D01 violations — wall-clock time. Never compiled; lexed by
// tests/lint_rules.rs, which asserts exact (line, rule) diagnostics.

use std::time::Instant;

fn elapsed() -> u64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    start.elapsed().as_millis() as u64
}
