// Fixture: D03 violations — floats formatted without explicit precision.

fn render(latency: f64) -> String {
    format!("{latency}")
}

fn render_positional(ratio: f64) -> String {
    format!("{}", ratio)
}

fn with_precision_is_fine(latency: f64) -> String {
    format!("{latency:.6}")
}

fn int_cast_is_fine(latency: f64) -> String {
    format!("{}", latency as u64)
}
