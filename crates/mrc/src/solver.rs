//! Quota search over multiple miss ratio curves (paper §3.3.2).
//!
//! After the MRC of every suspect class on a server has been recomputed,
//! the controller asks: *can each class be given a buffer-pool quota at
//! which its predicted miss ratio is its acceptable miss ratio, without
//! exceeding the server's memory?* If yes, quotas are enforced and the
//! class keeps its placement; if no, the problem class is re-placed on
//! another replica.
//!
//! [`fit_quotas`] implements exactly that feasibility test. For the
//! ablation on smarter allocation, [`greedy_allocate`] water-fills memory
//! by marginal hit-rate gain (the classic MRC-driven allocation of Zhou et
//! al.), which the controller can use to squeeze infeasible sets.

use crate::curve::MissRatioCurve;

/// One class's demand, as seen by the solver.
#[derive(Clone, Debug)]
pub struct QuotaRequest<'a> {
    /// Opaque identity echoed back in results (e.g. a class id).
    pub id: u64,
    /// The class's recomputed miss ratio curve.
    pub curve: &'a MissRatioCurve,
    /// Pages at which the curve reaches its acceptable miss ratio.
    pub acceptable_pages: usize,
    /// Accesses per second — weights marginal-gain comparisons in the
    /// greedy allocator.
    pub access_rate: f64,
}

/// A quota assignment produced by the solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaAssignment {
    /// Identity from the request.
    pub id: u64,
    /// Pages granted.
    pub pages: usize,
    /// Predicted miss ratio at the granted quota.
    pub predicted_miss_ratio: f64,
}

/// Feasibility test: grant each class its acceptable memory. Returns the
/// assignments when the total fits in `total_pages`, or `None` when the
/// set cannot be co-located at acceptable quality (→ re-place someone).
pub fn fit_quotas(
    total_pages: usize,
    requests: &[QuotaRequest<'_>],
) -> Option<Vec<QuotaAssignment>> {
    let demand: usize = requests.iter().map(|r| r.acceptable_pages).sum();
    if demand > total_pages {
        return None;
    }
    Some(
        requests
            .iter()
            .map(|r| QuotaAssignment {
                id: r.id,
                pages: r.acceptable_pages,
                predicted_miss_ratio: r.curve.miss_ratio(r.acceptable_pages),
            })
            .collect(),
    )
}

/// Greedy MRC-driven water-fill: repeatedly grants `chunk_pages` to the
/// class with the highest marginal hit-rate gain (weighted by access rate)
/// until `total_pages` are spent or no class gains anything.
///
/// Unlike [`fit_quotas`] this always returns an allocation; callers check
/// whether the predicted miss ratios meet their targets.
pub fn greedy_allocate(
    total_pages: usize,
    chunk_pages: usize,
    requests: &[QuotaRequest<'_>],
) -> Vec<QuotaAssignment> {
    assert!(chunk_pages >= 1, "chunk must be at least one page");
    let mut granted = vec![0usize; requests.len()];
    let mut remaining = total_pages;
    while remaining >= chunk_pages {
        // Marginal gain of giving one more chunk to class i. Real MRCs
        // have flat regions (step curves for pure working sets), so the
        // lookahead extends to the class's acceptable point: the gain of a
        // chunk on the way to `acceptable_pages` is the *average* gain per
        // page over that stretch, not the (possibly zero) local slope.
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in requests.iter().enumerate() {
            let g = granted[i];
            let target = if g < r.acceptable_pages {
                r.acceptable_pages
            } else {
                g + chunk_pages
            };
            let cur = r.curve.miss_ratio(g);
            let at_target = r.curve.miss_ratio(target);
            let per_page = (cur - at_target) / (target - g).max(1) as f64;
            let gain = per_page * r.access_rate.max(1e-12);
            if gain > 1e-15 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        match best {
            Some((i, _)) => {
                granted[i] += chunk_pages;
                remaining -= chunk_pages;
            }
            None => break,
        }
    }
    requests
        .iter()
        .zip(&granted)
        .map(|(r, &pages)| QuotaAssignment {
            id: r.id,
            pages,
            predicted_miss_ratio: r.curve.miss_ratio(pages),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A curve whose re-accesses all land at distance `ws` — a working set
    /// of exactly `ws` pages.
    fn working_set_curve(ws: u64, accesses: u64, cap: usize) -> MissRatioCurve {
        let mut c = MissRatioCurve::new(cap);
        for _ in 0..accesses {
            c.record_hit_at(ws);
        }
        c
    }

    #[test]
    fn fit_succeeds_when_demands_fit() {
        let a = working_set_curve(100, 1000, 8192);
        let b = working_set_curve(200, 1000, 8192);
        let reqs = vec![
            QuotaRequest {
                id: 1,
                curve: &a,
                acceptable_pages: 100,
                access_rate: 1.0,
            },
            QuotaRequest {
                id: 2,
                curve: &b,
                acceptable_pages: 200,
                access_rate: 1.0,
            },
        ];
        let fit = fit_quotas(8192, &reqs).expect("300 pages fit in 8192");
        assert_eq!(fit[0].pages, 100);
        assert_eq!(fit[1].pages, 200);
        assert!(fit[0].predicted_miss_ratio < 1e-9);
    }

    #[test]
    fn fit_fails_when_oversubscribed() {
        // The paper's Table 2 situation: BestSeller needs 6982 pages,
        // SearchItemsByRegion needs 7906 — they cannot share 8192.
        let a = working_set_curve(6982, 1000, 8192);
        let b = working_set_curve(7906, 1000, 8192);
        let reqs = vec![
            QuotaRequest {
                id: 1,
                curve: &a,
                acceptable_pages: 6982,
                access_rate: 1.0,
            },
            QuotaRequest {
                id: 2,
                curve: &b,
                acceptable_pages: 7906,
                access_rate: 1.0,
            },
        ];
        assert!(fit_quotas(8192, &reqs).is_none());
    }

    #[test]
    fn fit_exact_boundary() {
        let a = working_set_curve(4096, 10, 8192);
        let reqs = vec![
            QuotaRequest {
                id: 1,
                curve: &a,
                acceptable_pages: 4096,
                access_rate: 1.0,
            },
            QuotaRequest {
                id: 2,
                curve: &a,
                acceptable_pages: 4096,
                access_rate: 1.0,
            },
        ];
        assert!(
            fit_quotas(8192, &reqs).is_some(),
            "exactly full is feasible"
        );
    }

    #[test]
    fn greedy_prefers_hot_class() {
        let hot = working_set_curve(100, 10_000, 1024);
        let cold = working_set_curve(100, 10, 1024);
        let reqs = vec![
            QuotaRequest {
                id: 1,
                curve: &hot,
                acceptable_pages: 100,
                access_rate: 1000.0,
            },
            QuotaRequest {
                id: 2,
                curve: &cold,
                acceptable_pages: 100,
                access_rate: 1.0,
            },
        ];
        // Only 100 pages to give: the hot class must win them.
        let alloc = greedy_allocate(100, 10, &reqs);
        assert_eq!(alloc[0].pages, 100);
        assert_eq!(alloc[1].pages, 0);
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let a = working_set_curve(50, 100, 1024);
        let reqs = vec![QuotaRequest {
            id: 1,
            curve: &a,
            acceptable_pages: 50,
            access_rate: 1.0,
        }];
        let alloc = greedy_allocate(1024, 10, &reqs);
        // The curve flattens at 50 pages; greedy must not burn the rest.
        assert!(alloc[0].pages <= 60, "granted {}", alloc[0].pages);
        assert!(alloc[0].predicted_miss_ratio < 1e-9 + 1.0 / 100.0 + 1e-12);
    }

    #[test]
    fn greedy_never_exceeds_total() {
        let a = working_set_curve(500, 100, 1024);
        let b = working_set_curve(700, 100, 1024);
        let reqs = vec![
            QuotaRequest {
                id: 1,
                curve: &a,
                acceptable_pages: 500,
                access_rate: 1.0,
            },
            QuotaRequest {
                id: 2,
                curve: &b,
                acceptable_pages: 700,
                access_rate: 1.0,
            },
        ];
        let alloc = greedy_allocate(600, 64, &reqs);
        let total: usize = alloc.iter().map(|q| q.pages).sum();
        assert!(total <= 600);
    }

    #[test]
    fn empty_request_set_fits_trivially() {
        assert_eq!(fit_quotas(100, &[]), Some(vec![]));
        assert!(greedy_allocate(100, 10, &[]).is_empty());
    }
}
