//! SHARDS-style spatially-sampled stack-distance tracking.
//!
//! The exact tracker pays `O(log n)` (Fenwick update + hash-map probe)
//! for *every* reference, which is the cost wall between per-class MRC
//! maintenance for a handful of classes and the thousands of tenant
//! classes a consolidated cluster carries. Spatial hash sampling (Waldspurger
//! et al., *SHARDS*, FAST'15) filters the reference stream down to a fixed
//! fraction `R` of the *key space*: a page survives iff a pure hash of its
//! key falls under `R · 2^64`. Because the filter is per-key (not per
//! reference), every reference to a sampled page is kept, so reuse
//! behaviour inside the sampled key population is preserved exactly and
//! the sampled stack distance of a survivor is an unbiased `R`-scaled
//! estimate of its true stack distance. Unsampled references cost one
//! multiply-shift hash and nothing else.
//!
//! At recording time each survivor's distance `d` is re-expanded to
//! `round(d / R)` and its histogram weight rescaled by `1/R`, so the
//! finished [`MissRatioCurve`] is directly comparable (same size axis,
//! approximately the same totals) with the exact tracker's.
//!
//! Determinism: the filter is splitmix64-style bit mixing over an FNV-1a
//! fold of the key bytes — no ambient randomness, no seeded state — so
//! the same reference stream always yields byte-identical curves and the
//! run digests of exact-mode figures are untouched (odlb-lint D04 clean).

use crate::curve::MissRatioCurve;
use crate::mattson::MattsonTracker;
use std::hash::{Hash, Hasher};

/// Which tracker the MRC recomputation path instantiates.
///
/// Threaded from the controller configuration down through the cluster
/// driver and engine into the per-class access-window replay, so the
/// whole stack switches tracker with one knob. `Exact` is the default
/// and is byte-for-byte the historical behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum MrcMode {
    /// Exact Mattson stack distances ([`MattsonTracker`]).
    #[default]
    Exact,
    /// Geometric distance buckets ([`crate::BucketedTracker`]) at
    /// [`MrcMode::DEFAULT_BUCKET_RATIO`]: pessimistic, memory-bounded.
    Bucketed,
    /// SHARDS-style spatial sampling ([`SampledTracker`]) keeping a
    /// `rate` fraction of the key space.
    Sampled {
        /// Sampling rate `R` in `(0, 1]`.
        rate: f64,
    },
}

impl MrcMode {
    /// Bucket growth ratio used by [`MrcMode::Bucketed`] (the middle of
    /// ablation A5's accuracy/speed sweep).
    pub const DEFAULT_BUCKET_RATIO: f64 = 1.5;
}

/// FNV-1a over the key's `Hash` byte stream. Deterministic across runs
/// and platforms (unlike `RandomState`), cheap for the small keys
/// (`u64`, page ids) the trackers see.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// splitmix64 finalizer: full-avalanche bit mixing so that dense key
/// ranges (sequential page numbers) still sample uniformly.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The pure sampling hash: FNV-1a fold of the key, splitmix64-mixed.
fn sample_hash<K: Hash>(key: &K) -> u64 {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    mix64(h.finish())
}

/// Spatially-sampled stack-distance tracker producing a rescaled
/// [`MissRatioCurve`], implementing the [`MattsonTracker`] access/curve
/// API surface.
#[derive(Clone, Debug)]
pub struct SampledTracker<K> {
    /// Keys whose mixed hash is `<= threshold` survive the filter.
    threshold: u64,
    /// Sampling rate `R`.
    rate: f64,
    /// Histogram weight per survivor event, `round(1/R)`.
    scale: u64,
    /// Exact stack over the sampled key population only. Its own curve
    /// is vestigial (cap 1); only the returned distances are used.
    inner: MattsonTracker<K>,
    /// The rescaled curve under construction (cap = full `cap_pages`).
    curve: MissRatioCurve,
    /// All references observed, sampled or not.
    observed: u64,
    /// References that survived the filter.
    sampled: u64,
}

impl<K: Copy + Eq + Hash> SampledTracker<K> {
    /// Creates a tracker recording (rescaled) distances up to `cap_pages`
    /// with spatial sampling rate `rate` in `(0, 1]`.
    pub fn new(cap_pages: usize, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sampling rate must be in (0, 1], got {rate}"
        );
        // `rate * 2^64` saturates to u64::MAX at rate 1.0 (sample all).
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * (u64::MAX as f64)) as u64
        };
        SampledTracker {
            threshold,
            rate,
            scale: (1.0 / rate).round().max(1.0) as u64,
            inner: MattsonTracker::new(1),
            curve: MissRatioCurve::new(cap_pages),
            observed: 0,
            sampled: 0,
        }
    }

    /// The sampling rate `R`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Observes one reference. Returns the *rescaled* (estimated
    /// full-trace) LRU stack distance for a sampled re-access; `None`
    /// for a first access of a sampled key or any unsampled reference.
    pub fn access(&mut self, key: K) -> Option<u64> {
        self.observed += 1;
        if sample_hash(&key) > self.threshold {
            return None;
        }
        self.sampled += 1;
        match self.inner.access(key) {
            Some(d) => {
                // E[sampled distance] = R · true distance, so the
                // unbiased re-expansion is d / R (at least d: sampling
                // can only remove intervening keys).
                let est = ((d as f64 / self.rate).round() as u64).max(d);
                self.curve.record_hits_at(est, self.scale);
                Some(est)
            }
            None => {
                self.curve.record_cold_misses(self.scale);
                None
            }
        }
    }

    /// The rescaled curve accumulated so far. Its `total_accesses` is
    /// `scale ×` the survivor count — an estimate of the true reference
    /// count, not the exact [`SampledTracker::observed`] figure.
    pub fn curve(&self) -> &MissRatioCurve {
        &self.curve
    }

    /// Consumes the tracker, yielding its rescaled curve.
    pub fn into_curve(self) -> MissRatioCurve {
        self.curve
    }

    /// Total references observed (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// References that survived the hash filter.
    pub fn sampled_refs(&self) -> u64 {
        self.sampled
    }

    /// Distinct sampled keys currently tracked by the inner stack.
    pub fn distinct_sampled_keys(&self) -> usize {
        self.inner.distinct_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_trace(n: usize, footprint: u64, seed: u64) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x % footprint
            })
            .collect()
    }

    #[test]
    fn rate_one_is_exact() {
        let trace = lcg_trace(5_000, 700, 0xA1);
        let mut exact = MattsonTracker::new(2048);
        let mut sampled = SampledTracker::new(2048, 1.0);
        for &k in &trace {
            assert_eq!(exact.access(k), sampled.access(k));
        }
        assert_eq!(sampled.sampled_refs(), trace.len() as u64);
        for m in (1..=2048).step_by(97) {
            assert!((exact.curve().miss_ratio(m) - sampled.curve().miss_ratio(m)).abs() < 1e-12);
        }
    }

    #[test]
    fn filter_keeps_roughly_rate_fraction_of_keys() {
        let mut t = SampledTracker::new(1024, 0.1);
        for k in 0..100_000u64 {
            t.access(k);
        }
        let kept = t.distinct_sampled_keys() as f64 / 100_000.0;
        assert!(
            (0.08..=0.12).contains(&kept),
            "hash filter badly biased: kept {kept}"
        );
    }

    #[test]
    fn filter_is_per_key_not_per_reference() {
        let mut t = SampledTracker::new(1024, 0.3);
        // Every reference to a sampled key must be kept: replay one key
        // many times; the survivor count is 0 or all.
        for _ in 0..50 {
            t.access(42u64);
        }
        assert!(t.sampled_refs() == 0 || t.sampled_refs() == 50);
    }

    #[test]
    fn loop_pattern_estimate_lands_near_true_distance() {
        // Cyclic scan of 1000 pages: every re-access has true distance
        // 1000; the rescaled estimates must cluster around it.
        let mut t = SampledTracker::new(4096, 0.1);
        let mut estimates = Vec::new();
        for i in 0..30_000u64 {
            if let Some(d) = t.access(i % 1000) {
                estimates.push(d);
            }
        }
        assert!(!estimates.is_empty());
        let mean = estimates.iter().sum::<u64>() as f64 / estimates.len() as f64;
        assert!(
            (800.0..=1200.0).contains(&mean),
            "rescaled loop distance should be ~1000, got {mean}"
        );
    }

    #[test]
    fn curve_totals_are_rescaled() {
        let trace = lcg_trace(40_000, 5_000, 0xB2);
        let mut t = SampledTracker::new(4096, 0.25);
        for &k in &trace {
            t.access(k);
        }
        assert_eq!(t.observed(), 40_000);
        assert_eq!(t.curve().total_accesses(), t.sampled_refs() * 4);
        // The rescaled total estimates the observed total.
        let ratio = t.curve().total_accesses() as f64 / t.observed() as f64;
        assert!((0.9..=1.1).contains(&ratio), "total estimate off: {ratio}");
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = lcg_trace(10_000, 2_000, 0xC3);
        let run = || {
            let mut t = SampledTracker::new(2048, 0.1);
            for &k in &trace {
                t.access(k);
            }
            format!("{:?}", t.into_curve())
        };
        assert_eq!(run(), run(), "same trace must give identical curve bytes");
    }

    #[test]
    fn survivors_replay_exactly_like_a_filtered_naive_stack() {
        // The inner stack must agree with a naive LRU stack fed only the
        // survivors, and the rescaled estimate can never fall below the
        // sampled distance (sampling removes intervening keys, never
        // adds them).
        let trace = lcg_trace(3_000, 400, 0xD4);
        let mut t = SampledTracker::new(1024, 0.4);
        let mut naive = crate::mattson::NaiveStack::new();
        for &k in &trace {
            let est = t.access(k);
            if sample_hash(&k) <= t.threshold {
                match (est, naive.access(k)) {
                    (Some(e), Some(d)) => assert!(e >= d, "estimate {e} < sampled {d}"),
                    (None, None) => {}
                    (e, d) => panic!("survivor disagreement: {e:?} vs {d:?}"),
                }
            } else {
                assert_eq!(est, None, "filtered key must not be tracked");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0, 1]")]
    fn zero_rate_rejected() {
        SampledTracker::<u64>::new(100, 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in (0, 1]")]
    fn oversized_rate_rejected() {
        SampledTracker::<u64>::new(100, 1.5);
    }
}
