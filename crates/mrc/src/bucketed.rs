//! Approximate stack-distance tracking with geometric distance buckets.
//!
//! The exact tracker's Fenwick tree and per-key map cost `O(distinct keys)`
//! memory. For very large footprints the controller can fall back to this
//! bucketed variant: distances are recorded at the *upper edge* of a
//! geometric bucket, which makes the resulting curve a conservative
//! (pessimistic) approximation — it never under-states memory need, so a
//! quota derived from it is always safe. Ablation A5 quantifies the
//! accuracy/speed trade-off against [`crate::MattsonTracker`].

use crate::curve::MissRatioCurve;
use crate::mattson::MattsonTracker;
use std::hash::Hash;

/// Wraps the exact distance computation but coarsens histogram recording
/// into geometric buckets of the given growth ratio.
#[derive(Clone, Debug)]
pub struct BucketedTracker<K> {
    inner: MattsonTracker<K>,
    /// Pre-computed bucket upper edges, ascending.
    edges: Vec<u64>,
    curve: MissRatioCurve,
}

impl<K: Copy + Eq + Hash> BucketedTracker<K> {
    /// Creates a tracker with buckets growing by `ratio` (> 1.0) up to
    /// `cap_pages`.
    pub fn new(cap_pages: usize, ratio: f64) -> Self {
        assert!(ratio > 1.0, "bucket ratio must exceed 1");
        let mut edges = Vec::new();
        let mut edge = 1f64;
        loop {
            let e = edge.round() as u64;
            if edges.last() != Some(&e) {
                edges.push(e);
            }
            if e >= cap_pages as u64 {
                break;
            }
            edge *= ratio;
        }
        BucketedTracker {
            inner: MattsonTracker::new(cap_pages),
            edges,
            curve: MissRatioCurve::new(cap_pages),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.edges.len()
    }

    /// Observes one reference.
    pub fn access(&mut self, key: K) {
        match self.inner.access(key) {
            Some(d) => {
                // Round the distance up to its bucket edge: pessimistic.
                let idx = self.edges.partition_point(|&e| e < d);
                let rounded = self.edges.get(idx).copied().unwrap_or(u64::MAX);
                self.curve.record_hit_at(rounded);
            }
            None => self.curve.record_cold_miss(),
        }
    }

    /// The (approximate, pessimistic) curve.
    pub fn curve(&self) -> &MissRatioCurve {
        &self.curve
    }

    /// Consumes the tracker, yielding its (approximate) curve.
    pub fn into_curve(self) -> MissRatioCurve {
        self.curve
    }

    /// The exact curve computed alongside (for ablation comparisons).
    pub fn exact_curve(&self) -> &MissRatioCurve {
        self.inner.curve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximation_is_pessimistic() {
        let mut t = BucketedTracker::new(4096, 1.5);
        let mut x: u64 = 99;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.access(x % 1500);
        }
        for m in [16usize, 64, 256, 1024, 4096] {
            let approx = t.curve().miss_ratio(m);
            let exact = t.exact_curve().miss_ratio(m);
            assert!(
                approx >= exact - 1e-12,
                "bucketed must not understate miss ratio at m={m}: {approx} < {exact}"
            );
        }
    }

    #[test]
    fn approximation_is_tight_at_bucket_edges() {
        let mut t = BucketedTracker::new(1024, 2.0);
        for i in 0..10_000u64 {
            t.access(i % 100);
        }
        // Distance 100 rounds to edge 128; at m=128 both agree.
        let approx = t.curve().miss_ratio(128);
        let exact = t.exact_curve().miss_ratio(128);
        assert!((approx - exact).abs() < 1e-12);
    }

    #[test]
    fn bucket_count_is_logarithmic() {
        let t = BucketedTracker::<u64>::new(1 << 20, 2.0);
        assert!(t.buckets() <= 22, "got {}", t.buckets());
    }

    #[test]
    #[should_panic(expected = "ratio must exceed 1")]
    fn ratio_must_exceed_one() {
        BucketedTracker::<u64>::new(100, 1.0);
    }
}
