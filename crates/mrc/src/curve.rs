//! The miss ratio curve and the parameters the controller extracts from it.

/// Hit-count histogram over stack distances, queryable as `MR(m)` for any
/// cache size `m` up to the tracking cap.
#[derive(Clone, Debug, PartialEq)]
pub struct MissRatioCurve {
    /// `hits[d-1]` = number of references with stack distance exactly `d`.
    hits: Vec<u64>,
    /// References with distance beyond the cap (a miss at every tracked
    /// size) plus cold (first-touch) misses.
    beyond_or_cold: u64,
    /// Of which cold (first-touch) misses — kept separately for reporting.
    cold: u64,
    total: u64,
}

impl MissRatioCurve {
    /// Creates an empty curve tracking sizes `1..=cap_pages` exactly.
    pub fn new(cap_pages: usize) -> Self {
        assert!(cap_pages >= 1, "curve needs at least one tracked size");
        MissRatioCurve {
            hits: vec![0; cap_pages],
            beyond_or_cold: 0,
            cold: 0,
            total: 0,
        }
    }

    /// Records a re-access with 1-based stack distance `d`.
    pub fn record_hit_at(&mut self, d: u64) {
        self.record_hits_at(d, 1);
    }

    /// Records `n` re-accesses at the same 1-based stack distance `d` in
    /// one histogram update. The sampled tracker uses this to rescale a
    /// survivor's contribution by `1/R` without paying `1/R` increments.
    pub fn record_hits_at(&mut self, d: u64, n: u64) {
        self.total += n;
        if d as usize <= self.hits.len() {
            self.hits[d as usize - 1] += n;
        } else {
            self.beyond_or_cold += n;
        }
    }

    /// Records a first-touch (infinite-distance) miss.
    pub fn record_cold_miss(&mut self) {
        self.record_cold_misses(1);
    }

    /// Records `n` first-touch misses in one update (the bulk form used
    /// by the sampled tracker's `1/R` rescaling).
    pub fn record_cold_misses(&mut self, n: u64) {
        self.total += n;
        self.beyond_or_cold += n;
        self.cold += n;
    }

    /// Largest tracked cache size.
    pub fn cap(&self) -> usize {
        self.hits.len()
    }

    /// Total references recorded.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) misses recorded.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Miss ratio at cache size `m` pages (paper Eq. 1). `m` of zero means
    /// no cache: ratio 1. Sizes beyond the cap return the cap's value.
    pub fn miss_ratio(&self, m: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let m = m.min(self.hits.len());
        let hits: u64 = self.hits[..m].iter().sum();
        1.0 - hits as f64 / self.total as f64
    }

    /// The whole curve as `(size, miss_ratio)` sampled at `points` evenly
    /// spaced sizes (for rendering Fig. 5 / Fig. 6).
    pub fn sampled(&self, points: usize) -> Vec<(usize, f64)> {
        let points = points.max(2);
        let cap = self.hits.len();
        // Cumulative pass: O(cap) once instead of O(cap·points).
        let mut out = Vec::with_capacity(points);
        let mut cum = 0u64;
        let mut next = 0usize;
        for (i, &h) in self.hits.iter().enumerate() {
            cum += h;
            let size = i + 1;
            while next < points && size > next * (cap - 1) / (points - 1) {
                let target = 1 + next * (cap - 1) / (points - 1);
                if size == target {
                    let mr = if self.total == 0 {
                        1.0
                    } else {
                        1.0 - cum as f64 / self.total as f64
                    };
                    out.push((size, mr));
                }
                next += 1;
            }
        }
        out
    }

    /// Extracts the controller parameters (§3.3) for a server with
    /// `server_memory_pages` of RAM and the given acceptability threshold
    /// (absolute miss-ratio slack above ideal, e.g. 0.02).
    pub fn params(&self, server_memory_pages: usize, threshold: f64) -> MrcParams {
        let cap = self.hits.len().min(server_memory_pages);
        // Ideal: the miss ratio with all the memory we could ever give it.
        let ideal = self.miss_ratio(cap);
        // Total memory needed: smallest size achieving (within epsilon of)
        // the ideal ratio — the knee where more memory stops helping.
        // Acceptable: smallest size within `threshold` of ideal.
        let mut total_needed = cap;
        let mut acceptable_needed = cap;
        let mut cum = 0u64;
        let mut found_total = false;
        let mut found_acceptable = false;
        for (i, &h) in self.hits.iter().take(cap).enumerate() {
            cum += h;
            let mr = if self.total == 0 {
                1.0
            } else {
                1.0 - cum as f64 / self.total as f64
            };
            if !found_acceptable && mr <= ideal + threshold {
                acceptable_needed = i + 1;
                found_acceptable = true;
            }
            if !found_total && mr <= ideal + 1e-9 {
                total_needed = i + 1;
                found_total = true;
            }
            if found_total && found_acceptable {
                break;
            }
        }
        MrcParams {
            total_memory_needed: total_needed,
            ideal_miss_ratio: ideal,
            acceptable_memory_needed: acceptable_needed,
            acceptable_miss_ratio: self.miss_ratio(acceptable_needed),
        }
    }

    /// Merges another curve into this one (same cap required).
    pub fn merge(&mut self, other: &MissRatioCurve) {
        assert_eq!(self.cap(), other.cap(), "curve caps must match to merge");
        for (a, b) in self.hits.iter_mut().zip(&other.hits) {
            *a += b;
        }
        self.beyond_or_cold += other.beyond_or_cold;
        self.cold += other.cold;
        self.total += other.total;
    }
}

/// The per-query-class memory parameters the paper's controller stores in
/// the stable-state record and re-derives during diagnosis (§3.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MrcParams {
    /// Smallest memory (pages) at which the miss ratio stops improving,
    /// capped at the server's physical memory.
    pub total_memory_needed: usize,
    /// Miss ratio at `total_memory_needed`.
    pub ideal_miss_ratio: f64,
    /// Smallest memory whose miss ratio is within the threshold of ideal.
    pub acceptable_memory_needed: usize,
    /// Miss ratio at `acceptable_memory_needed`.
    pub acceptable_miss_ratio: f64,
}

impl MrcParams {
    /// The controller's "significant change" test (§3.3.2): has the total
    /// memory need grown by more than `factor` (e.g. 1.25 = +25%) or the
    /// ideal miss ratio deteriorated by more than `ratio_slack`?
    ///
    /// A class whose recomputed MRC shows significantly higher memory need
    /// remains a *problem class* suspected of causing memory interference.
    pub fn significantly_worse_than(
        &self,
        stable: &MrcParams,
        factor: f64,
        ratio_slack: f64,
    ) -> bool {
        let need_grew =
            self.total_memory_needed as f64 > stable.total_memory_needed as f64 * factor;
        let ratio_worse = self.ideal_miss_ratio > stable.ideal_miss_ratio + ratio_slack;
        need_grew || ratio_worse
    }

    /// Broader change test used when a localized plan change (e.g. a
    /// dropped index) reshapes the curve without necessarily growing it:
    /// the acceptable memory moved by more than `rel` in either direction,
    /// or the curve is significantly worse per
    /// [`MrcParams::significantly_worse_than`].
    pub fn significantly_different_from(
        &self,
        stable: &MrcParams,
        rel: f64,
        ratio_slack: f64,
    ) -> bool {
        let a = self.acceptable_memory_needed as f64;
        let b = stable.acceptable_memory_needed as f64;
        let acceptable_moved = (a - b).abs() > b.max(1.0) * rel;
        acceptable_moved || self.significantly_worse_than(stable, 1.0 + rel, ratio_slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve_from_distances(distances: &[Option<u64>], cap: usize) -> MissRatioCurve {
        let mut c = MissRatioCurve::new(cap);
        for d in distances {
            match d {
                Some(d) => c.record_hit_at(*d),
                None => c.record_cold_miss(),
            }
        }
        c
    }

    #[test]
    fn miss_ratio_is_monotone_non_increasing() {
        let c = curve_from_distances(
            &[None, Some(1), Some(3), Some(2), Some(10), None, Some(5)],
            16,
        );
        let mut prev = 1.0 + 1e-12;
        for m in 0..=16 {
            let mr = c.miss_ratio(m);
            assert!(mr <= prev + 1e-12, "MR must not increase with memory");
            prev = mr;
        }
    }

    #[test]
    fn empty_curve_has_ratio_one() {
        let c = MissRatioCurve::new(8);
        assert_eq!(c.miss_ratio(0), 1.0);
        assert_eq!(c.miss_ratio(8), 1.0);
    }

    #[test]
    fn paper_formula_example() {
        // 10 accesses: 2 cold, 5 at distance 2, 3 at distance 6.
        let mut c = MissRatioCurve::new(10);
        c.record_cold_miss();
        c.record_cold_miss();
        for _ in 0..5 {
            c.record_hit_at(2);
        }
        for _ in 0..3 {
            c.record_hit_at(6);
        }
        assert!((c.miss_ratio(1) - 1.0).abs() < 1e-12);
        assert!((c.miss_ratio(2) - 0.5).abs() < 1e-12);
        assert!((c.miss_ratio(5) - 0.5).abs() < 1e-12);
        assert!((c.miss_ratio(6) - 0.2).abs() < 1e-12);
        assert!((c.miss_ratio(10) - 0.2).abs() < 1e-12, "cold misses remain");
    }

    #[test]
    fn params_find_knee() {
        // Working set of 100 pages: all re-accesses at distance <= 100.
        let mut c = MissRatioCurve::new(1000);
        for _ in 0..900 {
            c.record_hit_at(100);
        }
        for _ in 0..100 {
            c.record_hit_at(20);
        }
        let p = c.params(1000, 0.05);
        assert_eq!(p.total_memory_needed, 100);
        assert_eq!(p.ideal_miss_ratio, 0.0);
        // 5% slack: can lose up to 50 of 1000 accesses; distance-100 hits
        // are 900 strong so we still need all 100 pages.
        assert_eq!(p.acceptable_memory_needed, 100);
    }

    #[test]
    fn acceptable_memory_is_below_total_for_long_tail() {
        // 9000 hits at distance 10; a 1% tail at distance 5000.
        let mut c = MissRatioCurve::new(8192);
        for _ in 0..9000 {
            c.record_hit_at(10);
        }
        for _ in 0..90 {
            c.record_hit_at(5000);
        }
        let p = c.params(8192, 0.02);
        assert_eq!(p.total_memory_needed, 5000);
        assert_eq!(p.acceptable_memory_needed, 10, "tail within threshold");
        assert!(p.acceptable_miss_ratio <= p.ideal_miss_ratio + 0.02);
    }

    #[test]
    fn total_needed_when_server_memory_cannot_help() {
        // Working set far beyond the server's memory: the best reachable
        // ratio is 1.0 and it is reached with a single page — a class whose
        // footprint exceeds the server "needs" no quota because no quota
        // under the cap improves it (the scan case).
        let mut c = MissRatioCurve::new(10_000);
        for _ in 0..100 {
            c.record_hit_at(9_000);
        }
        let p = c.params(4_096, 0.0);
        assert_eq!(p.total_memory_needed, 1);
        assert!((p.ideal_miss_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn significant_change_detection() {
        let stable = MrcParams {
            total_memory_needed: 1000,
            ideal_miss_ratio: 0.01,
            acceptable_memory_needed: 800,
            acceptable_miss_ratio: 0.03,
        };
        let grown = MrcParams {
            total_memory_needed: 2000,
            ..stable
        };
        let same = MrcParams {
            total_memory_needed: 1100,
            ..stable
        };
        let worse_ratio = MrcParams {
            ideal_miss_ratio: 0.2,
            ..stable
        };
        assert!(grown.significantly_worse_than(&stable, 1.25, 0.05));
        assert!(!same.significantly_worse_than(&stable, 1.25, 0.05));
        assert!(worse_ratio.significantly_worse_than(&stable, 1.25, 0.05));
    }

    #[test]
    fn significant_difference_sees_shrinkage_too() {
        // The index-drop case: the curve flattens, so acceptable memory
        // *shrinks* sharply — still a significant (plan) change.
        let stable = MrcParams {
            total_memory_needed: 8000,
            ideal_miss_ratio: 0.01,
            acceptable_memory_needed: 6982,
            acceptable_miss_ratio: 0.03,
        };
        let flattened = MrcParams {
            total_memory_needed: 4100,
            ideal_miss_ratio: 0.02,
            acceptable_memory_needed: 3695,
            acceptable_miss_ratio: 0.05,
        };
        let same = MrcParams {
            acceptable_memory_needed: 7100,
            ..stable
        };
        assert!(flattened.significantly_different_from(&stable, 0.25, 0.1));
        assert!(!same.significantly_different_from(&stable, 0.25, 0.1));
        // Growth is also a difference.
        let grown = MrcParams {
            total_memory_needed: 12_000,
            acceptable_memory_needed: 11_000,
            ..stable
        };
        assert!(grown.significantly_different_from(&stable, 0.25, 0.1));
    }

    #[test]
    fn sampled_returns_requested_points() {
        let mut c = MissRatioCurve::new(1000);
        for d in 1..=500u64 {
            c.record_hit_at(d);
        }
        let pts = c.sampled(11);
        assert!(!pts.is_empty());
        assert_eq!(pts.first().unwrap().0, 1);
        assert_eq!(pts.last().unwrap().0, 1000);
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 >= w[1].1 - 1e-12, "sampled curve monotone");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = curve_from_distances(&[None, Some(1)], 4);
        let b = curve_from_distances(&[Some(2), Some(2)], 4);
        a.merge(&b);
        assert_eq!(a.total_accesses(), 4);
        assert!((a.miss_ratio(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "caps must match")]
    fn merge_rejects_mismatched_caps() {
        let mut a = MissRatioCurve::new(4);
        a.merge(&MissRatioCurve::new(8));
    }
}
