//! # odlb-mrc — miss ratio curve tracking (paper §2)
//!
//! The miss-ratio curve (MRC) of a reference stream gives the page
//! miss-ratio the stream would experience under an LRU cache of each
//! possible size. The paper (following Zhou et al., ASPLOS'04) computes it
//! with **Mattson's stack algorithm**: because LRU has the *inclusion
//! property* (a cache of `k+1` pages contains the contents of a cache of
//! `k` pages), a single pass that records each reference's *stack distance*
//! yields hit counts for every cache size at once:
//!
//! ```text
//!             Σ_{i=1..m} Hit[i]
//! MR(m) = 1 − ──────────────────────
//!             Σ_{i=1..n} Hit[i] + Hit[∞]
//! ```
//!
//! Three trackers are provided, selectable end-to-end via [`MrcMode`]:
//!
//! * [`MattsonTracker`] — exact stack distances in `O(log n)` per access
//!   (Bender/Olken time-stamp + Fenwick-tree formulation of Mattson).
//! * [`BucketedTracker`] — a coarser variant that bins distances into
//!   geometric buckets, trading resolution for memory; used in the
//!   ablation study (A5).
//! * [`SampledTracker`] — SHARDS-style spatial hash sampling: only a
//!   fixed fraction `R` of the key space is tracked exactly, distances
//!   and counts are rescaled by `1/R` at recording time. `O(1)` for the
//!   `1-R` unsampled majority; the sampled-vs-exact error bound is
//!   pinned by `tests/sampled_mrc_properties.rs` and quantified by the
//!   `ablation-mrc-sampled` figure.
//!
//! From a finished curve, [`MrcParams`] extracts the two quantities the
//! paper's controller uses per query class (§3.3): *total memory needed*
//! (smallest size reaching the ideal miss ratio, capped at server memory)
//! and *acceptable memory needed* (smallest size whose miss ratio is within
//! a threshold of ideal).
//!
//! [`solver`] implements the controller's quota search: can every class on
//! a server be given a quota at which the MRC predicts its acceptable miss
//! ratio, within the server's total memory?

pub mod bucketed;
pub mod curve;
pub mod mattson;
pub mod sampled;
pub mod solver;

pub use bucketed::BucketedTracker;
pub use curve::{MissRatioCurve, MrcParams};
pub use mattson::MattsonTracker;
pub use sampled::{MrcMode, SampledTracker};
pub use solver::{fit_quotas, greedy_allocate, QuotaRequest};

/// Replays one reference stream through the tracker `mode` selects,
/// yielding its curve tracked up to `cap_pages`. The single dispatch
/// point behind every MRC recomputation (access-window replay, figure
/// jobs, property tests).
pub fn compute_curve<K, I>(mode: MrcMode, cap_pages: usize, keys: I) -> MissRatioCurve
where
    K: Copy + Eq + std::hash::Hash,
    I: IntoIterator<Item = K>,
{
    match mode {
        MrcMode::Exact => {
            let mut t = MattsonTracker::new(cap_pages);
            for k in keys {
                t.access(k);
            }
            t.into_curve()
        }
        MrcMode::Bucketed => {
            let mut t = BucketedTracker::new(cap_pages, MrcMode::DEFAULT_BUCKET_RATIO);
            for k in keys {
                t.access(k);
            }
            t.into_curve()
        }
        MrcMode::Sampled { rate } => {
            let mut t = SampledTracker::new(cap_pages, rate);
            for k in keys {
                t.access(k);
            }
            t.into_curve()
        }
    }
}
