//! Exact Mattson stack-distance tracking in `O(log n)` per access.
//!
//! The naive LRU-stack formulation searches the stack linearly for each
//! reference. We use the classic time-stamp reformulation (Bender/Olken):
//! keep, for every key, the *time* of its most recent access, and a
//! Fenwick tree over time slots where slot `t` is 1 iff `t` is currently
//! the most recent access of some key. The stack distance of a re-access
//! at time `t` of a key last touched at `t0` is the number of set slots in
//! `(t0, t)` plus one — exactly its LRU stack depth.
//!
//! Time slots are compacted (rebuilt densely) whenever the tree grows past
//! twice the number of live keys, keeping memory proportional to the
//! number of distinct pages.

use crate::curve::MissRatioCurve;
use std::collections::HashMap;
use std::hash::Hash;

/// Fenwick (binary indexed) tree over time slots.
#[derive(Clone, Debug, Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn with_len(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    /// Adds `delta` at 1-based position `i`.
    fn add(&mut self, mut i: usize, delta: i32) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut s = 0u64;
        i = i.min(self.len());
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Exact stack-distance tracker producing a [`MissRatioCurve`].
#[derive(Clone, Debug)]
pub struct MattsonTracker<K> {
    /// Most-recent access slot per live key (1-based).
    last_slot: HashMap<K, usize>,
    /// Marks which slots are some key's most recent access.
    marks: Fenwick,
    /// Next free slot.
    next_slot: usize,
    /// The curve under construction. Distances above its capacity are
    /// recorded as "hits beyond cap", which every tracked size treats as a
    /// miss — results for sizes `<= cap` stay exact.
    curve: MissRatioCurve,
}

impl<K: Copy + Eq + Hash> MattsonTracker<K> {
    /// Creates a tracker recording distances up to `cap_pages` exactly.
    ///
    /// The initial Fenwick tree is sized from `cap_pages` rather than a
    /// fixed constant: `recompute_mrc` builds one small tracker per
    /// problem class, and a fixed 1024-slot tree over-allocated every
    /// tracker whose cap is a few dozen pages. A tracker that outgrows
    /// the initial tree rebuilds densely with headroom (`rebuild` keeps
    /// the larger 4096 floor to amortise repeated growth).
    pub fn new(cap_pages: usize) -> Self {
        MattsonTracker {
            last_slot: HashMap::new(),
            marks: Fenwick::with_len(((cap_pages + 1) * 2).next_power_of_two().max(8)),
            next_slot: 1,
            curve: MissRatioCurve::new(cap_pages),
        }
    }

    /// Number of distinct keys seen and still tracked.
    pub fn distinct_keys(&self) -> usize {
        self.last_slot.len()
    }

    /// Current Fenwick slot capacity (tests pin the cap-proportional
    /// initial allocation).
    pub fn slot_capacity(&self) -> usize {
        self.marks.len()
    }

    /// Observes one reference. Returns the LRU stack distance (1-based) of
    /// the reference, or `None` for a first access (infinite distance).
    pub fn access(&mut self, key: K) -> Option<u64> {
        // A Fenwick tree cannot be zero-extended in place (new internal
        // nodes would miss earlier adds), so rebuild densely at capacity.
        if self.next_slot >= self.marks.len() {
            self.rebuild();
        }
        let t = self.next_slot;
        self.next_slot += 1;

        let distance = match self.last_slot.insert(key, t) {
            Some(t0) => {
                // Set slots strictly inside (t0, t), plus one for the key
                // itself, equals the LRU stack depth.
                let between = self.marks.prefix(t - 1) - self.marks.prefix(t0);
                self.marks.add(t0, -1);
                Some(between + 1)
            }
            None => None,
        };
        self.marks.add(t, 1);

        match distance {
            Some(d) => self.curve.record_hit_at(d),
            None => self.curve.record_cold_miss(),
        }
        distance
    }

    /// Re-numbers live keys' slots densely as `1..=n` and sizes the tree
    /// with headroom, preserving relative recency order exactly.
    fn rebuild(&mut self) {
        let mut entries: Vec<(K, usize)> = self.last_slot.iter().map(|(k, &s)| (*k, s)).collect();
        entries.sort_by_key(|&(_, s)| s);
        let n = entries.len();
        let cap = ((n + 1) * 2).next_power_of_two().max(4096);
        self.marks = Fenwick::with_len(cap);
        self.last_slot.clear();
        for (i, (k, _)) in entries.into_iter().enumerate() {
            self.last_slot.insert(k, i + 1);
            self.marks.add(i + 1, 1);
        }
        self.next_slot = n + 1;
    }

    /// The curve accumulated so far.
    pub fn curve(&self) -> &MissRatioCurve {
        &self.curve
    }

    /// Consumes the tracker, yielding its curve.
    pub fn into_curve(self) -> MissRatioCurve {
        self.curve
    }

    /// Total references observed.
    pub fn accesses(&self) -> u64 {
        self.curve.total_accesses()
    }
}

/// Reference implementation: naive O(n) stack search. Used by tests and
/// property checks to validate the Fenwick formulation.
#[derive(Clone, Debug, Default)]
pub struct NaiveStack<K> {
    stack: Vec<K>,
}

impl<K: Copy + Eq> NaiveStack<K> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        NaiveStack { stack: Vec::new() }
    }

    /// Observes a reference; returns its 1-based stack distance or `None`.
    pub fn access(&mut self, key: K) -> Option<u64> {
        let pos = self.stack.iter().position(|k| *k == key);
        match pos {
            Some(i) => {
                self.stack.remove(i);
                self.stack.insert(0, key);
                Some(i as u64 + 1)
            }
            None => {
                self.stack.insert(0, key);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_cold() {
        let mut t = MattsonTracker::new(100);
        assert_eq!(t.access(1u64), None);
        assert_eq!(t.access(2u64), None);
        assert_eq!(t.distinct_keys(), 2);
    }

    #[test]
    fn immediate_reuse_has_distance_one() {
        let mut t = MattsonTracker::new(100);
        t.access(1u64);
        assert_eq!(t.access(1u64), Some(1));
    }

    #[test]
    fn distance_counts_distinct_intervening_keys() {
        let mut t = MattsonTracker::new(100);
        for k in [1u64, 2, 3, 1] {
            t.access(k);
        }
        // Re-access of 1 after touching 2 and 3: depth 3.
        assert_eq!(t.access(2u64), Some(3)); // stack: 1,3,2 -> 2 at depth 3
    }

    #[test]
    fn repeated_intervening_key_counts_once() {
        let mut t = MattsonTracker::new(100);
        t.access(1u64);
        t.access(2u64);
        t.access(2u64);
        t.access(2u64);
        assert_eq!(t.access(1u64), Some(2), "2 touched thrice but is one key");
    }

    #[test]
    fn matches_naive_stack_on_random_trace() {
        let mut fast = MattsonTracker::new(1 << 14);
        let mut slow = NaiveStack::new();
        // Deterministic pseudo-random trace with locality.
        let mut x: u64 = 0x12345678;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = if i % 3 == 0 { x % 50 } else { x % 2000 };
            assert_eq!(fast.access(key), slow.access(key), "at access {i}");
        }
    }

    #[test]
    fn compaction_preserves_distances() {
        // Force many slot allocations with few live keys so compaction
        // actually fires, then check against the naive stack.
        let mut fast = MattsonTracker::new(64);
        let mut slow = NaiveStack::new();
        for i in 0..100_000u64 {
            let key = i % 16;
            assert_eq!(fast.access(key), slow.access(key), "at access {i}");
        }
    }

    #[test]
    fn initial_tree_is_sized_from_the_cap() {
        // Small per-class trackers must not pay for 1024 slots up front.
        assert_eq!(MattsonTracker::<u64>::new(30).slot_capacity(), 64);
        assert_eq!(MattsonTracker::<u64>::new(1).slot_capacity(), 8);
        assert_eq!(MattsonTracker::<u64>::new(8000).slot_capacity(), 16384);
        // Rebuild keeps its own (larger) floor once a tracker outgrows
        // the initial tree.
        let mut t = MattsonTracker::<u64>::new(16);
        for i in 0..10_000u64 {
            t.access(i % 8);
        }
        assert!(t.slot_capacity() >= 4096);
    }

    #[test]
    fn curve_reflects_loop_pattern() {
        // Cyclic scan of 10 pages: every re-access has distance exactly 10.
        let mut t = MattsonTracker::new(100);
        for i in 0..1000u64 {
            t.access(i % 10);
        }
        let c = t.curve();
        // 990 re-accesses at distance 10, 10 cold misses.
        assert!((c.miss_ratio(9) - 1.0).abs() < 1e-12, "9 pages never hit");
        assert!((c.miss_ratio(10) - 10.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn accesses_counted() {
        let mut t = MattsonTracker::new(10);
        for i in 0..5u64 {
            t.access(i);
        }
        assert_eq!(t.accesses(), 5);
    }
}
