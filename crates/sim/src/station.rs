//! FCFS multi-server queueing stations.
//!
//! A [`Station`] models a resource with `c` identical servers and a shared
//! FIFO queue — the textbook abstraction for a `c`-way CPU socket or a disk
//! spindle. Instead of simulating the queue with explicit events, the
//! station computes each job's start and completion times analytically at
//! arrival (valid for FCFS with known service demands): the caller then
//! schedules a single completion event. This keeps the event count per
//! query O(1) while producing exact FCFS queueing delays — the mechanism
//! behind the paper's CPU-saturation (Fig. 3) and I/O-interference
//! (Table 3) behaviours.

use crate::time::{SimDuration, SimTime};

/// The outcome of submitting a job to a station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// When service begins (>= arrival time).
    pub start: SimTime,
    /// When service completes.
    pub completion: SimTime,
}

impl Admission {
    /// Time spent waiting in queue before service began.
    pub fn queue_wait(&self, arrived: SimTime) -> SimDuration {
        self.start.since(arrived)
    }
}

/// A `c`-server FCFS queueing station.
#[derive(Clone, Debug)]
pub struct Station {
    /// Earliest time each server becomes free, kept as a small unsorted
    /// vector (`c` is 1–8 in practice; linear scans beat a heap there).
    free_at: Vec<SimTime>,
    /// Cumulative busy time across all servers, for utilisation probes.
    busy: SimDuration,
    /// Jobs admitted since creation.
    jobs: u64,
    /// Cumulative queueing delay.
    total_wait: SimDuration,
    /// Busy time at the last `snapshot()` call.
    busy_at_snapshot: SimDuration,
    /// Clock value at the last `snapshot()` call.
    snapshot_at: SimTime,
}

impl Station {
    /// Creates a station with `servers` identical servers.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a station needs at least one server");
        Station {
            free_at: vec![SimTime::ZERO; servers],
            busy: SimDuration::ZERO,
            jobs: 0,
            total_wait: SimDuration::ZERO,
            busy_at_snapshot: SimDuration::ZERO,
            snapshot_at: SimTime::ZERO,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submits a job arriving at `now` with the given service demand and
    /// returns its start/completion times. FCFS: the job takes the server
    /// that frees earliest.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> Admission {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("station has servers");
        let start = self.free_at[idx].max(now);
        let completion = start + service;
        self.free_at[idx] = completion;
        self.busy += service;
        self.jobs += 1;
        self.total_wait += start.since(now);
        Admission { start, completion }
    }

    /// Number of jobs currently queued or in service at time `now`.
    pub fn in_flight(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|t| **t > now).count()
    }

    /// Earliest time any server is free.
    pub fn next_free(&self) -> SimTime {
        *self.free_at.iter().min().expect("station has servers")
    }

    /// Total jobs admitted since creation.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Mean queueing delay over all admitted jobs.
    pub fn mean_wait(&self) -> SimDuration {
        if self.jobs == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait / self.jobs
        }
    }

    /// Utilisation (busy-server-time / capacity-time) since the last
    /// snapshot, then resets the snapshot to `now`. A value near 1.0 means
    /// the station is saturated.
    pub fn utilisation_since_snapshot(&mut self, now: SimTime) -> f64 {
        let interval = now.since(self.snapshot_at);
        let busy_delta = self.busy.saturating_sub(self.busy_at_snapshot);
        self.busy_at_snapshot = self.busy;
        self.snapshot_at = now;
        let capacity = interval.as_secs_f64() * self.servers() as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            // Busy time can exceed the interval when service extends past
            // `now` (work already booked); clamp for a sane gauge.
            (busy_delta.as_secs_f64() / capacity).min(1.0)
        }
    }

    /// Grows the station to `servers` servers, new ones free immediately.
    /// Shrinking is not supported (in the paper, deallocation happens by
    /// retiring whole replicas, not by removing cores).
    pub fn grow_to(&mut self, servers: usize, now: SimTime) {
        assert!(
            servers >= self.free_at.len(),
            "stations only grow; retire the replica instead"
        );
        while self.free_at.len() < servers {
            self.free_at.push(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }
    fn dur(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn single_server_fifo_backlog() {
        let mut st = Station::new(1);
        let a = st.submit(us(0), dur(100));
        assert_eq!(a.start, us(0));
        assert_eq!(a.completion, us(100));
        // Arrives while the first job is in service: waits.
        let b = st.submit(us(50), dur(100));
        assert_eq!(b.start, us(100));
        assert_eq!(b.completion, us(200));
        assert_eq!(b.queue_wait(us(50)), dur(50));
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut st = Station::new(1);
        st.submit(us(0), dur(100));
        let b = st.submit(us(500), dur(10));
        assert_eq!(b.start, us(500));
        assert_eq!(b.completion, us(510));
    }

    #[test]
    fn multi_server_parallelism() {
        let mut st = Station::new(2);
        let a = st.submit(us(0), dur(100));
        let b = st.submit(us(0), dur(100));
        // Two servers: both start at once.
        assert_eq!(a.start, us(0));
        assert_eq!(b.start, us(0));
        // Third job waits for the earliest completion.
        let c = st.submit(us(10), dur(50));
        assert_eq!(c.start, us(100));
    }

    #[test]
    fn in_flight_counts() {
        let mut st = Station::new(2);
        st.submit(us(0), dur(100));
        st.submit(us(0), dur(200));
        assert_eq!(st.in_flight(us(50)), 2);
        assert_eq!(st.in_flight(us(150)), 1);
        assert_eq!(st.in_flight(us(250)), 0);
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut st = Station::new(1);
        st.submit(us(0), dur(500_000));
        let u = st.utilisation_since_snapshot(us(1_000_000));
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
        // Second interval with no work: utilisation 0.
        let u2 = st.utilisation_since_snapshot(us(2_000_000));
        assert_eq!(u2, 0.0);
    }

    #[test]
    fn utilisation_clamps_at_one_under_saturation() {
        let mut st = Station::new(1);
        for i in 0..10 {
            st.submit(us(i * 10), dur(1_000_000));
        }
        let u = st.utilisation_since_snapshot(us(1_000_000));
        assert_eq!(u, 1.0);
    }

    #[test]
    fn grow_adds_capacity() {
        let mut st = Station::new(1);
        st.submit(us(0), dur(1000));
        st.grow_to(2, us(10));
        let b = st.submit(us(10), dur(100));
        assert_eq!(b.start, us(10), "new server picks up the job at once");
        assert_eq!(st.servers(), 2);
    }

    #[test]
    fn mean_wait_accumulates() {
        let mut st = Station::new(1);
        st.submit(us(0), dur(100)); // wait 0
        st.submit(us(0), dur(100)); // wait 100
        st.submit(us(0), dur(100)); // wait 200
        assert_eq!(st.mean_wait(), dur(100));
        assert_eq!(st.jobs(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        Station::new(0);
    }
}
