//! Online statistics used by the measurement layer: Welford mean/variance,
//! exact percentiles over bounded samples, interval accumulators and named
//! time series for the experiment harnesses.

use crate::time::SimTime;

/// Nearest-rank of the `q`-quantile over `n` samples, computed in integer
/// arithmetic: the 1-based rank `⌈q·n⌉` clamped to `1..=n`.
///
/// The naive float form `(q * n as f64).ceil()` is fragile exactly where
/// it matters — when `q·n` lands on an integer boundary, one ulp of
/// product rounding error crosses the boundary and shifts the rank by
/// one (`0.07 * 100.0 = 7.000000000000001`, so p7 of 100 samples picked
/// rank 8). Here `q` is quantized once to parts-per-million — exact for
/// every decimal quantile callers use (p50, p95, p99, p99.9, …) — and
/// the ceiling division is integer, so the boundary is hit exactly.
///
/// `q ≤ 0` (and NaN) yield rank 1, `q ≥ 1` yields rank `n`, mirroring
/// the old clamp. `n` must be nonzero.
pub fn nearest_rank(q: f64, n: u64) -> u64 {
    debug_assert!(n > 0, "nearest_rank of an empty sample");
    if q.is_nan() || q <= 0.0 {
        return 1;
    }
    if q >= 1.0 {
        return n;
    }
    const SCALE: u128 = 1_000_000;
    let num = (q * SCALE as f64).round() as u128;
    let rank = (num * n as u128).div_ceil(SCALE) as u64;
    rank.clamp(1, n)
}

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty, so gauges render sanely).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Welford::default();
    }
}

/// Exact percentile over a retained sample (sorted on demand).
///
/// Measurement intervals are short (thousands of queries), so retaining the
/// interval's samples exactly is cheaper and more faithful than a sketch.
/// The sorted order is cached behind a dirty flag: reports ask for several
/// quantiles (p50/p95/p99) of the same interval back to back, and only the
/// first query after new observations pays the clone-and-sort.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: std::cell::RefCell<Vec<f64>>,
    dirty: std::cell::Cell<bool>,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.dirty.set(true);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by the nearest-rank method, or
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut sorted = self.sorted.borrow_mut();
        if self.dirty.get() {
            sorted.clear();
            sorted.extend_from_slice(&self.samples);
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.dirty.set(false);
        }
        let rank = nearest_rank(q, sorted.len() as u64) as usize;
        Some(sorted[rank - 1])
    }

    /// Resets to empty, keeping the allocations.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.sorted.borrow_mut().clear();
        self.dirty.set(false);
    }
}

/// A named series of `(time, value)` points, the backing store for every
/// figure the harness regenerates.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Time must be non-decreasing.
    ///
    /// Panics on out-of-order appends in *every* profile, not just
    /// debug: a `debug_assert!` here let release builds silently accept
    /// out-of-order points, corrupting every figure rendered from the
    /// series. An out-of-order append is always a caller bug (the sim
    /// clock is monotone), so failing loudly beats clamp-and-count.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                at >= last,
                "time series {:?} must be appended in order ({at:?} after {last:?})",
                self.name
            );
        }
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The most recent value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Maximum recorded value.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Mean of recorded values (unweighted).
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Renders the series as a compact ASCII sparkline-style table, used by
    /// the experiment binaries to "print the same series the paper plots".
    pub fn render_ascii(&self, width: usize) -> String {
        if self.points.is_empty() {
            return format!("{}: (empty)\n", self.name);
        }
        let max = self.max().unwrap_or(0.0).max(1e-12);
        let mut out = String::new();
        out.push_str(&format!("{} (max {:.3}):\n", self.name, max));
        for &(t, v) in &self.points {
            let bars = ((v / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {:>10.1}s {:>12.3} |{}\n",
                t.as_secs_f64(),
                v,
                "#".repeat(bars.min(width))
            ));
        }
        out
    }
}

/// Sum/count accumulator that is drained once per measurement interval.
#[derive(Clone, Debug, Default)]
pub struct IntervalAccumulator {
    sum: f64,
    count: u64,
}

impl IntervalAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    /// Adds `n` observations totalling `sum` (bulk counters).
    pub fn push_bulk(&mut self, sum: f64, n: u64) {
        self.sum += sum;
        self.count += n;
    }

    /// Observation count this interval.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum this interval.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean this interval (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Returns `(sum, count)` and resets.
    pub fn drain(&mut self) -> (f64, u64) {
        let out = (self.sum, self.count);
        self.sum = 0.0;
        self.count = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.quantile(0.5), Some(50.0));
        assert_eq!(p.quantile(0.95), Some(95.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert_eq!(p.quantile(0.0), Some(1.0));
    }

    /// Regression for the float-fragile rank: `0.07 * 100.0` is
    /// `7.000000000000001` in f64, so the pre-fix
    /// `(q * len).ceil()` picked rank 8 for p7 of 100 samples (and 56
    /// for p55). The integer rank hits the boundary exactly.
    #[test]
    fn percentiles_rank_is_exact_on_integer_boundaries() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.quantile(0.07), Some(7.0));
        assert_eq!(p.quantile(0.55), Some(55.0));
        assert_eq!(p.quantile(0.14), Some(14.0));
    }

    /// Property: across the quantile grid and every length 1..=64 (and a
    /// few larger), `nearest_rank` equals the brute-force oracle — the
    /// smallest 1-based rank `r` with `r ≥ q·n` under exact rational
    /// (parts-per-million) arithmetic.
    #[test]
    fn nearest_rank_matches_brute_force_oracle() {
        let grid = [0.0, 0.25, 0.5, 0.95, 0.99, 1.0];
        let fine: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        for &q in grid.iter().chain(fine.iter()) {
            for n in (1..=64).chain([100, 128, 1000, 4096]) {
                let num = (q * 1e6).round() as u128;
                let oracle = (1..=n)
                    .find(|&r| r as u128 * 1_000_000 >= num * n as u128)
                    .unwrap_or(n);
                assert_eq!(
                    nearest_rank(q, n),
                    oracle,
                    "q={q} n={n}: rank diverged from oracle"
                );
            }
        }
    }

    #[test]
    fn nearest_rank_edge_cases() {
        assert_eq!(nearest_rank(0.0, 7), 1, "q=0 is the minimum");
        assert_eq!(nearest_rank(1.0, 7), 7, "q=1 is the maximum");
        assert_eq!(nearest_rank(f64::NAN, 7), 1, "NaN degrades to rank 1");
        assert_eq!(nearest_rank(-0.5, 7), 1);
        assert_eq!(nearest_rank(1.5, 7), 7);
        assert_eq!(nearest_rank(1e-12, 7), 1, "tiny q still a valid rank");
        assert_eq!(nearest_rank(0.5, 1), 1);
        // Large n: no overflow in the u128 product.
        assert_eq!(nearest_rank(0.5, u64::MAX), u64::MAX / 2 + 1);
    }

    #[test]
    fn percentiles_empty() {
        assert_eq!(Percentiles::new().quantile(0.5), None);
    }

    #[test]
    fn percentiles_cache_invalidates_on_push_and_reset() {
        let mut p = Percentiles::new();
        p.push(10.0);
        assert_eq!(p.quantile(1.0), Some(10.0));
        // New observations after a cached sort must be visible.
        p.push(30.0);
        p.push(20.0);
        assert_eq!(p.quantile(1.0), Some(30.0));
        assert_eq!(p.quantile(0.5), Some(20.0));
        p.reset();
        assert_eq!(p.quantile(0.5), None);
        p.push(7.0);
        assert_eq!(p.quantile(0.5), Some(7.0));
    }

    #[test]
    fn time_series_records_and_summarises() {
        let mut ts = TimeSeries::new("latency");
        ts.record(SimTime::from_secs(1), 0.5);
        ts.record(SimTime::from_secs(2), 1.5);
        ts.record(SimTime::from_secs(3), 1.0);
        assert_eq!(ts.last(), Some(1.0));
        assert_eq!(ts.max(), Some(1.5));
        assert!((ts.mean().unwrap() - 1.0).abs() < 1e-12);
        let rendered = ts.render_ascii(10);
        assert!(rendered.contains("latency"));
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "must be appended in order")]
    fn time_series_rejects_out_of_order_appends_in_every_profile() {
        // A plain `assert!`, not `debug_assert!`: this test is part of
        // the release-profile CI run, where the old debug_assert was
        // compiled out and out-of-order points slipped through.
        let mut ts = TimeSeries::new("latency");
        ts.record(SimTime::from_secs(2), 1.0);
        ts.record(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn interval_accumulator_drains() {
        let mut acc = IntervalAccumulator::new();
        acc.push(1.0);
        acc.push(3.0);
        acc.push_bulk(10.0, 2);
        assert_eq!(acc.count(), 4);
        assert_eq!(acc.mean(), Some(3.5));
        let (sum, n) = acc.drain();
        assert_eq!((sum, n), (14.0, 4));
        assert_eq!(acc.mean(), None);
    }
}
