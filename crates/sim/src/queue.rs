//! The event queue: a calendar queue with a `BinaryHeap` reference
//! implementation.
//!
//! [`EventQueue`] is the production structure — a calendar queue
//! (R. Brown, CACM 1988): pending events hash into `buckets.len()`
//! time-sliced buckets of `1 << shift` microseconds each, so at steady
//! state push and pop are O(1) instead of the heap's O(log n). With ~1M
//! resident events (one per concurrent client session at scale) that
//! factor-20 difference is the event hot path.
//!
//! Ordering is *identical* to the previous `BinaryHeap` implementation,
//! which is retained as [`BinaryHeapEventQueue`]: events pop in
//! `(time, insertion seq)` order, so ties are FIFO and every simulation
//! replays byte-identically whichever queue backs it. The differential
//! property suite in `tests/eventqueue_properties.rs` pins the two pop
//! orders against each other over randomized interleavings.
//!
//! Invariants the implementation leans on:
//!
//! * every pending event fires at or after `now` (`schedule` clamps, and
//!   pop takes the global minimum, so the clock can never pass a pending
//!   event) — this is what makes the day-by-day minimum scan exhaustive;
//! * each bucket is kept sorted *descending* by `(at, seq)`, so the
//!   bucket minimum is `last()` and removing it is a plain `Vec::pop`;
//! * a cached global minimum makes `peek_time` O(1) without interior
//!   mutability: a push can only improve it (strictly earlier time — an
//!   equal time loses the seq tiebreak), and a pop consumes it and
//!   rescans from the popped day.

use crate::time::{SimDuration, SimTime};

/// A pending event: fire time plus an insertion sequence number used to keep
/// ordering stable (FIFO) among events scheduled for the same instant.
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The cached global minimum: its timestamp and the bucket holding it.
#[derive(Clone, Copy)]
struct Min {
    at: SimTime,
    bucket: usize,
}

/// Fewest buckets the calendar ever uses; also the initial size.
const MIN_BUCKETS: usize = 16;

/// Initial bucket width exponent (2^10 µs ≈ 1 ms) before the first
/// adaptive rebuild.
const INITIAL_SHIFT: u32 = 10;

/// A deterministic event queue over a user-defined event type.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled, which keeps multi-component simulations reproducible.
pub struct EventQueue<E> {
    /// Power-of-two bucket array; each bucket sorted descending by
    /// `(at, seq)` so the bucket minimum is `last()`.
    buckets: Vec<Vec<Pending<E>>>,
    /// Bucket width exponent: one bucket ("day") spans `1 << shift`
    /// microseconds, so the day of `t` is `t >> shift` — a shift, not a
    /// division, on the per-push and per-scan paths.
    shift: u32,
    /// Occupancy bitmap, one bit per bucket: the minimum scan skips
    /// runs of empty buckets a 64-bucket word at a time instead of
    /// touching each bucket's `Vec` header (which, at ~2^20 buckets, is
    /// tens of megabytes of pointer-chasing).
    occ: Vec<u64>,
    len: usize,
    seq: u64,
    now: SimTime,
    min: Option<Min>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            occ: vec![0; MIN_BUCKETS.div_ceil(64)],
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            min: None,
        }
    }

    /// The current virtual time: the timestamp of the last popped event, or
    /// zero before the first pop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_micros() >> self.shift) & (self.buckets.len() as u64 - 1)) as usize
    }

    fn mark_occupied(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    fn mark_empty(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Distance (in buckets, wrapping) from `from` to the nearest occupied
    /// bucket at or after it, or `None` when every bucket is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let n = self.buckets.len();
        let (w0, b0) = (from >> 6, from & 63);
        let first = self.occ[w0] & (!0u64 << b0);
        if first != 0 {
            return Some(((w0 << 6) | first.trailing_zeros() as usize) - from);
        }
        let words = self.occ.len();
        for step in 1..=words {
            let w = (w0 + step) % words;
            let word = self.occ[w];
            if word != 0 {
                let idx = (w << 6) | word.trailing_zeros() as usize;
                return Some((idx + n - from) % n);
            }
        }
        None
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller — virtual
    /// time would run backwards and interval attribution would corrupt —
    /// so debug builds fail fast. Release builds clamp to `now` rather
    /// than time-travelling, so causality still holds.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past ({at:?} < clock {:?})",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let idx = self.bucket_of(at);
        let bucket = &mut self.buckets[idx];
        // Descending order: skip entries strictly greater than the new
        // key. A fresh event holds the largest seq so far, so among
        // equal timestamps it lands closest to the front (popped last).
        let pos = bucket.partition_point(|p| (p.at, p.seq) > (at, seq));
        bucket.insert(pos, Pending { at, seq, event });
        self.mark_occupied(idx);
        self.len += 1;
        // Only a strictly earlier time can displace the cached minimum:
        // at an equal time the incumbent wins the seq tiebreak.
        match self.min {
            Some(m) if m.at <= at => {}
            _ => self.min = Some(Min { at, bucket: idx }),
        }
        if self.len > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let m = self.min?;
        let p = self.buckets[m.bucket]
            .pop()
            .expect("cached minimum points at a non-empty bucket");
        debug_assert_eq!(p.at, m.at, "cached minimum out of date");
        debug_assert!(p.at >= self.now, "event queue went back in time");
        if self.buckets[m.bucket].is_empty() {
            self.mark_empty(m.bucket);
        }
        self.now = p.at;
        self.len -= 1;
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        } else {
            self.min = self.scan_min(p.at);
        }
        Some((p.at, p.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min.map(|m| m.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finds the global minimum, knowing every pending event fires at or
    /// after `from` (the timestamp just popped).
    ///
    /// Walks day windows upward from `from`, hopping straight between
    /// occupied buckets via the bitmap: the first bucket whose minimum
    /// falls inside its scanned day holds the global minimum, because
    /// all times of one day map to one bucket and earlier days are
    /// already known empty. If a whole calendar year passes without a
    /// hit (every pending event ≥ one full lap ahead), falls back to a
    /// direct minimum over the occupied buckets.
    fn scan_min(&self, from: SimTime) -> Option<Min> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let day0 = from.as_micros() >> self.shift;
        let start = (day0 & (n as u64 - 1)) as usize;
        let mut dist = 0usize;
        while dist < n {
            let idx = (start + dist) & (n - 1);
            let Some(hop) = self.next_occupied(idx) else {
                break;
            };
            dist += hop;
            if dist >= n {
                break;
            }
            let idx = (start + dist) & (n - 1);
            let p = self.buckets[idx].last().expect("occupancy bit set");
            if p.at.as_micros() >> self.shift == day0 + dist as u64 {
                return Some(Min {
                    at: p.at,
                    bucket: idx,
                });
            }
            dist += 1;
        }
        let mut best: Option<Min> = None;
        let mut best_key = (u64::MAX, u64::MAX);
        for (w, &bits) in self.occ.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let idx = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = self.buckets[idx].last().expect("occupancy bit set");
                let key = (p.at.as_micros(), p.seq);
                if key < best_key {
                    best_key = key;
                    best = Some(Min {
                        at: p.at,
                        bucket: idx,
                    });
                }
            }
        }
        best
    }

    /// Redistributes every pending event across `target` buckets (clamped
    /// to a power of two ≥ [`MIN_BUCKETS`]), re-deriving the bucket width
    /// from the live event span — rounded up to a power of two so the
    /// per-operation day math stays a shift — so one "day" holds O(1)
    /// events.
    ///
    /// Amortized: rebuilds trigger on size doublings/halvings, so the
    /// O(len·log len) sort costs O(log len) per operation.
    fn rebuild(&mut self, target: usize) {
        let nbuckets = target.max(MIN_BUCKETS).next_power_of_two();
        let mut all: Vec<Pending<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        // Descending, so appending in order preserves each bucket's
        // descending invariant below.
        all.sort_unstable_by_key(|p| std::cmp::Reverse((p.at, p.seq)));
        if all.len() >= 2 {
            let span = all[0].at.as_micros() - all[all.len() - 1].at.as_micros();
            // A day holds ~4 events on purpose: quadrupling the width
            // keeps day-walk hops short while shrinking the hot set of
            // bucket headers 4x (then the bitmap skips the empties), and
            // it stretches one calendar lap past the live span so few
            // events sit a lap ahead of their bucket's scan day.
            let width = (4 * span / all.len() as u64).max(1).next_power_of_two();
            self.shift = width.trailing_zeros();
        }
        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        }
        self.occ.clear();
        self.occ.resize(nbuckets.div_ceil(64), 0);
        let mask = nbuckets as u64 - 1;
        self.min = all.last().map(|p| Min {
            at: p.at,
            bucket: ((p.at.as_micros() >> self.shift) & mask) as usize,
        });
        for p in all {
            let idx = ((p.at.as_micros() >> self.shift) & mask) as usize;
            self.occ[idx >> 6] |= 1u64 << (idx & 63);
            self.buckets[idx].push(p);
        }
    }
}

/// The previous `BinaryHeap`-backed implementation, kept as the ordering
/// oracle for the calendar queue's differential tests and as the baseline
/// of the `eventqueue` bench. Semantics are identical to [`EventQueue`]
/// (same clamp, same FIFO tiebreak, same clock behaviour).
pub struct BinaryHeapEventQueue<E> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<Pending<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for BinaryHeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapEventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at `at` (clamped to `now`, like [`EventQueue`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap
            .push(std::cmp::Reverse(Pending { at, seq, event }));
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let std::cmp::Reverse(p) = self.heap.pop()?;
        self.now = p.at;
        Some((p.at, p.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|std::cmp::Reverse(p)| p.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A(u32),
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), Ev::A(3));
        q.schedule(SimTime::from_micros(10), Ev::A(1));
        q.schedule(SimTime::from_micros(20), Ev::A(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![Ev::A(1), Ev::A(2), Ev::A(3)]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_micros(5), Ev::A(i));
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Ev::A(i) => i,
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(42), Ev::A(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(42));
    }

    /// Release-only: the debug build now *panics* on past scheduling (see
    /// the companion test below); the release clamp is the safety net.
    #[cfg(not(debug_assertions))]
    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), Ev::A(0));
        q.pop();
        q.schedule(SimTime::from_micros(10), Ev::A(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(100));
    }

    /// Regression (pre-fix code accepted this silently): scheduling into
    /// the past must fail fast in debug builds instead of letting virtual
    /// time run backwards.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), Ev::A(0));
        q.pop();
        q.schedule(SimTime::from_micros(10), Ev::A(1));
    }

    /// Regression for the time-travel bug: whatever the push sequence —
    /// including attempts to schedule behind the clock — `now()` must be
    /// monotone across pops. (Release builds clamp; this pins that the
    /// clamp actually protects the clock.)
    #[test]
    fn clock_is_monotone_across_any_push_sequence() {
        // Deterministic pseudo-random interleaving (splitmix64); the
        // richer generator-driven suite lives in
        // tests/eventqueue_properties.rs.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for round in 0..2_000u64 {
            // Mostly future times; occasionally an absolute time that may
            // lie behind the clock (exercising the clamp, release-mode).
            let at = if cfg!(debug_assertions) {
                q.now() + SimDuration::from_micros(next() % 5_000)
            } else {
                SimTime::from_micros(next() % (q.now().as_micros() + 5_000))
            };
            q.schedule(at, Ev::A(round as u32));
            if next() % 3 != 0 {
                if let Some((t, _)) = q.pop() {
                    assert!(t >= last, "clock went backwards: {t:?} after {last:?}");
                    assert_eq!(q.now(), t);
                    last = t;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), Ev::A(0));
        q.pop();
        q.schedule_after(SimDuration::from_micros(50), Ev::A(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(150));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), Ev::A(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_tracks_min_through_interleaved_ops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(50), Ev::A(0));
        q.schedule(SimTime::from_micros(20), Ev::A(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
        // Equal-time push must not displace the cached min (FIFO).
        q.schedule(SimTime::from_micros(20), Ev::A(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(Ev::A(1)));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
        assert_eq!(q.pop().map(|(_, e)| e), Some(Ev::A(2)));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(50)));
        assert_eq!(q.pop().map(|(_, e)| e), Some(Ev::A(0)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn survives_growth_and_shrink_rebuilds() {
        // Push far past the grow threshold (16 buckets × 2) with a wide
        // time spread, then drain past the shrink threshold; order must
        // stay exact throughout.
        let mut q = EventQueue::new();
        let mut expect: Vec<u64> = Vec::new();
        for i in 0..10_000u64 {
            // Deterministic scatter over ~10^7 µs with duplicate times.
            let t = (i.wrapping_mul(2654435761) % 9_999_991) / 3;
            q.schedule(SimTime::from_micros(t), Ev::A(i as u32));
            expect.push(t);
        }
        expect.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(got, expect);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn binary_heap_oracle_matches_on_a_smoke_sequence() {
        let mut a = EventQueue::new();
        let mut b = BinaryHeapEventQueue::new();
        for i in 0..500u64 {
            // max(now) keeps the sequence causal once pops advance the
            // clock — past scheduling is its own (debug-panic) test.
            let t = SimTime::from_micros((i * 37) % 1000).max(a.now());
            a.schedule(t, Ev::A(i as u32));
            b.schedule(t, Ev::A(i as u32));
            if i % 3 == 0 {
                assert_eq!(a.peek_time(), b.peek_time());
                assert_eq!(a.pop(), b.pop());
                assert_eq!(a.now(), b.now());
            }
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
