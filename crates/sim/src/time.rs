//! Virtual time: microsecond-resolution instants and durations.
//!
//! All simulation components share this clock. Using integer microseconds
//! (rather than `f64` seconds) keeps event ordering exact and the simulation
//! deterministic across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is
    /// actually later (callers comparing measurements across intervals).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds (rounds to µs).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and >= 0"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimTime difference");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration difference");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(
            rhs >= 0.0 && rhs.is_finite(),
            "scale must be finite and >= 0"
        );
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        assert_eq!(
            SimDuration::from_millis(100) * 3,
            SimDuration::from_millis(300)
        );
        assert_eq!(
            SimDuration::from_millis(100) * 2.5,
            SimDuration::from_millis(250)
        );
        assert_eq!(
            SimDuration::from_millis(300) / 3,
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn saturating_sub() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "0.042s");
    }
}
