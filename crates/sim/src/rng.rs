//! Deterministic random number generation and the distribution samplers the
//! workload models need.
//!
//! The generator is xoshiro256++ seeded via SplitMix64, implemented locally
//! so the simulation kernel has zero dependencies and identical streams on
//! every platform. [`SimRng::split`] derives independent child streams so
//! each client session / query class can own its own generator without
//! cross-talk between components.

/// A small, fast, deterministic PRNG (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child stream, keyed by `stream`.
    ///
    /// Children with distinct keys (or from distinct parents) produce
    /// uncorrelated sequences; reordering draws in one component does not
    /// perturb another.
    pub fn split(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponential variate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u = 1.0 - self.f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// A standard normal variate (Box–Muller; one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Samples an index from explicit (unnormalised) weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// A Zipf(n, s) sampler over `{1, …, n}` using Hörmann's
/// rejection-inversion method: O(1) per sample, no O(n) table.
///
/// Database workloads are classically modelled with Zipfian access skew
/// (popular items dominate); the TPC-W and RUBiS models use this for item,
/// customer and auction popularity.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Acceptance-shortcut constant: `2 - hIntegralInv(hIntegral(2.5) - h(2))`.
    accept: f64,
    /// `hIntegral(1.5) - 1` — upper end of the inversion interval.
    h_integral_x1: f64,
    /// `hIntegral(n + 0.5)` — lower end of the inversion interval.
    h_integral_n: f64,
}

impl Zipf {
    /// Creates a sampler over `{1, …, n}` with exponent `s > 0`, `s != 1`
    /// handled via the generalised harmonic integral.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf support must be non-empty");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut z = Zipf {
            n,
            s,
            accept: 0.0,
            h_integral_x1: 0.0,
            h_integral_n: 0.0,
        };
        z.h_integral_x1 = z.h_integral(1.5) - 1.0;
        z.h_integral_n = z.h_integral(n as f64 + 0.5);
        z.accept = 2.0 - z.h_integral_inv(z.h_integral(2.5) - z.h(2.0));
        z
    }

    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        if (1.0 - self.s).abs() < 1e-12 {
            log_x
        } else {
            ((1.0 - self.s) * log_x).exp_m1() / (1.0 - self.s)
        }
    }

    fn h_integral_inv(&self, x: f64) -> f64 {
        if (1.0 - self.s).abs() < 1e-12 {
            x.exp()
        } else {
            let t = x * (1.0 - self.s);
            // Clamp: for s > 1 the integral is bounded; numerical drift can
            // push t slightly below -1.
            let t = t.max(-1.0 + 1e-15);
            (t.ln_1p() / (1.0 - self.s)).exp()
        }
    }

    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    /// Draws a rank in `{1, …, n}`; rank 1 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_integral_n + rng.f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let k_u = k as u64;
            if k - x <= self.accept || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k_u;
            }
        }
    }

    /// The support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let parent = SimRng::new(42);
        let mut c1 = parent.split(1);
        let mut parent2 = SimRng::new(42);
        parent2.next_u64(); // consuming the parent after split must not matter
        let mut c1_again = parent.split(1);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c1_again.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::new(6);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = SimRng::new(8);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[rng.weighted(&[1.0, 2.0, 6.0])] += 1;
        }
        assert!((counts[0] as f64 / 90_000.0 - 1.0 / 9.0).abs() < 0.01);
        assert!((counts[2] as f64 / 90_000.0 - 6.0 / 9.0).abs() < 0.01);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = SimRng::new(9);
        let z = Zipf::new(1000, 1.0);
        let mut c1 = 0u32;
        let mut c100 = 0u32;
        let n = 100_000;
        for _ in 0..n {
            match z.sample(&mut rng) {
                1 => c1 += 1,
                100 => c100 += 1,
                _ => {}
            }
        }
        // P(1)/P(100) = 100 under s=1.
        assert!(c1 > 30 * c100.max(1), "c1={c1} c100={c100}");
    }

    #[test]
    fn zipf_stays_in_support() {
        let mut rng = SimRng::new(10);
        for &s in &[0.5, 0.99, 1.0, 1.2, 2.0] {
            let z = Zipf::new(50, s);
            for _ in 0..10_000 {
                let k = z.sample(&mut rng);
                assert!((1..=50).contains(&k), "s={s} k={k}");
            }
        }
    }

    #[test]
    fn zipf_matches_exact_pmf_for_small_n() {
        let mut rng = SimRng::new(12);
        let n = 10u64;
        let s = 1.0;
        let z = Zipf::new(n, s);
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let draws = 200_000;
        let mut counts = vec![0u32; n as usize + 1];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in 1..=n {
            let p = (k as f64).powf(-s) / norm;
            let observed = counts[k as usize] as f64 / draws as f64;
            assert!(
                (observed - p).abs() < 0.01,
                "k={k} expected {p:.4} observed {observed:.4}"
            );
        }
    }

    #[test]
    fn zipf_single_element() {
        let mut rng = SimRng::new(13);
        let z = Zipf::new(1, 1.0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }
}
