//! # odlb-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under every experiment in this repository. The paper's
//! evaluation ran on a physical cluster; we reproduce its dynamics on a
//! deterministic discrete-event simulator so that every figure and table can
//! be regenerated bit-for-bit from a seed.
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution virtual clock.
//! * [`EventQueue`] — a stable (FIFO within equal timestamps) priority queue
//!   of user-defined events.
//! * [`rng::SimRng`] — a seeded, splittable PRNG plus the samplers the
//!   workload models need (uniform, exponential, Zipf, Gaussian).
//! * [`station::Station`] — a multi-server FCFS queueing station used to
//!   model CPU sockets and disks. Latency under load emerges from queueing
//!   at these stations, exactly the mechanism behind the paper's CPU
//!   saturation and I/O interference scenarios.
//! * [`stats`] — online statistics (Welford mean/variance, percentiles,
//!   time-series recorders) used by the measurement layer.
//!
//! ```
//! use odlb_sim::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), Ev::Tick(1));
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(2), Ev::Tick(0));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_micros(2_000));
//! assert_eq!(ev, Ev::Tick(0));
//! ```

pub mod rng;
pub mod station;
pub mod stats;
pub mod time;

pub use rng::SimRng;
pub use station::Station;
pub use time::{SimDuration, SimTime};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: fire time plus an insertion sequence number used to keep
/// ordering stable (FIFO) among events scheduled for the same instant.
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic event queue over a user-defined event type.
///
/// Events scheduled for the same [`SimTime`] are delivered in the order they
/// were scheduled, which keeps multi-component simulations reproducible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Pending<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last popped event, or
    /// zero before the first pop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the kernel
    /// clamps it to `now` rather than time-travelling, so causality holds.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Pending { at, seq, event }));
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(p) = self.heap.pop()?;
        debug_assert!(p.at >= self.now, "event queue went back in time");
        self.now = p.at;
        Some((p.at, p.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(p)| p.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A(u32),
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), Ev::A(3));
        q.schedule(SimTime::from_micros(10), Ev::A(1));
        q.schedule(SimTime::from_micros(20), Ev::A(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![Ev::A(1), Ev::A(2), Ev::A(3)]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_micros(5), Ev::A(i));
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Ev::A(i) => i,
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(42), Ev::A(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(42));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), Ev::A(0));
        q.pop();
        q.schedule(SimTime::from_micros(10), Ev::A(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(100));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), Ev::A(0));
        q.pop();
        q.schedule_after(SimDuration::from_micros(50), Ev::A(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(150));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), Ev::A(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
