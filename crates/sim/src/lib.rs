//! # odlb-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under every experiment in this repository. The paper's
//! evaluation ran on a physical cluster; we reproduce its dynamics on a
//! deterministic discrete-event simulator so that every figure and table can
//! be regenerated bit-for-bit from a seed.
//!
//! The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution virtual clock.
//! * [`EventQueue`] — a stable (FIFO within equal timestamps) calendar
//!   queue of user-defined events: O(1) push/pop at steady state, with
//!   the previous binary-heap implementation retained as
//!   [`BinaryHeapEventQueue`] — the differential-test oracle and bench
//!   baseline.
//! * [`rng::SimRng`] — a seeded, splittable PRNG plus the samplers the
//!   workload models need (uniform, exponential, Zipf, Gaussian).
//! * [`station::Station`] — a multi-server FCFS queueing station used to
//!   model CPU sockets and disks. Latency under load emerges from queueing
//!   at these stations, exactly the mechanism behind the paper's CPU
//!   saturation and I/O interference scenarios.
//! * [`stats`] — online statistics (Welford mean/variance, percentiles,
//!   time-series recorders) used by the measurement layer.
//!
//! ```
//! use odlb_sim::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), Ev::Tick(1));
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(2), Ev::Tick(0));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_micros(2_000));
//! assert_eq!(ev, Ev::Tick(0));
//! ```

pub mod queue;
pub mod rng;
pub mod station;
pub mod stats;
pub mod time;

pub use queue::{BinaryHeapEventQueue, EventQueue};
pub use rng::SimRng;
pub use station::Station;
pub use time::{SimDuration, SimTime};
