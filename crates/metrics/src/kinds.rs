//! The monitored metric kinds and the fixed-width vector carrying them.
//!
//! §3.3: "we track the latency, throughput, buffer pool misses, the number
//! of page accesses, the I/O block requests, the number of prefetch
//! (read-ahead) requests … issued by the DBMS on behalf of the queries
//! belonging to each specific query class."

use std::fmt;
use std::ops::{Index, IndexMut};

/// One monitored per-class metric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MetricKind {
    /// Mean query latency over the interval (seconds).
    Latency,
    /// Completed queries per second over the interval.
    Throughput,
    /// Buffer pool misses over the interval.
    BufferMisses,
    /// Buffer pool page accesses over the interval.
    PageAccesses,
    /// Block read requests issued to the I/O layer over the interval.
    IoRequests,
    /// Read-ahead (prefetch) requests issued over the interval.
    ReadAheads,
    /// Seconds spent waiting on row/page locks over the interval. Not in
    /// the paper's §3.3 metric list; added for its §7 future work
    /// ("outlier detection is a promising approach for narrowing down …
    /// lock contention or deadlock situations").
    LockWaits,
}

/// All metric kinds, in vector order.
pub const METRIC_KINDS: [MetricKind; 7] = [
    MetricKind::Latency,
    MetricKind::Throughput,
    MetricKind::BufferMisses,
    MetricKind::PageAccesses,
    MetricKind::IoRequests,
    MetricKind::ReadAheads,
    MetricKind::LockWaits,
];

impl MetricKind {
    /// Position in a [`MetricVector`].
    pub const fn index(self) -> usize {
        match self {
            MetricKind::Latency => 0,
            MetricKind::Throughput => 1,
            MetricKind::BufferMisses => 2,
            MetricKind::PageAccesses => 3,
            MetricKind::IoRequests => 4,
            MetricKind::ReadAheads => 5,
            MetricKind::LockWaits => 6,
        }
    }

    /// True for the metrics the memory-interference diagnosis inspects
    /// (§3.3.2: "memory related counters, e.g. miss ratio and page access
    /// counts" and read-ahead).
    pub const fn is_memory_related(self) -> bool {
        matches!(
            self,
            MetricKind::BufferMisses | MetricKind::PageAccesses | MetricKind::ReadAheads
        )
    }

    /// True for metrics where *larger is worse* (deviation above stable
    /// indicates trouble). Throughput is the exception: lower is worse.
    pub const fn higher_is_worse(self) -> bool {
        !matches!(self, MetricKind::Throughput)
    }

    /// Short column label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            MetricKind::Latency => "latency",
            MetricKind::Throughput => "throughput",
            MetricKind::BufferMisses => "misses",
            MetricKind::PageAccesses => "accesses",
            MetricKind::IoRequests => "io_reqs",
            MetricKind::ReadAheads => "readahead",
            MetricKind::LockWaits => "lock_wait",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A value for every metric kind, in [`METRIC_KINDS`] order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricVector(pub [f64; 7]);

impl MetricVector {
    /// An all-zero vector.
    pub const ZERO: MetricVector = MetricVector([0.0; 7]);

    /// Builds a vector by evaluating `f` for every kind.
    pub fn from_fn(mut f: impl FnMut(MetricKind) -> f64) -> Self {
        let mut v = MetricVector::ZERO;
        for k in METRIC_KINDS {
            v[k] = f(k);
        }
        v
    }

    /// Iterates `(kind, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MetricKind, f64)> + '_ {
        METRIC_KINDS.iter().map(move |&k| (k, self[k]))
    }

    /// Element-wise ratio `self / stable`, the first step of the paper's
    /// impact computation. A zero stable value with a non-zero current
    /// value yields `ratio_cap` (a genuinely new behaviour is maximally
    /// deviant); zero over zero yields 1 (no deviation).
    pub fn ratio_to(&self, stable: &MetricVector, ratio_cap: f64) -> MetricVector {
        MetricVector::from_fn(|k| {
            let cur = self[k];
            let st = stable[k];
            if st.abs() < 1e-12 {
                if cur.abs() < 1e-12 {
                    1.0
                } else {
                    ratio_cap
                }
            } else {
                (cur / st).min(ratio_cap)
            }
        })
    }
}

impl Index<MetricKind> for MetricVector {
    type Output = f64;
    fn index(&self, k: MetricKind) -> &f64 {
        &self.0[k.index()]
    }
}

impl IndexMut<MetricKind> for MetricVector {
    fn index_mut(&mut self, k: MetricKind) -> &mut f64 {
        &mut self.0[k.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_a_permutation() {
        let mut seen = [false; 7];
        for k in METRIC_KINDS {
            assert!(!seen[k.index()], "duplicate index");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn memory_related_set_matches_paper() {
        assert!(MetricKind::BufferMisses.is_memory_related());
        assert!(MetricKind::PageAccesses.is_memory_related());
        assert!(MetricKind::ReadAheads.is_memory_related());
        assert!(!MetricKind::Latency.is_memory_related());
        assert!(!MetricKind::Throughput.is_memory_related());
        assert!(!MetricKind::IoRequests.is_memory_related());
        assert!(!MetricKind::LockWaits.is_memory_related());
    }

    #[test]
    fn vector_from_fn_and_index() {
        let v = MetricVector::from_fn(|k| k.index() as f64);
        assert_eq!(v[MetricKind::Latency], 0.0);
        assert_eq!(v[MetricKind::ReadAheads], 5.0);
        assert_eq!(v[MetricKind::LockWaits], 6.0);
        assert_eq!(v.iter().count(), 7);
    }

    #[test]
    fn ratio_handles_zero_stable_values() {
        let mut cur = MetricVector::ZERO;
        let mut stable = MetricVector::ZERO;
        cur[MetricKind::Latency] = 2.0;
        stable[MetricKind::Latency] = 1.0;
        cur[MetricKind::BufferMisses] = 5.0; // stable 0: new behaviour
        let r = cur.ratio_to(&stable, 100.0);
        assert_eq!(r[MetricKind::Latency], 2.0);
        assert_eq!(r[MetricKind::BufferMisses], 100.0);
        assert_eq!(r[MetricKind::Throughput], 1.0, "0/0 is 'no deviation'");
    }

    #[test]
    fn ratio_is_capped() {
        let mut cur = MetricVector::ZERO;
        let mut stable = MetricVector::ZERO;
        cur[MetricKind::Latency] = 1e9;
        stable[MetricKind::Latency] = 1.0;
        let r = cur.ratio_to(&stable, 50.0);
        assert_eq!(r[MetricKind::Latency], 50.0);
    }

    #[test]
    fn throughput_direction_is_inverted() {
        assert!(!MetricKind::Throughput.higher_is_worse());
        assert!(MetricKind::Latency.higher_is_worse());
    }
}
