//! Per-class windows of recent page accesses.
//!
//! §3.3 tracks "a window of the most recent page accesses issued by the
//! DBMS on behalf of the queries belonging to each specific query class".
//! The window is the input to on-demand MRC recomputation: when a class's
//! memory counters look like outliers, the controller replays the window
//! through a Mattson tracker to re-derive the class's MRC parameters.

use crate::ids::ClassId;
use odlb_mrc::{compute_curve, MissRatioCurve, MrcMode};
use odlb_storage::PageId;
use std::collections::{BTreeMap, VecDeque};

/// A bounded ring of recent page accesses for one query class.
#[derive(Clone, Debug)]
pub struct AccessWindow {
    pages: VecDeque<PageId>,
    capacity: usize,
    /// Total accesses ever observed (including those that fell out).
    observed: u64,
}

impl AccessWindow {
    /// Creates a window retaining the most recent `capacity` accesses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "window must retain at least one access");
        AccessWindow {
            pages: VecDeque::with_capacity(capacity),
            capacity,
            observed: 0,
        }
    }

    /// Records one page access.
    pub fn push(&mut self, page: PageId) {
        if self.pages.len() == self.capacity {
            self.pages.pop_front();
        }
        self.pages.push_back(page);
        self.observed += 1;
    }

    /// Accesses currently retained.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total accesses ever observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Iterates retained accesses oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages.iter().copied()
    }

    /// Replays the window through Mattson's algorithm, yielding the
    /// class's current miss ratio curve tracked up to `cap_pages`.
    pub fn compute_mrc(&self, cap_pages: usize) -> MissRatioCurve {
        self.compute_mrc_with(MrcMode::Exact, cap_pages)
    }

    /// Replays the window through the tracker `mode` selects — exact
    /// Mattson, geometric buckets, or SHARDS-style spatial sampling.
    /// `MrcMode::Exact` is byte-identical to [`AccessWindow::compute_mrc`].
    pub fn compute_mrc_with(&self, mode: MrcMode, cap_pages: usize) -> MissRatioCurve {
        compute_curve(mode, cap_pages, self.iter())
    }
}

/// The per-class window registry for one server's engine.
#[derive(Clone, Debug)]
pub struct WindowRegistry {
    capacity_per_class: usize,
    windows: BTreeMap<ClassId, AccessWindow>,
}

impl WindowRegistry {
    /// Creates a registry whose windows each retain `capacity_per_class`
    /// accesses.
    pub fn new(capacity_per_class: usize) -> Self {
        WindowRegistry {
            capacity_per_class,
            windows: BTreeMap::new(),
        }
    }

    /// Records an access for a class, creating its window on first sight.
    pub fn push(&mut self, class: ClassId, page: PageId) {
        self.windows
            .entry(class)
            .or_insert_with(|| AccessWindow::new(self.capacity_per_class))
            .push(page);
    }

    /// The window for `class`, if it has been seen.
    pub fn get(&self, class: ClassId) -> Option<&AccessWindow> {
        self.windows.get(&class)
    }

    /// Drops a class's window (class re-placed elsewhere).
    pub fn forget(&mut self, class: ClassId) {
        self.windows.remove(&class);
    }

    /// Classes with live windows, in ascending order (`windows` is a
    /// `BTreeMap`, so its key order is already sorted).
    pub fn classes(&self) -> Vec<ClassId> {
        self.windows.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;
    use odlb_storage::SpaceId;

    fn pid(no: u64) -> PageId {
        PageId::new(SpaceId(0), no)
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = AccessWindow::new(3);
        for i in 0..5 {
            w.push(pid(i));
        }
        let kept: Vec<u64> = w.iter().map(|p| p.page_no).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(w.observed(), 5);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn mrc_from_window_matches_pattern() {
        // Cyclic access over 8 pages: MRC steps to the floor at 8 pages.
        let mut w = AccessWindow::new(1000);
        for i in 0..800u64 {
            w.push(pid(i % 8));
        }
        let curve = w.compute_mrc(64);
        assert!(curve.miss_ratio(7) > 0.9);
        assert!(curve.miss_ratio(8) < 0.02);
    }

    #[test]
    fn mode_dispatch_exact_is_default_and_sampled_sees_the_knee() {
        let mut w = AccessWindow::new(10_000);
        for i in 0..8_000u64 {
            w.push(pid(i % 64));
        }
        let exact = w.compute_mrc_with(MrcMode::Exact, 256);
        assert_eq!(exact, w.compute_mrc(256), "Exact mode is the default path");
        let sampled = w.compute_mrc_with(MrcMode::Sampled { rate: 0.25 }, 256);
        // The loop knee at 64 pages survives sampling: distances of the
        // ~16 sampled keys rescale back to ~64 (binomial wobble allowed).
        assert!(sampled.miss_ratio(24) > 0.9);
        assert!(sampled.miss_ratio(128) < 0.1);
    }

    #[test]
    fn registry_keys_by_class() {
        let mut reg = WindowRegistry::new(10);
        let c1 = ClassId::new(AppId(0), 1);
        let c2 = ClassId::new(AppId(0), 2);
        reg.push(c1, pid(1));
        reg.push(c2, pid(2));
        reg.push(c1, pid(3));
        assert_eq!(reg.get(c1).unwrap().len(), 2);
        assert_eq!(reg.get(c2).unwrap().len(), 1);
        assert_eq!(reg.classes(), vec![c1, c2]);
        reg.forget(c1);
        assert!(reg.get(c1).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_capacity_rejected() {
        AccessWindow::new(0);
    }
}
