//! Per-server, per-class interval accumulation.
//!
//! One [`ClassStatsCollector`] lives beside each database engine (the
//! paper's "log analyzer, one per database system"). The engine forwards
//! flushed [`QueryLogRecord`] batches; at the end of each measurement
//! interval the decision manager closes the interval and receives an
//! [`IntervalReport`] — a per-class [`MetricVector`] of interval averages
//! and rates, exactly the operand of outlier detection.

use crate::ids::ClassId;
use crate::kinds::{MetricKind, MetricVector};
use crate::logbuf::QueryLogRecord;
use odlb_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Clone, Debug, Default)]
struct ClassAccumulator {
    queries: u64,
    latency_sum: SimDuration,
    page_accesses: u64,
    buffer_misses: u64,
    io_requests: u64,
    readaheads: u64,
    lock_wait_sum: SimDuration,
}

/// Accumulates per-class statistics within the current measurement
/// interval.
#[derive(Clone, Debug)]
pub struct ClassStatsCollector {
    interval_start: SimTime,
    per_class: BTreeMap<ClassId, ClassAccumulator>,
}

/// The closed interval's per-class metric vectors.
#[derive(Clone, Debug)]
pub struct IntervalReport {
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
    /// Interval metrics per class observed during the interval, ordered
    /// by class for deterministic aggregation.
    pub per_class: BTreeMap<ClassId, MetricVector>,
}

impl IntervalReport {
    /// Mean latency (seconds) across all queries of `app`'s classes,
    /// weighted by per-class query counts — the SLA operand.
    pub fn app_mean_latency(&self, app: crate::ids::AppId) -> Option<f64> {
        let mut lat_weighted = 0.0;
        let mut queries = 0.0;
        for (class, v) in &self.per_class {
            if class.app == app {
                let tput = v[MetricKind::Throughput];
                let duration = self.end.since(self.start).as_secs_f64();
                let n = tput * duration;
                lat_weighted += v[MetricKind::Latency] * n;
                queries += n;
            }
        }
        if queries < 1e-9 {
            None
        } else {
            Some(lat_weighted / queries)
        }
    }

    /// Total throughput (queries/s) across all of `app`'s classes.
    pub fn app_throughput(&self, app: crate::ids::AppId) -> f64 {
        self.per_class
            .iter()
            .filter(|(c, _)| c.app == app)
            .map(|(_, v)| v[MetricKind::Throughput])
            .sum()
    }

    /// Classes observed this interval, in ascending order (`per_class`
    /// is a `BTreeMap`, so its key order is already sorted).
    pub fn classes(&self) -> Vec<ClassId> {
        self.per_class.keys().copied().collect()
    }
}

impl ClassStatsCollector {
    /// Creates a collector whose first interval opens at `start`.
    pub fn new(start: SimTime) -> Self {
        ClassStatsCollector {
            interval_start: start,
            per_class: BTreeMap::new(),
        }
    }

    /// Ingests one completed-query record.
    pub fn record(&mut self, r: &QueryLogRecord) {
        let acc = self.per_class.entry(r.class).or_default();
        acc.queries += 1;
        acc.latency_sum += r.latency;
        acc.page_accesses += r.page_accesses;
        acc.buffer_misses += r.buffer_misses;
        acc.io_requests += r.io_requests;
        acc.readaheads += r.readaheads;
        acc.lock_wait_sum += r.lock_wait;
    }

    /// Ingests a flushed batch.
    pub fn record_batch(&mut self, batch: &[QueryLogRecord]) {
        for r in batch {
            self.record(r);
        }
    }

    /// Number of queries observed for `class` in the open interval.
    pub fn queries_for(&self, class: ClassId) -> u64 {
        self.per_class.get(&class).map_or(0, |a| a.queries)
    }

    /// Closes the interval at `now`, returning per-class averages/rates
    /// and opening a fresh interval.
    pub fn close_interval(&mut self, now: SimTime) -> IntervalReport {
        let start = self.interval_start;
        let duration = now.since(start).as_secs_f64().max(1e-9);
        let mut per_class = BTreeMap::new();
        for (class, acc) in std::mem::take(&mut self.per_class) {
            if acc.queries == 0 {
                continue;
            }
            let mut v = MetricVector::ZERO;
            v[MetricKind::Latency] = acc.latency_sum.as_secs_f64() / acc.queries as f64;
            v[MetricKind::Throughput] = acc.queries as f64 / duration;
            v[MetricKind::BufferMisses] = acc.buffer_misses as f64;
            v[MetricKind::PageAccesses] = acc.page_accesses as f64;
            v[MetricKind::IoRequests] = acc.io_requests as f64;
            v[MetricKind::ReadAheads] = acc.readaheads as f64;
            v[MetricKind::LockWaits] = acc.lock_wait_sum.as_secs_f64();
            per_class.insert(class, v);
        }
        self.interval_start = now;
        IntervalReport {
            start,
            end: now,
            per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;

    fn rec(app: u32, template: u32, latency_ms: u64, accesses: u64, misses: u64) -> QueryLogRecord {
        QueryLogRecord {
            class: ClassId::new(AppId(app), template),
            completed_at: SimTime::from_secs(5),
            latency: SimDuration::from_millis(latency_ms),
            page_accesses: accesses,
            buffer_misses: misses,
            io_requests: misses,
            readaheads: 0,
            lock_wait: SimDuration::ZERO,
        }
    }

    #[test]
    fn interval_averages_and_rates() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 10, 2));
        c.record(&rec(0, 1, 300, 30, 4));
        let report = c.close_interval(SimTime::from_secs(10));
        let v = report.per_class[&ClassId::new(AppId(0), 1)];
        assert!(
            (v[MetricKind::Latency] - 0.2).abs() < 1e-9,
            "mean of 0.1/0.3"
        );
        assert!((v[MetricKind::Throughput] - 0.2).abs() < 1e-9, "2 in 10s");
        assert_eq!(v[MetricKind::PageAccesses], 40.0);
        assert_eq!(v[MetricKind::BufferMisses], 6.0);
    }

    #[test]
    fn closing_resets_for_next_interval() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        c.close_interval(SimTime::from_secs(10));
        let empty = c.close_interval(SimTime::from_secs(20));
        assert!(empty.per_class.is_empty());
        assert_eq!(empty.start, SimTime::from_secs(10));
        assert_eq!(empty.end, SimTime::from_secs(20));
    }

    #[test]
    fn classes_are_separate() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        c.record(&rec(0, 2, 500, 9, 3));
        c.record(&rec(1, 1, 900, 5, 5));
        let report = c.close_interval(SimTime::from_secs(1));
        assert_eq!(report.per_class.len(), 3);
        assert_eq!(
            report.classes(),
            vec![
                ClassId::new(AppId(0), 1),
                ClassId::new(AppId(0), 2),
                ClassId::new(AppId(1), 1)
            ]
        );
    }

    #[test]
    fn app_mean_latency_weights_by_query_count() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        // Class 1: 3 queries at 100ms. Class 2: 1 query at 500ms.
        for _ in 0..3 {
            c.record(&rec(0, 1, 100, 1, 0));
        }
        c.record(&rec(0, 2, 500, 1, 0));
        let report = c.close_interval(SimTime::from_secs(10));
        let mean = report.app_mean_latency(AppId(0)).unwrap();
        assert!(
            (mean - 0.2).abs() < 1e-9,
            "(3*0.1 + 0.5)/4 = 0.2, got {mean}"
        );
        assert!(report.app_mean_latency(AppId(9)).is_none());
    }

    #[test]
    fn app_throughput_sums_classes() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        c.record(&rec(0, 2, 100, 1, 0));
        c.record(&rec(1, 1, 100, 1, 0));
        let report = c.close_interval(SimTime::from_secs(1));
        assert!((report.app_throughput(AppId(0)) - 2.0).abs() < 1e-9);
        assert!((report.app_throughput(AppId(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_recording() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        let batch = vec![rec(0, 1, 100, 1, 0), rec(0, 1, 100, 1, 0)];
        c.record_batch(&batch);
        assert_eq!(c.queries_for(ClassId::new(AppId(0), 1)), 2);
    }
}
