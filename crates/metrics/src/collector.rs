//! Per-server, per-class interval accumulation.
//!
//! One [`ClassStatsCollector`] lives beside each database engine (the
//! paper's "log analyzer, one per database system"). The engine forwards
//! flushed [`QueryLogRecord`] batches; at the end of each measurement
//! interval the decision manager closes the interval and receives an
//! [`IntervalReport`] — a per-class [`MetricVector`] of interval averages
//! and rates, exactly the operand of outlier detection.
//!
//! Besides the averages, each class's latency distribution is kept in a
//! mergeable [`LogLinearHistogram`] (O(1) record, no retained samples,
//! rank error below 0.8% at the default grouping power), so interval
//! reports expose tail quantiles — per class and merged per application
//! — without the hot path ever holding per-query samples.

use crate::ids::ClassId;
use crate::kinds::{MetricKind, MetricVector};
use crate::logbuf::QueryLogRecord;
use odlb_sim::{SimDuration, SimTime};
use odlb_telemetry::LogLinearHistogram;
use std::collections::BTreeMap;

#[derive(Clone, Debug, Default)]
struct ClassAccumulator {
    queries: u64,
    latency_sum: SimDuration,
    latency_hist: LogLinearHistogram,
    page_accesses: u64,
    buffer_misses: u64,
    io_requests: u64,
    readaheads: u64,
    lock_wait_sum: SimDuration,
}

/// Accumulates per-class statistics within the current measurement
/// interval.
#[derive(Clone, Debug)]
pub struct ClassStatsCollector {
    interval_start: SimTime,
    per_class: BTreeMap<ClassId, ClassAccumulator>,
}

/// The closed interval's per-class metric vectors.
#[derive(Clone, Debug)]
pub struct IntervalReport {
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
    /// Interval metrics per class observed during the interval, ordered
    /// by class for deterministic aggregation.
    pub per_class: BTreeMap<ClassId, MetricVector>,
    /// Latency distribution (simulated microseconds) per class for this
    /// interval. Same key set as `per_class`; histograms merge across
    /// classes and replicas for application-level tails.
    pub latency_histograms: BTreeMap<ClassId, LogLinearHistogram>,
}

impl IntervalReport {
    /// Mean latency (seconds) across all queries of `app`'s classes,
    /// weighted by per-class query counts — the SLA operand.
    pub fn app_mean_latency(&self, app: crate::ids::AppId) -> Option<f64> {
        let mut lat_weighted = 0.0;
        let mut queries = 0.0;
        for (class, v) in &self.per_class {
            if class.app == app {
                let tput = v[MetricKind::Throughput];
                let duration = self.end.since(self.start).as_secs_f64();
                let n = tput * duration;
                lat_weighted += v[MetricKind::Latency] * n;
                queries += n;
            }
        }
        if queries < 1e-9 {
            None
        } else {
            Some(lat_weighted / queries)
        }
    }

    /// Total throughput (queries/s) across all of `app`'s classes.
    pub fn app_throughput(&self, app: crate::ids::AppId) -> f64 {
        self.per_class
            .iter()
            .filter(|(c, _)| c.app == app)
            .map(|(_, v)| v[MetricKind::Throughput])
            .sum()
    }

    /// Classes observed this interval, in ascending order (`per_class`
    /// is a `BTreeMap`, so its key order is already sorted).
    pub fn classes(&self) -> Vec<ClassId> {
        self.per_class.keys().copied().collect()
    }

    /// Latency quantile (simulated microseconds) of one class this
    /// interval — e.g. `q = 0.95` for p95. `None` when the class saw no
    /// queries. Histogram-estimated: the value is within 0.8% rank
    /// error of the exact order statistic.
    pub fn class_latency_quantile(&self, class: ClassId, q: f64) -> Option<u64> {
        self.latency_histograms.get(&class)?.quantile(q)
    }

    /// Latency quantile (simulated microseconds) across all of `app`'s
    /// classes this interval, from the merged per-class histograms —
    /// the distribution the paper's per-application SLA is judged
    /// against. `None` when the app saw no queries.
    pub fn app_latency_quantile(&self, app: crate::ids::AppId, q: f64) -> Option<u64> {
        let mut merged: Option<LogLinearHistogram> = None;
        for (class, hist) in &self.latency_histograms {
            if class.app == app {
                merged
                    .get_or_insert_with(LogLinearHistogram::default)
                    .merge(hist);
            }
        }
        merged?.quantile(q)
    }
}

impl ClassStatsCollector {
    /// Creates a collector whose first interval opens at `start`.
    pub fn new(start: SimTime) -> Self {
        ClassStatsCollector {
            interval_start: start,
            per_class: BTreeMap::new(),
        }
    }

    /// Ingests one completed-query record.
    pub fn record(&mut self, r: &QueryLogRecord) {
        let acc = self.per_class.entry(r.class).or_default();
        acc.queries += 1;
        acc.latency_sum += r.latency;
        acc.latency_hist.record(r.latency.as_micros());
        acc.page_accesses += r.page_accesses;
        acc.buffer_misses += r.buffer_misses;
        acc.io_requests += r.io_requests;
        acc.readaheads += r.readaheads;
        acc.lock_wait_sum += r.lock_wait;
    }

    /// Ingests a flushed batch.
    pub fn record_batch(&mut self, batch: &[QueryLogRecord]) {
        for r in batch {
            self.record(r);
        }
    }

    /// Number of queries observed for `class` in the open interval.
    pub fn queries_for(&self, class: ClassId) -> u64 {
        self.per_class.get(&class).map_or(0, |a| a.queries)
    }

    /// Closes the interval at `now`, returning per-class averages/rates
    /// and opening a fresh interval.
    pub fn close_interval(&mut self, now: SimTime) -> IntervalReport {
        let start = self.interval_start;
        let duration = now.since(start).as_secs_f64().max(1e-9);
        let mut per_class = BTreeMap::new();
        let mut latency_histograms = BTreeMap::new();
        for (class, acc) in std::mem::take(&mut self.per_class) {
            if acc.queries == 0 {
                continue;
            }
            let mut v = MetricVector::ZERO;
            v[MetricKind::Latency] = acc.latency_sum.as_secs_f64() / acc.queries as f64;
            v[MetricKind::Throughput] = acc.queries as f64 / duration;
            v[MetricKind::BufferMisses] = acc.buffer_misses as f64;
            v[MetricKind::PageAccesses] = acc.page_accesses as f64;
            v[MetricKind::IoRequests] = acc.io_requests as f64;
            v[MetricKind::ReadAheads] = acc.readaheads as f64;
            v[MetricKind::LockWaits] = acc.lock_wait_sum.as_secs_f64();
            per_class.insert(class, v);
            latency_histograms.insert(class, acc.latency_hist);
        }
        self.interval_start = now;
        IntervalReport {
            start,
            end: now,
            per_class,
            latency_histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;

    fn rec(app: u32, template: u32, latency_ms: u64, accesses: u64, misses: u64) -> QueryLogRecord {
        QueryLogRecord {
            class: ClassId::new(AppId(app), template),
            completed_at: SimTime::from_secs(5),
            latency: SimDuration::from_millis(latency_ms),
            page_accesses: accesses,
            buffer_misses: misses,
            io_requests: misses,
            readaheads: 0,
            lock_wait: SimDuration::ZERO,
        }
    }

    #[test]
    fn interval_averages_and_rates() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 10, 2));
        c.record(&rec(0, 1, 300, 30, 4));
        let report = c.close_interval(SimTime::from_secs(10));
        let v = report.per_class[&ClassId::new(AppId(0), 1)];
        assert!(
            (v[MetricKind::Latency] - 0.2).abs() < 1e-9,
            "mean of 0.1/0.3"
        );
        assert!((v[MetricKind::Throughput] - 0.2).abs() < 1e-9, "2 in 10s");
        assert_eq!(v[MetricKind::PageAccesses], 40.0);
        assert_eq!(v[MetricKind::BufferMisses], 6.0);
    }

    #[test]
    fn closing_resets_for_next_interval() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        c.close_interval(SimTime::from_secs(10));
        let empty = c.close_interval(SimTime::from_secs(20));
        assert!(empty.per_class.is_empty());
        assert_eq!(empty.start, SimTime::from_secs(10));
        assert_eq!(empty.end, SimTime::from_secs(20));
    }

    #[test]
    fn classes_are_separate() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        c.record(&rec(0, 2, 500, 9, 3));
        c.record(&rec(1, 1, 900, 5, 5));
        let report = c.close_interval(SimTime::from_secs(1));
        assert_eq!(report.per_class.len(), 3);
        assert_eq!(
            report.classes(),
            vec![
                ClassId::new(AppId(0), 1),
                ClassId::new(AppId(0), 2),
                ClassId::new(AppId(1), 1)
            ]
        );
    }

    #[test]
    fn app_mean_latency_weights_by_query_count() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        // Class 1: 3 queries at 100ms. Class 2: 1 query at 500ms.
        for _ in 0..3 {
            c.record(&rec(0, 1, 100, 1, 0));
        }
        c.record(&rec(0, 2, 500, 1, 0));
        let report = c.close_interval(SimTime::from_secs(10));
        let mean = report.app_mean_latency(AppId(0)).unwrap();
        assert!(
            (mean - 0.2).abs() < 1e-9,
            "(3*0.1 + 0.5)/4 = 0.2, got {mean}"
        );
        assert!(report.app_mean_latency(AppId(9)).is_none());
    }

    #[test]
    fn app_throughput_sums_classes() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        c.record(&rec(0, 2, 100, 1, 0));
        c.record(&rec(1, 1, 100, 1, 0));
        let report = c.close_interval(SimTime::from_secs(1));
        assert!((report.app_throughput(AppId(0)) - 2.0).abs() < 1e-9);
        assert!((report.app_throughput(AppId(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interval_latency_quantiles_come_from_histograms() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        // 99 fast queries and one slow one: the mean hides the tail,
        // the histogram quantiles expose it.
        for _ in 0..99 {
            c.record(&rec(0, 1, 10, 1, 0));
        }
        c.record(&rec(0, 1, 2_000, 1, 0));
        let report = c.close_interval(SimTime::from_secs(10));
        let class = ClassId::new(AppId(0), 1);
        let p50 = report.class_latency_quantile(class, 0.5).unwrap();
        let p995 = report.class_latency_quantile(class, 0.995).unwrap();
        // 10ms = 10_000µs, 2s = 2_000_000µs; estimates are within the
        // histogram's 0.8% relative error.
        assert!((9_900..=10_100).contains(&p50), "p50 = {p50}");
        assert!(p995 >= 1_980_000, "p995 = {p995}");
        assert!(
            report
                .class_latency_quantile(ClassId::new(AppId(9), 0), 0.5)
                .is_none(),
            "unseen class has no distribution"
        );
    }

    #[test]
    fn app_quantile_merges_class_histograms() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        // Two classes of one app, one class of another.
        for _ in 0..10 {
            c.record(&rec(0, 1, 10, 1, 0));
        }
        for _ in 0..10 {
            c.record(&rec(0, 2, 1_000, 1, 0));
        }
        c.record(&rec(1, 1, 50, 1, 0));
        let report = c.close_interval(SimTime::from_secs(10));
        let p95 = report.app_latency_quantile(AppId(0), 0.95).unwrap();
        assert!(p95 >= 990_000, "slow class dominates the tail: {p95}");
        let p25 = report.app_latency_quantile(AppId(0), 0.25).unwrap();
        assert!(p25 <= 10_100, "fast class fills the lower half: {p25}");
        assert!(report.app_latency_quantile(AppId(7), 0.5).is_none());
    }

    #[test]
    fn closed_interval_histograms_reset_like_the_vectors() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        c.record(&rec(0, 1, 100, 1, 0));
        let first = c.close_interval(SimTime::from_secs(10));
        assert_eq!(first.latency_histograms.len(), 1);
        let empty = c.close_interval(SimTime::from_secs(20));
        assert!(empty.latency_histograms.is_empty());
    }

    #[test]
    fn batch_recording() {
        let mut c = ClassStatsCollector::new(SimTime::ZERO);
        let batch = vec![rec(0, 1, 100, 1, 0), rec(0, 1, 100, 1, 0)];
        c.record_batch(&batch);
        assert_eq!(c.queries_for(ClassId::new(AppId(0), 1)), 2);
    }
}
