//! # odlb-metrics — statistics collection and stable-state signatures (paper §3.3)
//!
//! The paper's monitoring layer, reimplemented:
//!
//! * [`ids`] — the identity space: applications, query classes (the
//!   scheduling unit — "all query instances with the same query template
//!   but different arguments"), and physical servers.
//! * [`kinds`] — the monitored per-class metrics: latency, throughput,
//!   buffer pool misses, page accesses, I/O block requests and read-ahead
//!   (prefetch) requests, carried in a fixed-width [`MetricVector`].
//! * [`collector`] — per-server, per-class interval accumulators fed by
//!   the engine's instrumentation; closing a measurement interval yields a
//!   [`MetricVector`] per class.
//! * [`signature`] — the *stable state signature*: the per-(server, class)
//!   average metric vector recorded whenever an application's SLA was
//!   continuously met during a measurement interval, plus the class's MRC
//!   parameters.
//! * [`sla`] — the service level agreement (average query latency bound)
//!   and its per-interval compliance check.
//! * [`window`] — the per-class window of recent page accesses kept for
//!   on-demand MRC recomputation.
//! * [`logbuf`] — the per-thread private log buffer from the paper's §4
//!   implementation notes (records are buffered lock-free per worker and
//!   flushed in batches, so instrumentation does not serialise the engine).

pub mod collector;
pub mod ids;
pub mod kinds;
pub mod logbuf;
pub mod signature;
pub mod sla;
pub mod window;

pub use collector::{ClassStatsCollector, IntervalReport};
pub use ids::{AppId, ClassId, ServerId};
pub use kinds::{MetricKind, MetricVector, METRIC_KINDS};
pub use logbuf::{PrivateLogBuffer, QueryLogRecord};
pub use signature::{StableStateSignature, StableStateStore};
pub use sla::{Sla, SlaOutcome};
pub use window::{AccessWindow, WindowRegistry};
