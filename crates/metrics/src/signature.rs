//! Stable-state signatures (paper §3.3).
//!
//! "Whenever a stable measurement interval occurs for an application, i.e.,
//! an interval when the SLA has been continuously met, we update the last
//! stable value seen (as an average over the duration of the respective
//! interval) for each metric on each server where the application is
//! running. We maintain these average metrics in a data structure called a
//! *stable state signature*; one such signature is maintained per query
//! context. We also maintain the parameters of the MRC curves for each
//! query class in the stable state record."

use crate::ids::{AppId, ClassId, ServerId};
use crate::kinds::MetricVector;
use odlb_mrc::MrcParams;
use odlb_sim::SimTime;
use std::collections::BTreeMap;

/// The last-known-good record for one query context on one server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StableStateSignature {
    /// Interval-average metric values at the last stable interval.
    pub metrics: MetricVector,
    /// MRC parameters, filled in when the class's curve was (re)computed.
    /// The MRC "is determined when a query class is first scheduled on the
    /// system and is not recomputed unless an SLA violation occurs and
    /// memory related counters show outlier measurements".
    pub mrc: Option<MrcParams>,
    /// When the signature was last refreshed.
    pub recorded_at: SimTime,
}

/// Per-(server, class) stable-state storage.
#[derive(Clone, Debug, Default)]
pub struct StableStateStore {
    map: BTreeMap<(ServerId, ClassId), StableStateSignature>,
}

impl StableStateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Refreshes the metric part of the signature after a stable interval,
    /// preserving any previously computed MRC parameters.
    pub fn record_stable(
        &mut self,
        server: ServerId,
        class: ClassId,
        metrics: MetricVector,
        at: SimTime,
    ) {
        self.map
            .entry((server, class))
            .and_modify(|sig| {
                sig.metrics = metrics;
                sig.recorded_at = at;
            })
            .or_insert(StableStateSignature {
                metrics,
                mrc: None,
                recorded_at: at,
            });
    }

    /// Stores or replaces a class's MRC parameters on a server. No-op on
    /// the metric part; creates the signature when absent (a class whose
    /// MRC was computed at first scheduling, before any stable interval).
    pub fn record_mrc(&mut self, server: ServerId, class: ClassId, mrc: MrcParams, at: SimTime) {
        self.map
            .entry((server, class))
            .and_modify(|sig| sig.mrc = Some(mrc))
            .or_insert(StableStateSignature {
                metrics: MetricVector::ZERO,
                mrc: Some(mrc),
                recorded_at: at,
            });
    }

    /// The signature for a context, if any stable interval has happened.
    pub fn get(&self, server: ServerId, class: ClassId) -> Option<&StableStateSignature> {
        self.map.get(&(server, class))
    }

    /// All signatures on `server` for classes of `app`, sorted by class.
    pub fn for_app_on_server(
        &self,
        server: ServerId,
        app: AppId,
    ) -> Vec<(ClassId, StableStateSignature)> {
        // `map` is a `BTreeMap` keyed by `(server, class)`: filtering to
        // one server leaves the classes already in ascending order.
        self.map
            .iter()
            .filter(|((s, c), _)| *s == server && c.app == app)
            .map(|((_, c), sig)| (*c, *sig))
            .collect()
    }

    /// Forgets a context (class re-placed away from the server).
    pub fn forget(&mut self, server: ServerId, class: ClassId) {
        self.map.remove(&(server, class));
    }

    /// Number of stored signatures.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no signature is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::MetricKind;

    fn class(t: u32) -> ClassId {
        ClassId::new(AppId(0), t)
    }

    fn metrics(latency: f64) -> MetricVector {
        let mut v = MetricVector::ZERO;
        v[MetricKind::Latency] = latency;
        v
    }

    fn params() -> MrcParams {
        MrcParams {
            total_memory_needed: 100,
            ideal_miss_ratio: 0.01,
            acceptable_memory_needed: 80,
            acceptable_miss_ratio: 0.03,
        }
    }

    #[test]
    fn stable_record_round_trips() {
        let mut store = StableStateStore::new();
        store.record_stable(ServerId(1), class(2), metrics(0.5), SimTime::from_secs(10));
        let sig = store.get(ServerId(1), class(2)).unwrap();
        assert_eq!(sig.metrics[MetricKind::Latency], 0.5);
        assert_eq!(sig.mrc, None);
        assert_eq!(sig.recorded_at, SimTime::from_secs(10));
    }

    #[test]
    fn refresh_preserves_mrc() {
        let mut store = StableStateStore::new();
        store.record_mrc(ServerId(1), class(2), params(), SimTime::from_secs(1));
        store.record_stable(ServerId(1), class(2), metrics(0.7), SimTime::from_secs(20));
        let sig = store.get(ServerId(1), class(2)).unwrap();
        assert_eq!(sig.mrc, Some(params()), "MRC survives metric refresh");
        assert_eq!(sig.metrics[MetricKind::Latency], 0.7);
    }

    #[test]
    fn mrc_before_any_stable_interval() {
        let mut store = StableStateStore::new();
        store.record_mrc(ServerId(1), class(3), params(), SimTime::ZERO);
        let sig = store.get(ServerId(1), class(3)).unwrap();
        assert_eq!(sig.metrics, MetricVector::ZERO);
        assert!(sig.mrc.is_some());
    }

    #[test]
    fn contexts_are_keyed_by_server_and_class() {
        let mut store = StableStateStore::new();
        store.record_stable(ServerId(1), class(1), metrics(0.1), SimTime::ZERO);
        store.record_stable(ServerId(2), class(1), metrics(0.2), SimTime::ZERO);
        assert_eq!(
            store.get(ServerId(1), class(1)).unwrap().metrics[MetricKind::Latency],
            0.1
        );
        assert_eq!(
            store.get(ServerId(2), class(1)).unwrap().metrics[MetricKind::Latency],
            0.2
        );
        assert!(store.get(ServerId(3), class(1)).is_none());
    }

    #[test]
    fn for_app_on_server_filters_and_sorts() {
        let mut store = StableStateStore::new();
        store.record_stable(
            ServerId(1),
            ClassId::new(AppId(0), 5),
            metrics(0.1),
            SimTime::ZERO,
        );
        store.record_stable(
            ServerId(1),
            ClassId::new(AppId(0), 2),
            metrics(0.1),
            SimTime::ZERO,
        );
        store.record_stable(
            ServerId(1),
            ClassId::new(AppId(1), 1),
            metrics(0.1),
            SimTime::ZERO,
        );
        store.record_stable(
            ServerId(2),
            ClassId::new(AppId(0), 9),
            metrics(0.1),
            SimTime::ZERO,
        );
        let got = store.for_app_on_server(ServerId(1), AppId(0));
        let templates: Vec<u32> = got.iter().map(|(c, _)| c.template).collect();
        assert_eq!(templates, vec![2, 5]);
    }

    #[test]
    fn forget_removes_context() {
        let mut store = StableStateStore::new();
        store.record_stable(ServerId(1), class(1), metrics(0.1), SimTime::ZERO);
        assert_eq!(store.len(), 1);
        store.forget(ServerId(1), class(1));
        assert!(store.is_empty());
    }
}
