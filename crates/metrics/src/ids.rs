//! Identity types shared across the monitoring, scheduling and diagnosis
//! layers.

use std::fmt;

/// An application hosted on the shared cluster (e.g. TPC-W, RUBiS).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

/// A query class: all query instances of one application that share a
/// query template (same SQL shape, different arguments). This is the
/// paper's scheduling and accounting unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId {
    /// Owning application.
    pub app: AppId,
    /// Template index within the application (assigned on first sight by
    /// the scheduler's template extractor).
    pub template: u32,
}

/// A physical server in the database tier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl ClassId {
    /// Constructs a class id.
    pub const fn new(app: AppId, template: u32) -> Self {
        ClassId { app, template }
    }

    /// A stable 64-bit key for use with substrates that take opaque
    /// consumer ids (read-ahead detector, quota solver).
    pub fn as_u64(self) -> u64 {
        ((self.app.0 as u64) << 32) | self.template as u64
    }
}

impl fmt::Debug for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}#{}", self.app.0, self.template)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}#{}", self.app.0, self.template)
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_u64_key_is_injective_across_apps_and_templates() {
        let a = ClassId::new(AppId(1), 2).as_u64();
        let b = ClassId::new(AppId(2), 1).as_u64();
        let c = ClassId::new(AppId(1), 3).as_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ClassId::new(AppId(3), 8)), "app3#8");
        assert_eq!(format!("{}", ServerId(2)), "srv2");
    }
}
