//! Per-thread private log buffers (paper §4).
//!
//! "To avoid locking overhead, we create a private logging buffer per
//! thread. We log the specified counts, statistics and unique page
//! accesses per query class. Finally, we flush the logs to disk only when
//! the buffer is full or if the thread is being shutdown."
//!
//! The simulated engine follows the same discipline: each worker owns a
//! [`PrivateLogBuffer`]; completed queries append a [`QueryLogRecord`];
//! the buffer hands back a drained batch when it fills, and the engine
//! forwards batches to the per-server [`crate::ClassStatsCollector`].

use crate::ids::ClassId;
use odlb_sim::{SimDuration, SimTime};

/// Everything the instrumentation records about one completed query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryLogRecord {
    /// The query's class (template) — the accounting unit.
    pub class: ClassId,
    /// Completion time.
    pub completed_at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Buffer pool page accesses performed.
    pub page_accesses: u64,
    /// Buffer pool misses incurred.
    pub buffer_misses: u64,
    /// I/O block requests issued.
    pub io_requests: u64,
    /// Read-ahead requests issued on this query's behalf.
    pub readaheads: u64,
    /// Time spent waiting for page locks before execution could proceed.
    pub lock_wait: SimDuration,
}

/// A fixed-capacity, single-owner log buffer.
#[derive(Clone, Debug)]
pub struct PrivateLogBuffer {
    records: Vec<QueryLogRecord>,
    /// Recycled batch storage: callers hand drained batches back via
    /// [`PrivateLogBuffer::recycle`], so steady-state flushing swaps two
    /// fixed buffers instead of allocating one per flush.
    spare: Vec<QueryLogRecord>,
    capacity: usize,
    flushes: u64,
}

impl PrivateLogBuffer {
    /// Creates a buffer that flushes after `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer must hold at least one record");
        PrivateLogBuffer {
            records: Vec::with_capacity(capacity),
            spare: Vec::new(),
            capacity,
            flushes: 0,
        }
    }

    /// Appends a record. Returns the drained batch when the buffer just
    /// filled, `None` otherwise — the caller forwards batches to the
    /// collector, mirroring the paper's flush-on-full design.
    pub fn log(&mut self, record: QueryLogRecord) -> Option<Vec<QueryLogRecord>> {
        self.records.push(record);
        if self.records.len() >= self.capacity {
            self.flushes += 1;
            Some(std::mem::replace(
                &mut self.records,
                std::mem::take(&mut self.spare),
            ))
        } else {
            None
        }
    }

    /// Drains whatever is buffered (thread shutdown / interval close).
    pub fn flush(&mut self) -> Vec<QueryLogRecord> {
        if !self.records.is_empty() {
            self.flushes += 1;
        }
        std::mem::replace(&mut self.records, std::mem::take(&mut self.spare))
    }

    /// Returns a consumed batch's storage for reuse by the next flush.
    pub fn recycle(&mut self, mut batch: Vec<QueryLogRecord>) {
        batch.clear();
        self.spare = batch;
    }

    /// Records currently buffered.
    pub fn buffered(&self) -> usize {
        self.records.len()
    }

    /// Number of flushes performed (full + explicit).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;

    fn rec(template: u32) -> QueryLogRecord {
        QueryLogRecord {
            class: ClassId::new(AppId(0), template),
            completed_at: SimTime::from_secs(1),
            latency: SimDuration::from_millis(100),
            page_accesses: 10,
            buffer_misses: 2,
            io_requests: 2,
            readaheads: 0,
            lock_wait: SimDuration::ZERO,
        }
    }

    #[test]
    fn flushes_exactly_when_full() {
        let mut buf = PrivateLogBuffer::new(3);
        assert!(buf.log(rec(1)).is_none());
        assert!(buf.log(rec(2)).is_none());
        let batch = buf.log(rec(3)).expect("third record fills the buffer");
        assert_eq!(batch.len(), 3);
        assert_eq!(buf.buffered(), 0);
        assert_eq!(buf.flushes(), 1);
    }

    #[test]
    fn explicit_flush_drains_partial() {
        let mut buf = PrivateLogBuffer::new(10);
        buf.log(rec(1));
        buf.log(rec(2));
        let batch = buf.flush();
        assert_eq!(batch.len(), 2);
        assert!(buf.flush().is_empty(), "second flush is empty");
        assert_eq!(buf.flushes(), 1, "empty flush not counted");
    }

    #[test]
    fn records_round_trip_unchanged() {
        let mut buf = PrivateLogBuffer::new(1);
        let r = rec(7);
        let batch = buf.log(r).unwrap();
        assert_eq!(batch[0], r);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_capacity_rejected() {
        PrivateLogBuffer::new(0);
    }

    #[test]
    fn recycled_batches_ping_pong_between_two_buffers() {
        let mut buf = PrivateLogBuffer::new(2);
        buf.log(rec(1));
        let first = buf.log(rec(2)).unwrap();
        let ptr = first.as_ptr();
        buf.recycle(first);
        buf.log(rec(3));
        let second = buf.log(rec(4)).unwrap();
        buf.recycle(second);
        buf.log(rec(5));
        let third = buf.log(rec(6)).unwrap();
        assert_eq!(third.len(), 2);
        // Steady state alternates between two fixed allocations: the
        // third flush hands back the first flush's storage.
        assert_eq!(third.as_ptr(), ptr);
    }
}
