//! The service level agreement and its per-interval compliance check.
//!
//! §3: "Maintaining query latency under an average query latency bound is
//! considered the service level agreement (SLA)." §4: "We assume an SLA in
//! terms of average query latency per server of 1 second for all
//! applications."

use odlb_sim::SimDuration;

/// An application's SLA: a bound on mean query latency per server per
/// measurement interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sla {
    /// Mean latency must stay at or below this bound.
    pub avg_latency_bound: SimDuration,
}

impl Sla {
    /// The paper's experimental setting: 1 s mean latency.
    pub const fn one_second() -> Self {
        Sla {
            avg_latency_bound: SimDuration::from_secs(1),
        }
    }

    /// Creates an SLA with the given bound.
    pub const fn new(avg_latency_bound: SimDuration) -> Self {
        Sla { avg_latency_bound }
    }

    /// Evaluates one interval's mean latency (seconds). `None` (no queries
    /// completed) counts as a violation when there was offered load — the
    /// caller decides by passing `had_load`; an idle app is vacuously
    /// stable.
    pub fn evaluate(&self, mean_latency_secs: Option<f64>, had_load: bool) -> SlaOutcome {
        match mean_latency_secs {
            Some(lat) => {
                if lat <= self.avg_latency_bound.as_secs_f64() {
                    SlaOutcome::Met
                } else {
                    SlaOutcome::Violated
                }
            }
            None => {
                if had_load {
                    // Load offered but nothing completed: the most severe
                    // violation (the system is wedged).
                    SlaOutcome::Violated
                } else {
                    SlaOutcome::Met
                }
            }
        }
    }
}

/// The result of one interval's SLA check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlaOutcome {
    /// "Stable" interval: signatures are refreshed.
    Met,
    /// "Unstable" interval: diagnosis is triggered.
    Violated,
}

impl SlaOutcome {
    /// Convenience predicate.
    pub fn is_violation(self) -> bool {
        matches!(self, SlaOutcome::Violated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_bound_is_met() {
        let sla = Sla::one_second();
        assert_eq!(sla.evaluate(Some(0.6), true), SlaOutcome::Met);
        assert_eq!(sla.evaluate(Some(1.0), true), SlaOutcome::Met, "inclusive");
    }

    #[test]
    fn over_bound_is_violated() {
        let sla = Sla::one_second();
        assert_eq!(sla.evaluate(Some(1.01), true), SlaOutcome::Violated);
        assert!(sla.evaluate(Some(5.4), true).is_violation());
    }

    #[test]
    fn idle_app_is_vacuously_stable() {
        let sla = Sla::one_second();
        assert_eq!(sla.evaluate(None, false), SlaOutcome::Met);
    }

    #[test]
    fn wedged_app_is_violated() {
        let sla = Sla::one_second();
        assert_eq!(sla.evaluate(None, true), SlaOutcome::Violated);
    }

    #[test]
    fn custom_bound() {
        let sla = Sla::new(SimDuration::from_millis(200));
        assert_eq!(sla.evaluate(Some(0.3), true), SlaOutcome::Violated);
        assert_eq!(sla.evaluate(Some(0.1), true), SlaOutcome::Met);
    }
}
