//! Memory interference diagnosis and alleviation planning (§3.3.2).
//!
//! Given the suspect classes surfaced by outlier detection (plus newly
//! scheduled classes), this module recomputes their MRCs from the recent
//! access windows, decides which are *problem classes* (parameters changed
//! significantly, or no prior curve exists), and plans the narrowest
//! action: per-class buffer-pool quotas when everything fits at its
//! acceptable memory, otherwise re-placement of the biggest problem class.

use crate::config::ControllerConfig;
use odlb_cluster::{InstanceId, Simulation};
use odlb_metrics::{ClassId, IntervalReport, MetricKind, ServerId, StableStateStore};
use odlb_mrc::{fit_quotas, MrcParams, QuotaRequest};
use odlb_sim::SimTime;
use odlb_telemetry::{profile_span, SharedSpanProfiler};

/// Stable-store key for an instance (the paper's per-server context; one
/// engine per server in its testbed, so the instance is the natural key).
pub fn instance_key(instance: InstanceId) -> ServerId {
    ServerId(instance.0)
}

/// A class confirmed as a likely memory-interference cause.
#[derive(Clone, Debug)]
pub struct ProblemClass {
    /// The class.
    pub class: ClassId,
    /// Its freshly recomputed MRC parameters.
    pub params: MrcParams,
    /// Whether the parameters differ significantly from the stable record
    /// (false only for brand-new classes, which are problems by default).
    pub changed: bool,
}

/// The planned alleviation.
#[derive(Clone, Debug, PartialEq)]
pub enum MemoryPlan {
    /// Everything fits: enforce quotas for the problem classes, keep
    /// placement (§3.3.2 option two).
    Quotas(Vec<(ClassId, usize)>),
    /// The instance is over-committed: re-place the biggest problem class
    /// on another replica of its application (§3.3.2 option one).
    Replace {
        /// The class to move.
        class: ClassId,
        /// Its acceptable memory need (pages), for target selection.
        needed_pages: usize,
    },
    /// No action derivable (e.g. no curves available).
    Nothing,
}

/// Recomputes MRCs for `suspects` on `instance` and filters them to
/// problem classes. Fresh parameters are recorded into the stable store
/// (they become the new reference, as in the paper where the MRC is only
/// recomputed at diagnosis time). Returns the problem classes plus the
/// list of `(class, params, changed)` examined, for action logging.
#[allow(clippy::type_complexity)]
pub fn find_problem_classes(
    sim: &Simulation,
    instance: InstanceId,
    suspects: &[ClassId],
    stable: &mut StableStateStore,
    config: &ControllerConfig,
    now: SimTime,
    profiler: &Option<SharedSpanProfiler>,
) -> (Vec<ProblemClass>, Vec<(ClassId, MrcParams, bool)>) {
    let cap = sim.pool_pages(instance);
    let key = instance_key(instance);
    let mut problems = Vec::new();
    let mut examined = Vec::new();
    for &class in suspects {
        // The dominant cost of the MRC-update phase: one sub-span per
        // suspect recomputation, so flamegraphs attribute it separately
        // from the bookkeeping around it.
        let Some(params) = profile_span(profiler, "recompute", || {
            sim.recompute_mrc_with(instance, class, cap, config.mrc_mode)
                .map(|curve| curve.params(cap, config.mrc_threshold))
        }) else {
            continue;
        };
        let prior = stable.get(key, class).and_then(|s| s.mrc);
        let (is_problem, changed) = match prior {
            Some(old) => {
                let changed = params.significantly_different_from(
                    &old,
                    config.mrc_change_rel,
                    config.mrc_ratio_slack,
                );
                (changed, changed)
            }
            // New class with no prior curve: problem by definition
            // ("this case includes new query classes …").
            None => (true, false),
        };
        stable.record_mrc(key, class, params, now);
        examined.push((class, params, changed));
        if is_problem {
            problems.push(ProblemClass {
                class,
                params,
                changed,
            });
        }
    }
    (problems, examined)
}

/// Plans the alleviation for one instance: can all classes scheduled
/// there be given their acceptable memory simultaneously?
pub fn plan_memory_action(
    sim: &Simulation,
    instance: InstanceId,
    report: &IntervalReport,
    problems: &[ProblemClass],
    config: &ControllerConfig,
    profiler: &Option<SharedSpanProfiler>,
) -> MemoryPlan {
    if problems.is_empty() {
        return MemoryPlan::Nothing;
    }
    let cap = sim.pool_pages(instance);
    // Recompute the curve of every class active on this instance; the fit
    // must account for "the rest of the application queries scheduled on
    // the same physical server".
    let mut curves = Vec::new();
    profile_span(profiler, "recompute", || {
        for (&class, metrics) in &report.per_class {
            if let Some(curve) = sim.recompute_mrc_with(instance, class, cap, config.mrc_mode) {
                let rate = metrics[MetricKind::Throughput];
                curves.push((class, curve, rate));
            }
        }
    });
    if curves.is_empty() {
        return MemoryPlan::Nothing;
    }
    let requests: Vec<QuotaRequest<'_>> = curves
        .iter()
        .map(|(class, curve, rate)| {
            let params = curve.params(cap, config.mrc_threshold);
            QuotaRequest {
                id: class.as_u64(),
                curve,
                acceptable_pages: params.acceptable_memory_needed,
                access_rate: *rate,
            }
        })
        .collect();

    // Keep at least one page for the general partition.
    let budget = cap.saturating_sub(1);
    match profile_span(profiler, "fit_quotas", || fit_quotas(budget, &requests)) {
        Some(assignments) => {
            let quotas = problems
                .iter()
                .filter_map(|p| {
                    assignments
                        .iter()
                        .find(|a| a.id == p.class.as_u64())
                        .map(|a| (p.class, a.pages.max(config.min_quota_pages).min(budget)))
                })
                .filter(|(_, pages)| *pages > 0)
                .collect::<Vec<_>>();
            if quotas.is_empty() {
                MemoryPlan::Nothing
            } else {
                MemoryPlan::Quotas(quotas)
            }
        }
        None => {
            // Over-committed: move the problem class with the largest
            // acceptable need.
            let biggest = problems
                .iter()
                .max_by_key(|p| p.params.acceptable_memory_needed)
                .expect("problems non-empty");
            MemoryPlan::Replace {
                class: biggest.class,
                needed_pages: biggest.params.acceptable_memory_needed,
            }
        }
    }
}

/// Picks the replica of `class.app` (other than `exclude`) best suited to
/// host a re-placed class: the one with the largest pool that can fit
/// `needed_pages`. Returns `None` when no existing replica fits — the
/// controller then provisions a new one.
pub fn pick_replacement_target(
    sim: &Simulation,
    class: ClassId,
    needed_pages: usize,
    exclude: InstanceId,
) -> Option<InstanceId> {
    sim.replicas_of(class.app)
        .into_iter()
        .filter(|&i| i != exclude)
        .filter(|&i| sim.pool_pages(i) >= needed_pages)
        .max_by_key(|&i| (sim.pool_pages(i), std::cmp::Reverse(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_cluster::SimulationConfig;
    use odlb_engine::EngineConfig;
    use odlb_metrics::{AppId, Sla};
    use odlb_storage::DomainId;
    use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};
    use odlb_workload::{ClientConfig, LoadFunction};

    fn sim_with_traffic() -> (Simulation, AppId, InstanceId, IntervalReport) {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 21,
            ..Default::default()
        });
        let s = sim.add_server(4);
        let inst = sim.add_instance(s, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(8),
        );
        sim.assign_replica(app, inst);
        sim.start();
        sim.run_interval();
        let outcome = sim.run_interval();
        let report = outcome.reports[&inst].clone();
        (sim, app, inst, report)
    }

    #[test]
    fn new_classes_are_problems_and_get_recorded() {
        let (sim, app, inst, _) = sim_with_traffic();
        let mut stable = StableStateStore::new();
        let suspects = vec![ClassId::new(app, 0), ClassId::new(app, 1)];
        let config = ControllerConfig::default();
        let (problems, examined) = find_problem_classes(
            &sim,
            inst,
            &suspects,
            &mut stable,
            &config,
            sim.now(),
            &None,
        );
        assert_eq!(problems.len(), 2, "no prior MRC: both are problems");
        assert!(problems.iter().all(|p| !p.changed));
        assert_eq!(examined.len(), 2);
        // Parameters are now the stable reference: re-running finds no
        // problems.
        let (again, _) = find_problem_classes(
            &sim,
            inst,
            &suspects,
            &mut stable,
            &config,
            sim.now(),
            &None,
        );
        assert!(again.is_empty(), "unchanged curves are not problems");
    }

    #[test]
    fn unknown_class_is_skipped() {
        let (sim, _, inst, _) = sim_with_traffic();
        let mut stable = StableStateStore::new();
        let ghost = ClassId::new(AppId(9), 0);
        let (problems, examined) = find_problem_classes(
            &sim,
            inst,
            &[ghost],
            &mut stable,
            &ControllerConfig::default(),
            sim.now(),
            &None,
        );
        assert!(problems.is_empty());
        assert!(examined.is_empty());
    }

    #[test]
    fn light_classes_fit_as_quotas() {
        let (sim, app, inst, report) = sim_with_traffic();
        // Pretend a light class (Home) is the problem: everything fits in
        // the 8192-page pool, so the plan is a quota, not a move.
        let problems = vec![ProblemClass {
            class: ClassId::new(app, 0),
            params: MrcParams {
                total_memory_needed: 300,
                ideal_miss_ratio: 0.01,
                acceptable_memory_needed: 250,
                acceptable_miss_ratio: 0.03,
            },
            changed: true,
        }];
        let plan = plan_memory_action(
            &sim,
            inst,
            &report,
            &problems,
            &ControllerConfig::default(),
            &None,
        );
        match plan {
            MemoryPlan::Quotas(quotas) => {
                assert_eq!(quotas.len(), 1);
                assert_eq!(quotas[0].0, ClassId::new(app, 0));
                assert!(quotas[0].1 > 0);
            }
            other => panic!("expected quotas, got {other:?}"),
        }
    }

    #[test]
    fn empty_problem_set_plans_nothing() {
        let (sim, _, inst, report) = sim_with_traffic();
        let plan = plan_memory_action(
            &sim,
            inst,
            &report,
            &[],
            &ControllerConfig::default(),
            &None,
        );
        assert_eq!(plan, MemoryPlan::Nothing);
    }

    #[test]
    fn replacement_target_prefers_fitting_pool() {
        let mut sim = Simulation::new(SimulationConfig::default());
        let s1 = sim.add_server(4);
        let s2 = sim.add_server(4);
        let s3 = sim.add_server(4);
        let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let small = sim.add_instance(
            s2,
            DomainId(1),
            EngineConfig {
                pool_pages: 1024,
                ..Default::default()
            },
        );
        let big = sim.add_instance(s3, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(1),
        );
        for i in [i1, small, big] {
            sim.assign_replica(app, i);
        }
        let class = ClassId::new(app, 8);
        assert_eq!(
            pick_replacement_target(&sim, class, 7000, i1),
            Some(big),
            "only the 8192-page pool fits 7000 pages"
        );
        assert_eq!(
            pick_replacement_target(&sim, class, 500, i1),
            Some(big),
            "largest pool wins when several fit"
        );
        assert_eq!(
            pick_replacement_target(&sim, class, 9999, i1),
            None,
            "nothing fits"
        );
    }
}
