//! The actions a controller can take, reported back to the harness so
//! every experiment can narrate what the control loop did.

use odlb_cluster::InstanceId;
use odlb_metrics::{AppId, ClassId};
use odlb_trace::{ActionKind, TraceEvent, Tracer};
use std::fmt;

/// One control action (or notable diagnosis event) in an interval.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Outlier detection ran and flagged these contexts.
    DetectedOutliers {
        /// Instance diagnosed.
        instance: InstanceId,
        /// Outlier contexts found.
        contexts: Vec<ClassId>,
        /// Mild findings count.
        mild: usize,
        /// Extreme findings count.
        extreme: usize,
    },
    /// A class's MRC was recomputed during diagnosis.
    RecomputedMrc {
        /// Instance whose window was replayed.
        instance: InstanceId,
        /// The class.
        class: ClassId,
        /// Acceptable memory (pages) from the fresh curve.
        acceptable_pages: usize,
        /// Whether the parameters changed significantly vs. stable.
        changed: bool,
    },
    /// A buffer-pool quota was enforced (placement kept).
    SetQuota {
        /// Instance carrying the quota.
        instance: InstanceId,
        /// The problem class.
        class: ClassId,
        /// Pages granted.
        pages: usize,
    },
    /// A class was re-placed onto a different replica.
    PlacedClass {
        /// The class's application.
        app: AppId,
        /// The class.
        class: ClassId,
        /// Where its reads now go.
        to: InstanceId,
    },
    /// A replica was provisioned (CPU saturation or placement need).
    ProvisionedReplica {
        /// The application getting the replica.
        app: AppId,
        /// The new instance (serving after the warm-up delay).
        instance: InstanceId,
    },
    /// A replica was released back to the pool.
    RetiredReplica {
        /// The application shrinking.
        app: AppId,
        /// The instance released.
        instance: InstanceId,
    },
    /// The coarse-grained fallback isolated an application.
    CoarseFallback {
        /// The application isolated.
        app: AppId,
    },
    /// Lock contention detected on a class (the paper's §7 future work):
    /// its lock-wait metric is an outlier in the degradation direction.
    /// Diagnosis-only — re-placement cannot help a write class under
    /// read-one-write-all, so the finding is surfaced to the operator.
    DetectedLockContention {
        /// Instance where the contention shows.
        instance: InstanceId,
        /// The contended class.
        class: ClassId,
        /// Its lock-wait deviation ratio vs stable.
        ratio: f64,
    },
    /// A whole VM (database instance) was live-migrated between servers —
    /// the coarse baseline remedy.
    MigratedVm {
        /// The instance moved.
        instance: InstanceId,
        /// Source server.
        from: odlb_metrics::ServerId,
        /// Destination server.
        to: odlb_metrics::ServerId,
    },
    /// I/O interference: a class was moved off a disk-saturated server.
    MovedIoHeavyClass {
        /// The class's application.
        app: AppId,
        /// The class moved.
        class: ClassId,
        /// Destination replica.
        to: InstanceId,
    },
}

impl Action {
    /// A stable kebab-case label for telemetry counters
    /// (`odlb_controller_actions_total{action="..."}`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            Action::DetectedOutliers { .. } => "detected-outliers",
            Action::RecomputedMrc { .. } => "recomputed-mrc",
            Action::SetQuota { .. } => "set-quota",
            Action::PlacedClass { .. } => "placed-class",
            Action::ProvisionedReplica { .. } => "provisioned-replica",
            Action::RetiredReplica { .. } => "retired-replica",
            Action::CoarseFallback { .. } => "coarse-fallback",
            Action::DetectedLockContention { .. } => "detected-lock-contention",
            Action::MigratedVm { .. } => "migrated-vm",
            Action::MovedIoHeavyClass { .. } => "moved-io-heavy-class",
        }
    }

    /// Maps this action to its decision-trace event at interval end
    /// `end_us`. MRC recomputations become first-class `mrc_validation`
    /// events; everything else becomes an `action_applied` record whose
    /// `detail` is the action's human-readable rendering.
    pub fn to_trace_event(&self, end_us: u64) -> TraceEvent {
        if let Action::RecomputedMrc {
            instance,
            class,
            acceptable_pages,
            changed,
        } = self
        {
            return TraceEvent::MrcValidation {
                end_us,
                instance: instance.0,
                app: class.app.0,
                template: class.template,
                acceptable_pages: *acceptable_pages as u64,
                changed: *changed,
            };
        }
        let (kind, app, instance, template, pages) = match self {
            Action::RecomputedMrc { .. } => unreachable!("handled above"),
            Action::DetectedOutliers { instance, .. } => (
                ActionKind::DetectedOutliers,
                None,
                Some(instance.0),
                None,
                None,
            ),
            Action::SetQuota {
                instance,
                class,
                pages,
            } => (
                ActionKind::SetQuota,
                Some(class.app.0),
                Some(instance.0),
                Some(class.template),
                Some(*pages as u64),
            ),
            Action::PlacedClass { app, class, to } => (
                ActionKind::PlacedClass,
                Some(app.0),
                Some(to.0),
                Some(class.template),
                None,
            ),
            Action::ProvisionedReplica { app, instance } => (
                ActionKind::ProvisionedReplica,
                Some(app.0),
                Some(instance.0),
                None,
                None,
            ),
            Action::RetiredReplica { app, instance } => (
                ActionKind::RetiredReplica,
                Some(app.0),
                Some(instance.0),
                None,
                None,
            ),
            Action::CoarseFallback { app } => {
                (ActionKind::CoarseFallback, Some(app.0), None, None, None)
            }
            Action::DetectedLockContention {
                instance, class, ..
            } => (
                ActionKind::LockContention,
                Some(class.app.0),
                Some(instance.0),
                Some(class.template),
                None,
            ),
            Action::MigratedVm { instance, .. } => {
                (ActionKind::MigratedVm, None, Some(instance.0), None, None)
            }
            Action::MovedIoHeavyClass { app, class, to } => (
                ActionKind::MovedIoHeavyClass,
                Some(app.0),
                Some(to.0),
                Some(class.template),
                None,
            ),
        };
        TraceEvent::ActionApplied {
            end_us,
            kind,
            app,
            instance,
            template,
            pages,
            detail: self.to_string(),
        }
    }
}

/// Emits every action's trace event in order (no-op when `tracer` has no
/// sinks). All controllers call this once per interval so the applied
/// action stream is traced uniformly.
pub fn emit_actions(tracer: &Tracer, end_us: u64, actions: &[Action]) {
    if !tracer.is_active() {
        return;
    }
    for action in actions {
        tracer.emit(action.to_trace_event(end_us));
    }
}

/// Counts applied actions by kind into a telemetry registry (no-op when
/// `telemetry` is inactive). Controllers call this alongside
/// [`emit_actions`] so the metrics and trace streams stay in step.
pub fn count_actions(telemetry: &odlb_telemetry::Telemetry, actions: &[Action]) {
    if !telemetry.is_active() {
        return;
    }
    for action in actions {
        if let Some(c) = telemetry.counter(
            "odlb_controller_actions_total",
            "Controller actions applied or diagnoses surfaced, by kind.",
            &[("action", action.kind_label())],
        ) {
            c.inc();
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::DetectedOutliers {
                instance,
                contexts,
                mild,
                extreme,
            } => write!(
                f,
                "outliers on {instance}: {} contexts ({mild} mild, {extreme} extreme): {}",
                contexts.len(),
                contexts
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Action::RecomputedMrc {
                instance,
                class,
                acceptable_pages,
                changed,
            } => write!(
                f,
                "recomputed MRC of {class} on {instance}: acceptable {acceptable_pages} pages ({})",
                if *changed { "CHANGED" } else { "unchanged" }
            ),
            Action::SetQuota {
                instance,
                class,
                pages,
            } => write!(f, "quota: {class} limited to {pages} pages on {instance}"),
            Action::PlacedClass { app, class, to } => {
                write!(f, "placed {class} of {app} onto {to}")
            }
            Action::ProvisionedReplica { app, instance } => {
                write!(f, "provisioned {instance} for {app}")
            }
            Action::RetiredReplica { app, instance } => {
                write!(f, "retired {instance} of {app}")
            }
            Action::CoarseFallback { app } => {
                write!(f, "coarse-grained fallback: isolating {app}")
            }
            Action::MovedIoHeavyClass { app, class, to } => {
                write!(f, "I/O interference: moved {class} of {app} to {to}")
            }
            Action::DetectedLockContention {
                instance,
                class,
                ratio,
            } => write!(
                f,
                "lock contention: {class} on {instance} waits {ratio:.1}x its stable state"
            ),
            Action::MigratedVm { instance, from, to } => {
                write!(f, "live-migrated {instance} from {from} to {to}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let a = Action::SetQuota {
            instance: InstanceId(0),
            class: ClassId::new(AppId(0), 8),
            pages: 3695,
        };
        let s = a.to_string();
        assert!(s.contains("3695"));
        assert!(s.contains("app0#8"));
    }
}
