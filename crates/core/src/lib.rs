//! # odlb-core — the selective retuning controller (the paper's contribution)
//!
//! Implements §3's fine-grained resource allocation and load balancing
//! algorithm on top of the cluster substrate:
//!
//! 1. **Stable-state recording** — after every interval in which an
//!    application's SLA was continuously met, refresh the per-(instance,
//!    class) stable state signatures.
//! 2. **Diagnosis on violation** — first rule out CPU saturation (which
//!    gets reactive replica provisioning); otherwise run IQR outlier
//!    detection over the weighted per-class metric impacts on every
//!    instance hosting the application.
//! 3. **Memory interference** — for outlier contexts with memory-related
//!    counters (and for newly scheduled classes), recompute the MRC from
//!    the class's recent access window; classes whose parameters changed
//!    significantly (or that are new) are *problem classes*. If every
//!    class on the instance can be given its acceptable memory, enforce a
//!    quota for the problem classes and keep their placement; otherwise
//!    re-place the biggest problem class on another replica of its
//!    application (provisioning one if needed).
//! 4. **Top-k fallback** — when no outlier stands out, investigate the
//!    top-k heavyweight memory classes the same way.
//! 5. **I/O interference** — when the disk saturates without CPU or
//!    memory causes, migrate query contexts away from the hot server in
//!    decreasing order of I/O rate.
//! 6. **Coarse-grained fallback** — if violations persist despite
//!    fine-grained actions, fall back to whole-application isolation,
//!    exactly what the baseline systems would have done first.
//!
//! [`baseline`] provides those baseline controllers (CPU-trigger-only
//! provisioning à la Tivoli, and always-isolate coarse-grained) for the
//! paper's implicit comparison and ablation A3.

pub mod actions;
pub mod baseline;
pub mod config;
pub mod controller;
pub mod memory;

pub use actions::Action;
pub use baseline::{CoarseGrainedController, CpuOnlyController, VmMigrationController};
pub use config::ControllerConfig;
pub use controller::{ClusterController, SelectiveRetuningController};
