//! The selective retuning controller — the paper's §3 algorithm as a
//! per-interval control loop over the simulated cluster.

use crate::actions::{count_actions, emit_actions, Action};
use crate::config::ControllerConfig;
use crate::memory::{
    find_problem_classes, instance_key, pick_replacement_target, plan_memory_action, MemoryPlan,
};
use odlb_cluster::{InstanceId, IntervalOutcome, Simulation};
use odlb_metrics::{AppId, ClassId, MetricKind, StableStateStore};
use odlb_outlier::{detect, top_k_heavyweight, Severity};
use odlb_telemetry::{enter_span, profile_span, SharedSpanProfiler, Telemetry};
use odlb_trace::{TraceEvent, Tracer};
use std::collections::BTreeMap;

/// Anything that can steer the cluster between measurement intervals.
pub trait ClusterController {
    /// Inspects one closed interval and applies actions through `sim`.
    fn on_interval(&mut self, sim: &mut Simulation, outcome: &IntervalOutcome) -> Vec<Action>;

    /// Installs a decision-trace handle (usually a clone of the one given
    /// to the [`Simulation`]). Controllers that emit nothing may keep the
    /// default no-op.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Installs a telemetry handle (usually a clone of the one given to
    /// the [`Simulation`]) for action counters. Default no-op.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Installs a span profiler timing the controller's phases
    /// (collection, outlier detection, MRC update, action selection).
    /// Default no-op.
    fn set_profiler(&mut self, _profiler: SharedSpanProfiler) {}
}

/// The paper's controller: stable-state tracking, outlier-driven
/// diagnosis, MRC-validated memory actions, CPU provisioning, I/O-rate
/// eviction, and a coarse-grained last resort.
pub struct SelectiveRetuningController {
    config: ControllerConfig,
    stable: StableStateStore,
    cooldown: BTreeMap<AppId, u32>,
    streak: BTreeMap<AppId, u32>,
    /// Class placements waiting for a provisioned replica to warm up.
    pending_placements: Vec<(AppId, ClassId, InstanceId)>,
    /// Whole-app isolations waiting for their replica.
    pending_isolations: Vec<(AppId, InstanceId)>,
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
}

impl SelectiveRetuningController {
    /// Creates a controller with the given configuration.
    pub fn new(config: ControllerConfig) -> Self {
        SelectiveRetuningController {
            config,
            stable: StableStateStore::new(),
            cooldown: BTreeMap::new(),
            streak: BTreeMap::new(),
            pending_placements: Vec::new(),
            pending_isolations: Vec::new(),
            tracer: Tracer::new(),
            telemetry: Telemetry::inactive(),
            profiler: None,
        }
    }

    /// Read access to the stable-state store (for harness reporting).
    pub fn stable_store(&self) -> &StableStateStore {
        &self.stable
    }

    /// The configuration in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    fn on_cooldown(&self, app: AppId) -> bool {
        self.cooldown.get(&app).copied().unwrap_or(0) > 0
    }

    fn start_cooldown(&mut self, app: AppId) {
        self.cooldown.insert(app, self.config.cooldown_intervals);
    }

    /// Finishes deferred placements whose target replica is now serving.
    fn complete_pending(&mut self, sim: &mut Simulation, actions: &mut Vec<Action>) {
        let mut remaining = Vec::new();
        for (app, class, target) in self.pending_placements.drain(..) {
            if sim.replicas_of(app).contains(&target) {
                sim.place_class(app, class, vec![target]);
                actions.push(Action::PlacedClass {
                    app,
                    class,
                    to: target,
                });
            } else {
                remaining.push((app, class, target));
            }
        }
        self.pending_placements = remaining;

        let mut remaining = Vec::new();
        for (app, target) in self.pending_isolations.drain(..) {
            if sim.replicas_of(app).contains(&target) {
                let class_count = sim.workload(app).classes.len();
                for idx in 0..class_count {
                    let class = ClassId::new(app, idx as u32);
                    sim.place_class(app, class, vec![target]);
                }
                actions.push(Action::CoarseFallback { app });
            } else {
                remaining.push((app, target));
            }
        }
        self.pending_isolations = remaining;
    }

    /// Refreshes stable-state signatures for every application whose SLA
    /// held this interval (§3.3).
    fn record_stable_states(&mut self, outcome: &IntervalOutcome) {
        for (&instance, report) in &outcome.reports {
            for (&class, &metrics) in &report.per_class {
                let met = outcome
                    .sla
                    .get(&class.app)
                    .is_some_and(|s| !s.is_violation());
                if met {
                    self.stable
                        .record_stable(instance_key(instance), class, metrics, outcome.end);
                }
            }
        }
    }

    /// "The MRC is determined when a query class is first scheduled on the
    /// system" (§3.3): during stable intervals, compute the reference MRC
    /// of any class that does not have one yet, so later diagnosis can
    /// tell *changed* curves from *unknown* ones. One-shot per class.
    fn ensure_initial_mrcs(&mut self, sim: &Simulation, outcome: &IntervalOutcome) {
        for (&instance, report) in &outcome.reports {
            let key = instance_key(instance);
            for &class in report.per_class.keys() {
                let met = outcome
                    .sla
                    .get(&class.app)
                    .is_some_and(|s| !s.is_violation());
                let has_mrc = self.stable.get(key, class).is_some_and(|s| s.mrc.is_some());
                if met && !has_mrc {
                    let cap = sim.pool_pages(instance);
                    if let Some(curve) =
                        sim.recompute_mrc_with(instance, class, cap, self.config.mrc_mode)
                    {
                        let params = curve.params(cap, self.config.mrc_threshold);
                        self.stable.record_mrc(key, class, params, outcome.end);
                    }
                }
            }
        }
    }

    /// True when any server hosting a replica of `app` is CPU-saturated.
    fn cpu_saturated(&self, sim: &Simulation, outcome: &IntervalOutcome, app: AppId) -> bool {
        sim.replicas_of(app).iter().any(|&inst| {
            let server = sim.server_of(inst);
            // Snapshots are index-aligned with server ids, so no scan.
            outcome
                .servers
                .get(server.0 as usize)
                .is_some_and(|s| s.cpu_utilisation >= self.config.cpu_saturation)
        })
    }

    /// True when any server hosting a replica of `app` is I/O-saturated.
    fn io_saturated_server(
        &self,
        sim: &Simulation,
        outcome: &IntervalOutcome,
        app: AppId,
    ) -> Option<InstanceId> {
        sim.replicas_of(app).into_iter().find(|&inst| {
            let server = sim.server_of(inst);
            outcome
                .servers
                .get(server.0 as usize)
                .is_some_and(|s| s.io_utilisation >= self.config.io_saturation)
        })
    }

    /// Moves `class` away from `from`: onto an existing fitting replica,
    /// or provisions one and defers the placement.
    fn replace_class(
        &mut self,
        sim: &mut Simulation,
        from: InstanceId,
        class: ClassId,
        needed_pages: usize,
        actions: &mut Vec<Action>,
    ) {
        // A placement for this class may already be in flight (e.g. two
        // applications diagnosed the same interferer this interval).
        if self
            .pending_placements
            .iter()
            .any(|(a, c, _)| *a == class.app && *c == class)
        {
            return;
        }
        match pick_replacement_target(sim, class, needed_pages, from) {
            Some(target) => {
                sim.place_class(class.app, class, vec![target]);
                actions.push(Action::PlacedClass {
                    app: class.app,
                    class,
                    to: target,
                });
            }
            None => {
                if let Ok(instance) = sim.provision_replica(class.app) {
                    actions.push(Action::ProvisionedReplica {
                        app: class.app,
                        instance,
                    });
                    self.pending_placements.push((class.app, class, instance));
                }
                // No free server: nothing to do this interval; the streak
                // keeps growing and the coarse fallback will eventually
                // fire (and also fail gracefully if the pool is empty).
            }
        }
    }

    /// The per-application diagnosis on an SLA violation (§3.2–3.3).
    fn diagnose_and_act(
        &mut self,
        sim: &mut Simulation,
        outcome: &IntervalOutcome,
        app: AppId,
        actions: &mut Vec<Action>,
    ) {
        // (a) CPU saturation → reactive replica provisioning (§5.2).
        if self.cpu_saturated(sim, outcome, app) {
            if let Ok(instance) = sim.provision_replica(app) {
                actions.push(Action::ProvisionedReplica { app, instance });
                self.start_cooldown(app);
            }
            return;
        }

        // (b) Per-instance outlier diagnosis over ALL classes scheduled
        // there (interference can come from another application).
        let profiler = self.profiler.clone();
        for inst in sim.replicas_of(app) {
            let Some(report) = outcome.reports.get(&inst) else {
                continue;
            };
            if report.per_class.is_empty() {
                continue;
            }
            let key = instance_key(inst);
            // The paper's precondition (§3): diagnosis compares against
            // stable state, which must have been reached at least once.
            // With no baseline at all (cold start), deviation ratios are
            // meaningless — wait for a stable interval instead of acting.
            let any_baseline = report
                .per_class
                .keys()
                .any(|&c| self.stable.get(key, c).is_some());
            if !any_baseline {
                continue;
            }
            let detection = profile_span(&profiler, "outlier_detection", || {
                detect(&self.config.outlier, &report.per_class, |c| {
                    self.stable.get(key, c).map(|s| s.metrics)
                })
            });
            if !detection.is_empty() {
                actions.push(Action::DetectedOutliers {
                    instance: inst,
                    contexts: detection.outlier_contexts(),
                    mild: detection.count_severity(Severity::Mild),
                    extreme: detection.count_severity(Severity::Extreme),
                });
            }
            // Trace every per-metric finding, not just the summary: the
            // fine-grained stream is what golden traces pin down.
            if self.tracer.is_active() {
                for (&class, findings) in &detection.findings {
                    for f in findings {
                        self.tracer.emit(TraceEvent::OutlierFinding {
                            end_us: outcome.end.as_micros(),
                            instance: inst.0,
                            app: class.app.0,
                            template: class.template,
                            metric: f.metric.label(),
                            severity: match f.severity {
                                Severity::Mild => "mild",
                                Severity::Extreme => "extreme",
                            },
                            ratio: f.ratio,
                            degradation: f.indicates_degradation(),
                        });
                    }
                }
            }
            // §7 future work: surface lock-contention anomalies. No
            // automatic remedy — writes run on every replica under
            // read-one-write-all, so neither quotas nor re-placement can
            // dissolve a lock hotspot; the operator (or the application)
            // must act.
            let mut lock_contention = false;
            for (&class, findings) in &detection.findings {
                for f in findings {
                    if f.metric == MetricKind::LockWaits && f.indicates_degradation() {
                        lock_contention = true;
                        actions.push(Action::DetectedLockContention {
                            instance: inst,
                            class,
                            ratio: f.ratio,
                        });
                    }
                }
            }
            // Suspects: memory-metric outliers + newly scheduled classes;
            // when empty, the top-k heavyweight fallback (§3.3.2).
            let mut suspects = detection.memory_suspects();
            for c in &detection.new_classes {
                if !suspects.contains(c) {
                    suspects.push(*c);
                }
            }
            if suspects.is_empty() {
                if lock_contention {
                    // The violation is explained by lock waits; probing
                    // heavyweight classes for memory problems would only
                    // produce spurious quotas.
                    self.start_cooldown(app);
                    continue;
                }
                suspects = top_k_heavyweight(
                    &report.per_class,
                    MetricKind::PageAccesses,
                    self.config.top_k,
                );
            }
            let (problems, examined) = profile_span(&profiler, "mrc_update", || {
                find_problem_classes(
                    sim,
                    inst,
                    &suspects,
                    &mut self.stable,
                    &self.config,
                    outcome.end,
                    &profiler,
                )
            });
            for (class, params, changed) in examined {
                actions.push(Action::RecomputedMrc {
                    instance: inst,
                    class,
                    acceptable_pages: params.acceptable_memory_needed,
                    changed,
                });
            }
            match profile_span(&profiler, "action_selection", || {
                plan_memory_action(sim, inst, report, &problems, &self.config, &profiler)
            }) {
                MemoryPlan::Quotas(quotas) => {
                    for (class, pages) in quotas {
                        // Re-quota: drop any existing partition first.
                        sim.clear_quota(inst, class);
                        if sim.set_quota(inst, class, pages).is_ok() {
                            actions.push(Action::SetQuota {
                                instance: inst,
                                class,
                                pages,
                            });
                        }
                    }
                    self.start_cooldown(app);
                    return;
                }
                MemoryPlan::Replace {
                    class,
                    needed_pages,
                } => {
                    self.replace_class(sim, inst, class, needed_pages, actions);
                    self.start_cooldown(app);
                    return;
                }
                MemoryPlan::Nothing => {}
            }
        }

        // (c) I/O interference (§3.3.3): move the highest-I/O-rate class
        // off the saturated server. Gated on stable state existing, like
        // the memory path: a cold pool saturates the disk transiently and
        // must not trigger re-placements.
        if let Some(inst) = self.io_saturated_server(sim, outcome, app) {
            let has_baseline = outcome.reports.get(&inst).is_some_and(|r| {
                r.per_class
                    .keys()
                    .any(|&c| self.stable.get(instance_key(inst), c).is_some())
            });
            if !has_baseline {
                return;
            }
            if let Some(report) = outcome.reports.get(&inst) {
                let top_io = top_k_heavyweight(&report.per_class, MetricKind::IoRequests, 1);
                if let Some(&class) = top_io.first() {
                    let needed = self
                        .stable
                        .get(instance_key(inst), class)
                        .and_then(|s| s.mrc)
                        .map(|m| m.acceptable_memory_needed)
                        .unwrap_or(0);
                    self.replace_class(sim, inst, class, needed, actions);
                    if let Some(Action::PlacedClass {
                        app: a,
                        class: c,
                        to,
                    }) = actions.last().cloned()
                    {
                        // Re-tag for reporting: this was the I/O path.
                        actions.pop();
                        actions.push(Action::MovedIoHeavyClass {
                            app: a,
                            class: c,
                            to,
                        });
                    }
                    self.start_cooldown(app);
                }
            }
        }
    }

    /// Releases a replica when the application is comfortably under its
    /// SLA and its servers are mostly idle.
    fn maybe_release(
        &mut self,
        sim: &mut Simulation,
        outcome: &IntervalOutcome,
        app: AppId,
        actions: &mut Vec<Action>,
    ) {
        let replicas = sim.replicas_of(app);
        if replicas.len() <= self.config.min_replicas {
            return;
        }
        let utils: Vec<f64> = replicas
            .iter()
            .map(|&inst| {
                let server = sim.server_of(inst);
                outcome
                    .servers
                    .get(server.0 as usize)
                    .map(|s| s.cpu_utilisation)
                    .unwrap_or(1.0)
            })
            .collect();
        let all_idle = utils.iter().all(|&u| u < self.config.cpu_release);
        // Hysteresis: releasing must not re-saturate the survivors. The
        // victim's load spreads over the remaining replicas; require the
        // projected utilisation to stay well under the saturation trigger.
        let projected = utils.iter().sum::<f64>() / (replicas.len() as f64 - 1.0);
        if all_idle && projected < self.config.cpu_saturation * 0.75 {
            // Candidate: the most recently added replica. Never retire a
            // replica that carries a pinned class — that would silently
            // undo a fine-grained placement decision.
            let victim = *replicas.last().expect("non-empty");
            if sim.is_pinned_target(app, victim) {
                return;
            }
            sim.retire_replica(app, victim);
            actions.push(Action::RetiredReplica {
                app,
                instance: victim,
            });
            self.start_cooldown(app);
        }
    }
}

impl ClusterController for SelectiveRetuningController {
    fn on_interval(&mut self, sim: &mut Simulation, outcome: &IntervalOutcome) -> Vec<Action> {
        let mut actions = Vec::new();
        let profiler = self.profiler.clone();
        // Root span of the controller's slice of the interval: every
        // phase (and the sub-phases inside them) nests under it, so the
        // folded dump shows `…;controller;collection;stable_states`.
        let _controller = enter_span(&profiler, "controller");
        profile_span(&profiler, "collection", || {
            profile_span(&profiler, "complete_pending", || {
                self.complete_pending(sim, &mut actions)
            });
            profile_span(&profiler, "stable_states", || {
                self.record_stable_states(outcome)
            });
            profile_span(&profiler, "initial_mrcs", || {
                self.ensure_initial_mrcs(sim, outcome)
            });
        });

        for c in self.cooldown.values_mut() {
            *c = c.saturating_sub(1);
        }

        let apps: Vec<AppId> = outcome.sla.keys().copied().collect();
        for app in apps {
            let violated = outcome.sla[&app].is_violation();
            if violated {
                let streak = self.streak.entry(app).or_insert(0);
                *streak += 1;
                let streak = *streak;
                if self.on_cooldown(app) {
                    continue;
                }
                if streak >= self.config.fallback_after {
                    // Coarse-grained last resort: isolate the application
                    // on a fresh replica (§3.3.2 "we fall back on the
                    // coarse grained allocation solutions").
                    if let Ok(instance) = sim.provision_replica(app) {
                        actions.push(Action::ProvisionedReplica { app, instance });
                        self.pending_isolations.push((app, instance));
                        self.streak.insert(app, 0);
                        self.start_cooldown(app);
                    }
                    continue;
                }
                self.diagnose_and_act(sim, outcome, app, &mut actions);
            } else {
                self.streak.insert(app, 0);
                if !self.on_cooldown(app) {
                    self.maybe_release(sim, outcome, app, &mut actions);
                }
            }
        }
        emit_actions(&self.tracer, outcome.end.as_micros(), &actions);
        count_actions(&self.telemetry, &actions);
        actions
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_profiler(&mut self, profiler: SharedSpanProfiler) {
        self.profiler = Some(profiler);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_cluster::SimulationConfig;
    use odlb_engine::EngineConfig;
    use odlb_metrics::Sla;
    use odlb_storage::DomainId;
    use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};
    use odlb_workload::{ClientConfig, LoadFunction};

    fn quiet_sim() -> (Simulation, AppId) {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 5,
            ..Default::default()
        });
        let s = sim.add_server(4);
        let inst = sim.add_instance(s, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(6),
        );
        sim.assign_replica(app, inst);
        sim.start();
        (sim, app)
    }

    #[test]
    fn stable_intervals_build_signatures_and_take_no_action() {
        let (mut sim, _) = quiet_sim();
        let mut ctl = SelectiveRetuningController::new(ControllerConfig::default());
        let mut total_actions = 0;
        for _ in 0..4 {
            let outcome = sim.run_interval();
            total_actions += ctl.on_interval(&mut sim, &outcome).len();
        }
        assert_eq!(total_actions, 0, "quiet system needs no actions");
        assert!(
            ctl.stable_store().len() >= 10,
            "signatures recorded for active classes, got {}",
            ctl.stable_store().len()
        );
    }

    #[test]
    fn cpu_saturation_triggers_provisioning() {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 6,
            ..Default::default()
        });
        let s1 = sim.add_server(1); // tiny server saturates quickly
        sim.add_server(1); // free pool
        let inst = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        // Cache-resident CPU-heavy workload: overload is purely CPU.
        let app = sim.add_app(
            odlb_workload::synthetic::cpu_bound_workload(odlb_metrics::AppId(0), 64, 8),
            Sla::new(odlb_sim::SimDuration::from_millis(150)),
            ClientConfig {
                think_time_mean: odlb_sim::SimDuration::from_millis(100),
                load_noise: 0.0,
            },
            LoadFunction::Constant(60),
        );
        sim.assign_replica(app, inst);
        sim.start();
        let mut ctl = SelectiveRetuningController::new(ControllerConfig::default());
        let mut provisioned = false;
        let mut max_replicas = 1;
        for _ in 0..12 {
            let outcome = sim.run_interval();
            for a in ctl.on_interval(&mut sim, &outcome) {
                if matches!(a, Action::ProvisionedReplica { .. }) {
                    provisioned = true;
                }
            }
            max_replicas = max_replicas.max(sim.replicas_of(app).len());
        }
        assert!(provisioned, "overload must provision a replica");
        assert!(max_replicas >= 2, "the replica must come into service");
    }

    #[test]
    fn idle_overprovisioned_app_releases_replicas() {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 8,
            ..Default::default()
        });
        let s1 = sim.add_server(4);
        let s2 = sim.add_server(4);
        let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let i2 = sim.add_instance(s2, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(2),
        );
        sim.assign_replica(app, i1);
        sim.assign_replica(app, i2);
        sim.start();
        let mut ctl = SelectiveRetuningController::new(ControllerConfig::default());
        let mut retired = false;
        for _ in 0..6 {
            let outcome = sim.run_interval();
            for a in ctl.on_interval(&mut sim, &outcome) {
                if matches!(a, Action::RetiredReplica { .. }) {
                    retired = true;
                }
            }
        }
        assert!(retired, "idle second replica must be released");
        assert_eq!(sim.replicas_of(app).len(), 1);
    }

    #[test]
    fn cooldown_prevents_action_storms() {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 10,
            ..Default::default()
        });
        let s1 = sim.add_server(1);
        sim.add_server(1);
        sim.add_server(1);
        sim.add_server(1);
        let inst = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            odlb_workload::synthetic::cpu_bound_workload(odlb_metrics::AppId(0), 64, 8),
            Sla::new(odlb_sim::SimDuration::from_millis(100)),
            ClientConfig {
                think_time_mean: odlb_sim::SimDuration::from_millis(100),
                load_noise: 0.0,
            },
            LoadFunction::Constant(80),
        );
        sim.assign_replica(app, inst);
        sim.start();
        let mut ctl = SelectiveRetuningController::new(ControllerConfig::default());
        let mut provisions_in_first_two_ticks = 0;
        for _ in 0..2 {
            let outcome = sim.run_interval();
            provisions_in_first_two_ticks += ctl
                .on_interval(&mut sim, &outcome)
                .iter()
                .filter(|a| matches!(a, Action::ProvisionedReplica { .. }))
                .count();
        }
        assert!(
            provisions_in_first_two_ticks <= 1,
            "cooldown must throttle provisioning, got {provisions_in_first_two_ticks}"
        );
    }
}
