//! Baseline controllers the paper argues against (§1, §6).
//!
//! * [`CpuOnlyController`] — "existing coarse-grained provisioning
//!   solutions, even commercial ones such as IBM's Tivoli Intelligent
//!   Orchestrator, typically use very simple techniques, such as
//!   monitoring the CPU usage to trigger provisioning of server boxes."
//!   It provisions a whole replica on CPU saturation and does nothing
//!   else — so it is blind to memory and I/O interference.
//! * [`CoarseGrainedController`] — the isolate-everything reaction: on
//!   any SLA violation, give the suffering application a fresh dedicated
//!   replica and move *all* of it there (the VM-migration-style remedy).
//!   Effective but wasteful in machines — ablation A3 counts exactly that.

use crate::actions::{emit_actions, Action};
use crate::controller::ClusterController;
use odlb_cluster::InstanceId;
use odlb_cluster::{IntervalOutcome, Simulation};
use odlb_metrics::{AppId, ClassId};
use odlb_trace::Tracer;
use std::collections::BTreeMap;

/// Tivoli-style: provision on CPU saturation, otherwise shrug.
pub struct CpuOnlyController {
    /// CPU utilisation treated as saturation.
    pub cpu_saturation: f64,
    /// Intervals to wait between provisions per app.
    pub cooldown_intervals: u32,
    cooldown: BTreeMap<AppId, u32>,
    tracer: Tracer,
}

impl CpuOnlyController {
    /// Creates the controller with the given saturation threshold.
    pub fn new(cpu_saturation: f64, cooldown_intervals: u32) -> Self {
        CpuOnlyController {
            cpu_saturation,
            cooldown_intervals,
            cooldown: BTreeMap::new(),
            tracer: Tracer::new(),
        }
    }
}

impl ClusterController for CpuOnlyController {
    fn on_interval(&mut self, sim: &mut Simulation, outcome: &IntervalOutcome) -> Vec<Action> {
        let mut actions = Vec::new();
        for c in self.cooldown.values_mut() {
            *c = c.saturating_sub(1);
        }
        let apps: Vec<AppId> = outcome.sla.keys().copied().collect();
        for app in apps {
            if !outcome.sla[&app].is_violation() {
                continue;
            }
            if self.cooldown.get(&app).copied().unwrap_or(0) > 0 {
                continue;
            }
            let saturated = sim.replicas_of(app).iter().any(|&inst| {
                let server = sim.server_of(inst);
                outcome
                    .servers
                    .iter()
                    .any(|s| s.server == server && s.cpu_utilisation >= self.cpu_saturation)
            });
            if saturated {
                if let Ok(instance) = sim.provision_replica(app) {
                    actions.push(Action::ProvisionedReplica { app, instance });
                    self.cooldown.insert(app, self.cooldown_intervals);
                }
            }
            // Not CPU? Then this controller has no idea what to do.
        }
        emit_actions(&self.tracer, outcome.end.as_micros(), &actions);
        actions
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

/// Isolate-on-violation: the whole application moves to a dedicated fresh
/// replica, no questions asked.
pub struct CoarseGrainedController {
    /// Intervals to wait between isolations per app.
    pub cooldown_intervals: u32,
    cooldown: BTreeMap<AppId, u32>,
    pending: Vec<(AppId, InstanceId)>,
    tracer: Tracer,
}

impl CoarseGrainedController {
    /// Creates the controller.
    pub fn new(cooldown_intervals: u32) -> Self {
        CoarseGrainedController {
            cooldown_intervals,
            cooldown: BTreeMap::new(),
            pending: Vec::new(),
            tracer: Tracer::new(),
        }
    }
}

impl ClusterController for CoarseGrainedController {
    fn on_interval(&mut self, sim: &mut Simulation, outcome: &IntervalOutcome) -> Vec<Action> {
        let mut actions = Vec::new();
        for c in self.cooldown.values_mut() {
            *c = c.saturating_sub(1);
        }
        // Complete pending isolations.
        let mut remaining = Vec::new();
        for (app, target) in self.pending.drain(..) {
            if sim.replicas_of(app).contains(&target) {
                let class_count = sim.workload(app).classes.len();
                for idx in 0..class_count {
                    sim.place_class(app, ClassId::new(app, idx as u32), vec![target]);
                }
                actions.push(Action::CoarseFallback { app });
            } else {
                remaining.push((app, target));
            }
        }
        self.pending = remaining;

        let apps: Vec<AppId> = outcome.sla.keys().copied().collect();
        for app in apps {
            if !outcome.sla[&app].is_violation() {
                continue;
            }
            if self.cooldown.get(&app).copied().unwrap_or(0) > 0 {
                continue;
            }
            if let Ok(instance) = sim.provision_replica(app) {
                actions.push(Action::ProvisionedReplica { app, instance });
                self.pending.push((app, instance));
                self.cooldown.insert(app, self.cooldown_intervals);
            }
        }
        emit_actions(&self.tracer, outcome.end.as_micros(), &actions);
        actions
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

/// Live-VM-migration baseline: on an SLA violation, migrate the whole
/// database instance's VM to the least-loaded other server (the remedy
/// the paper's introduction singles out as too coarse — it moves every
/// co-located application along and cannot separate two tenants sharing
/// one DBMS at all).
pub struct VmMigrationController {
    /// Migration downtime charged to the move.
    pub downtime: odlb_sim::SimDuration,
    /// Intervals between migrations per app.
    pub cooldown_intervals: u32,
    cooldown: BTreeMap<AppId, u32>,
    tracer: Tracer,
}

impl VmMigrationController {
    /// Creates the controller.
    pub fn new(downtime: odlb_sim::SimDuration, cooldown_intervals: u32) -> Self {
        VmMigrationController {
            downtime,
            cooldown_intervals,
            cooldown: BTreeMap::new(),
            tracer: Tracer::new(),
        }
    }
}

impl ClusterController for VmMigrationController {
    fn on_interval(&mut self, sim: &mut Simulation, outcome: &IntervalOutcome) -> Vec<Action> {
        let mut actions = Vec::new();
        for c in self.cooldown.values_mut() {
            *c = c.saturating_sub(1);
        }
        let apps: Vec<AppId> = outcome.sla.keys().copied().collect();
        for app in apps {
            if !outcome.sla[&app].is_violation() {
                continue;
            }
            if self.cooldown.get(&app).copied().unwrap_or(0) > 0 {
                continue;
            }
            // Migrate the app's first replica to the emptiest other server.
            let Some(&instance) = sim.replicas_of(app).first() else {
                continue;
            };
            let from = sim.server_of(instance);
            let target = (0..sim.server_count() as u32)
                .map(odlb_metrics::ServerId)
                .filter(|&s| s != from)
                .min_by_key(|&s| {
                    outcome
                        .servers
                        .iter()
                        .find(|snap| snap.server == s)
                        .map(|snap| (snap.cpu_utilisation * 1000.0) as u64)
                        .unwrap_or(u64::MAX)
                });
            if let Some(target) = target {
                if sim.migrate_instance(instance, target, self.downtime) {
                    actions.push(Action::MigratedVm {
                        instance,
                        from,
                        to: target,
                    });
                    self.cooldown.insert(app, self.cooldown_intervals);
                }
            }
        }
        emit_actions(&self.tracer, outcome.end.as_micros(), &actions);
        actions
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_cluster::SimulationConfig;
    use odlb_engine::EngineConfig;
    use odlb_metrics::{Sla, SlaOutcome};
    use odlb_sim::SimDuration;
    use odlb_storage::DomainId;
    use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};
    use odlb_workload::{ClientConfig, LoadFunction};

    fn saturating_sim() -> (Simulation, AppId) {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 13,
            ..Default::default()
        });
        let s1 = sim.add_server(1);
        sim.add_server(1);
        let inst = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        // Cache-resident CPU-heavy workload: overload is purely CPU.
        let app = sim.add_app(
            odlb_workload::synthetic::cpu_bound_workload(odlb_metrics::AppId(0), 64, 8),
            Sla::new(SimDuration::from_millis(150)),
            ClientConfig {
                think_time_mean: SimDuration::from_millis(100),
                load_noise: 0.0,
            },
            LoadFunction::Constant(60),
        );
        sim.assign_replica(app, inst);
        sim.start();
        (sim, app)
    }

    #[test]
    fn cpu_only_provisions_under_saturation() {
        let (mut sim, app) = saturating_sim();
        let mut ctl = CpuOnlyController::new(0.9, 3);
        let mut provisioned = 0;
        for _ in 0..10 {
            let outcome = sim.run_interval();
            provisioned += ctl
                .on_interval(&mut sim, &outcome)
                .iter()
                .filter(|a| matches!(a, Action::ProvisionedReplica { .. }))
                .count();
        }
        assert!(provisioned >= 1, "warm CPU saturation must provision");
        assert!(sim.replicas_of(app).len() >= 2);
    }

    #[test]
    fn cpu_only_is_blind_to_non_cpu_violations() {
        // A violation with idle CPUs (tiny SLA, light load): the Tivoli
        // baseline must do nothing at all.
        let mut sim = Simulation::new(SimulationConfig {
            seed: 14,
            ..Default::default()
        });
        let s1 = sim.add_server(8);
        sim.add_server(8);
        let inst = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            // Impossible SLA: every interval violates, but CPU is idle.
            Sla::new(SimDuration::from_micros(1)),
            ClientConfig::default(),
            LoadFunction::Constant(2),
        );
        sim.assign_replica(app, inst);
        sim.start();
        let mut ctl = CpuOnlyController::new(0.9, 1);
        for _ in 0..4 {
            let outcome = sim.run_interval();
            assert_eq!(outcome.sla[&app], SlaOutcome::Violated);
            assert!(ctl.on_interval(&mut sim, &outcome).is_empty());
        }
        assert_eq!(sim.replicas_of(app).len(), 1);
    }

    #[test]
    fn vm_migration_moves_the_instance() {
        let (mut sim, app) = saturating_sim();
        let mut ctl = VmMigrationController::new(SimDuration::from_millis(500), 3);
        let inst = sim.replicas_of(app)[0];
        let before = sim.server_of(inst);
        let mut first_move = None;
        for _ in 0..10 {
            let outcome = sim.run_interval();
            for a in ctl.on_interval(&mut sim, &outcome) {
                if matches!(a, Action::MigratedVm { .. }) && first_move.is_none() {
                    first_move = Some(sim.server_of(inst));
                }
            }
        }
        // The baseline may ping-pong on later violations (it has no
        // diagnosis); what matters is that it moved at all.
        let after = first_move.expect("violation must trigger a migration");
        assert_ne!(after, before);
    }

    #[test]
    fn vm_migration_cannot_separate_shared_tenants() {
        // Two apps share one instance; migrating the VM moves BOTH — the
        // memory interference between them survives the migration. This
        // is the paper's core argument for fine-grained actions.
        let mut sim = Simulation::new(SimulationConfig {
            seed: 70,
            ..Default::default()
        });
        let s1 = sim.add_server(4);
        sim.add_server(4);
        let inst = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let a = sim.add_app(
            odlb_workload::tpcw::tpcw_workload(odlb_workload::tpcw::TpcwConfig::default()),
            Sla::new(SimDuration::from_micros(1)), // always violated
            ClientConfig::default(),
            LoadFunction::Constant(5),
        );
        let b = sim.add_app(
            odlb_workload::rubis::rubis_workload(odlb_workload::rubis::RubisConfig {
                app: odlb_metrics::AppId(1),
                ..Default::default()
            }),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(5),
        );
        sim.assign_replica(a, inst);
        sim.assign_replica(b, inst);
        sim.start();
        let mut ctl = VmMigrationController::new(SimDuration::from_millis(500), 2);
        for _ in 0..6 {
            let outcome = sim.run_interval();
            ctl.on_interval(&mut sim, &outcome);
        }
        // Both apps still share the same instance — and thus the same
        // buffer pool — wherever the VM went.
        assert_eq!(sim.replicas_of(a), sim.replicas_of(b));
    }

    #[test]
    fn coarse_grained_isolates_whole_app() {
        let (mut sim, app) = saturating_sim();
        let mut ctl = CoarseGrainedController::new(3);
        let mut isolated = false;
        for _ in 0..8 {
            let outcome = sim.run_interval();
            for a in ctl.on_interval(&mut sim, &outcome) {
                if matches!(a, Action::CoarseFallback { .. }) {
                    isolated = true;
                }
            }
        }
        assert!(isolated, "coarse controller moves the whole app");
        // Every class pinned to the new replica.
        let new_replica = *sim.replicas_of(app).last().unwrap();
        for idx in 0..sim.workload(app).classes.len() {
            let placement = sim.placement_of(app, ClassId::new(app, idx as u32));
            assert_eq!(placement, vec![new_replica]);
        }
    }
}
