//! Controller tuning knobs, all defaulted to the paper's settings where it
//! states them and to conservative classics elsewhere.

use odlb_mrc::MrcMode;
use odlb_outlier::OutlierConfig;

/// Parameters of the selective retuning controller.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Outlier detection parameters (1.5/3.0 Tukey fences by default).
    pub outlier: OutlierConfig,
    /// Which stack-distance tracker MRC recomputation instantiates:
    /// exact Mattson (default, byte-identical to the historical
    /// behaviour), geometric buckets, or SHARDS-style spatial sampling
    /// for clusters with very many tenant classes.
    pub mrc_mode: MrcMode,
    /// MRC acceptability threshold: acceptable memory is the smallest size
    /// whose miss ratio is within this of ideal.
    pub mrc_threshold: f64,
    /// Relative change of MRC parameters that marks a class as a *problem
    /// class* during diagnosis (0.25 = ±25%).
    pub mrc_change_rel: f64,
    /// Absolute ideal-miss-ratio deterioration that also marks a problem.
    pub mrc_ratio_slack: f64,
    /// CPU utilisation above which a server counts as saturated.
    pub cpu_saturation: f64,
    /// CPU utilisation below which (across all replicas) one replica is
    /// released back to the pool.
    pub cpu_release: f64,
    /// Disk utilisation above which a server counts as I/O-saturated.
    pub io_saturation: f64,
    /// How many heavyweight classes the no-outlier fallback investigates.
    pub top_k: usize,
    /// Intervals to wait after an action before acting again for the same
    /// application (lets provisioning/warm-up take effect).
    pub cooldown_intervals: u32,
    /// Consecutive violated-and-acted intervals after which the controller
    /// falls back to coarse-grained isolation.
    pub fallback_after: u32,
    /// Minimum replicas kept per application.
    pub min_replicas: usize,
    /// Floor on any enforced quota (pages). A class whose MRC is flat
    /// still needs room for its in-flight read-ahead extents and hot
    /// lookups; granting its literal acceptable memory (possibly one
    /// page) would thrash the prefetch pipeline.
    pub min_quota_pages: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            outlier: OutlierConfig::default(),
            mrc_mode: MrcMode::Exact,
            mrc_threshold: 0.05,
            mrc_change_rel: 0.25,
            mrc_ratio_slack: 0.10,
            cpu_saturation: 0.85,
            cpu_release: 0.30,
            io_saturation: 0.90,
            top_k: 3,
            cooldown_intervals: 3,
            fallback_after: 6,
            min_replicas: 1,
            min_quota_pages: 512,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_classic_tukey_fences() {
        let c = ControllerConfig::default();
        assert_eq!(c.outlier.inner_multiplier, 1.5);
        assert_eq!(c.outlier.outer_multiplier, 3.0);
        assert!(c.cpu_saturation > c.cpu_release);
        assert!(c.fallback_after > c.cooldown_intervals);
        // Exact by default: golden run digests must not move.
        assert_eq!(c.mrc_mode, MrcMode::Exact);
    }
}
