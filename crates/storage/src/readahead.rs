//! InnoDB-style linear read-ahead detection.
//!
//! InnoDB divides every tablespace into 64-page *extents*. When a
//! sufficiently long run of sequentially increasing page accesses is
//! observed inside an extent, the engine asynchronously prefetches the
//! whole next extent. The paper monitors per-query-class read-ahead request
//! counts as one of its outlier metrics: dropping the `O_DATE` index turns
//! the BestSeller query into a scan, and its read-ahead count explodes
//! relative to the stable state (Fig. 4(d)).
//!
//! The detector here is deliberately the same shape: per (consumer, space)
//! run tracking, a trigger threshold within the extent, and one prefetch of
//! the following extent per trigger.

use crate::page::PageId;
use std::collections::HashMap;

/// Pages per extent (InnoDB constant).
pub const EXTENT_PAGES: u64 = 64;

/// Default number of sequentially increasing accesses within an extent that
/// triggers prefetch of the next extent. InnoDB's default threshold is 56
/// of 64; we keep that.
pub const DEFAULT_TRIGGER: u32 = 56;

#[derive(Clone, Copy, Debug, Default)]
struct RunState {
    last_page: Option<u64>,
    run_len: u32,
    /// Extent index for which prefetch was already issued, to avoid
    /// re-triggering on continued access within the same extent.
    triggered_extent: Option<u64>,
}

/// Detects linear scans and decides when to issue read-ahead.
///
/// Keyed by an opaque `consumer` id (the engine keys by query class) and
/// the tablespace, because concurrent streams must not break each other's
/// run detection.
#[derive(Clone, Debug)]
pub struct ReadAheadDetector {
    trigger: u32,
    runs: HashMap<(u64, u32), RunState>,
    issued: u64,
}

impl Default for ReadAheadDetector {
    fn default() -> Self {
        Self::new(DEFAULT_TRIGGER)
    }
}

impl ReadAheadDetector {
    /// Creates a detector that prefetches after `trigger` sequential
    /// accesses within one extent.
    pub fn new(trigger: u32) -> Self {
        assert!(
            (1..=EXTENT_PAGES as u32).contains(&trigger),
            "trigger must be within one extent"
        );
        ReadAheadDetector {
            trigger,
            runs: HashMap::new(),
            issued: 0,
        }
    }

    /// Observes one page access by `consumer`. Returns the first page of
    /// the extent to prefetch (64 pages starting there) when the linear
    /// read-ahead heuristic fires, else `None`.
    pub fn observe(&mut self, consumer: u64, page: PageId) -> Option<PageId> {
        let key = (consumer, page.space.0);
        let state = self.runs.entry(key).or_default();
        let sequential = state.last_page == Some(page.page_no.wrapping_sub(1));
        state.run_len = if sequential { state.run_len + 1 } else { 1 };
        state.last_page = Some(page.page_no);

        let extent = page.page_no / EXTENT_PAGES;
        if state.run_len >= self.trigger && state.triggered_extent != Some(extent) {
            state.triggered_extent = Some(extent);
            self.issued += 1;
            let next_extent_start = (extent + 1) * EXTENT_PAGES;
            return Some(PageId::new(page.space, next_extent_start));
        }
        None
    }

    /// Total read-ahead requests issued since creation.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Drops all run state (e.g. when a consumer is re-placed elsewhere).
    pub fn reset_consumer(&mut self, consumer: u64) {
        self.runs.retain(|&(c, _), _| c != consumer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::SpaceId;

    fn pid(space: u32, no: u64) -> PageId {
        PageId::new(SpaceId(space), no)
    }

    #[test]
    fn long_sequential_run_triggers_prefetch_of_next_extent() {
        let mut d = ReadAheadDetector::new(8);
        let mut fired = None;
        for i in 0..10 {
            if let Some(p) = d.observe(1, pid(0, i)) {
                fired = Some((i, p));
                break;
            }
        }
        let (at, p) = fired.expect("read-ahead should fire");
        assert_eq!(at, 7, "fires on the trigger-th access");
        assert_eq!(p, pid(0, EXTENT_PAGES), "prefetches the next extent");
        assert_eq!(d.issued(), 1);
    }

    #[test]
    fn random_access_never_triggers() {
        let mut d = ReadAheadDetector::new(4);
        let pages = [5u64, 900, 3, 77, 12, 401, 9, 1000, 55, 2];
        for &p in &pages {
            assert_eq!(d.observe(1, pid(0, p)), None);
        }
        assert_eq!(d.issued(), 0);
    }

    #[test]
    fn run_must_be_within_one_consumer() {
        let mut d = ReadAheadDetector::new(4);
        // Interleaved consumers each advance their own run.
        for i in 0..3 {
            assert_eq!(d.observe(1, pid(0, i)), None);
            assert_eq!(d.observe(2, pid(0, 100 + i)), None);
        }
        // Fourth sequential access per consumer fires for each.
        assert!(d.observe(1, pid(0, 3)).is_some());
        assert!(d.observe(2, pid(0, 103)).is_some());
    }

    #[test]
    fn retrigger_requires_new_extent() {
        let mut d = ReadAheadDetector::new(4);
        for i in 0..4 {
            d.observe(1, pid(0, i));
        }
        assert_eq!(d.issued(), 1);
        // Continuing within the same extent: no duplicate prefetch.
        for i in 4..20 {
            assert_eq!(d.observe(1, pid(0, i)), None);
        }
        // Crossing into the next extent and keeping the run: fires again.
        let mut fired = false;
        for i in 20..EXTENT_PAGES + 8 {
            if d.observe(1, pid(0, i)).is_some() {
                fired = true;
            }
        }
        assert!(fired, "a scan fires once per extent");
        assert_eq!(d.issued(), 2);
    }

    #[test]
    fn broken_run_resets() {
        let mut d = ReadAheadDetector::new(4);
        d.observe(1, pid(0, 0));
        d.observe(1, pid(0, 1));
        d.observe(1, pid(0, 2));
        d.observe(1, pid(0, 50)); // break
        assert_eq!(d.observe(1, pid(0, 51)), None);
        assert_eq!(d.observe(1, pid(0, 52)), None);
        assert!(d.observe(1, pid(0, 53)).is_some(), "run of 4 from 50");
    }

    #[test]
    fn different_spaces_do_not_mix() {
        let mut d = ReadAheadDetector::new(4);
        for i in 0..3 {
            d.observe(1, pid(0, i));
        }
        // Same consumer, other space: separate run, no trigger.
        assert_eq!(d.observe(1, pid(9, 3)), None);
    }

    #[test]
    fn reset_consumer_clears_runs() {
        let mut d = ReadAheadDetector::new(4);
        for i in 0..3 {
            d.observe(1, pid(0, i));
        }
        d.reset_consumer(1);
        assert_eq!(d.observe(1, pid(0, 3)), None, "run was forgotten");
    }

    #[test]
    #[should_panic(expected = "within one extent")]
    fn zero_trigger_rejected() {
        ReadAheadDetector::new(0);
    }
}
