//! Page addressing shared by the storage and buffer-pool layers.
//!
//! A page is identified by the tablespace it lives in ([`SpaceId`], one per
//! table or index in the simulated schema) and its page number within that
//! space. 16 KiB pages match InnoDB, the engine the paper instrumented.

use std::fmt;

/// Bytes per page (InnoDB default). 128 MiB of buffer pool therefore holds
/// 8192 pages — the configuration in the paper's Table 2 scenario.
pub const PAGE_SIZE_BYTES: u64 = 16 * 1024;

/// Identifies a tablespace (one table or index file).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(pub u32);

/// Identifies one 16 KiB page within a tablespace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// The tablespace this page belongs to.
    pub space: SpaceId,
    /// Page number within the space, starting at 0.
    pub page_no: u64,
}

impl PageId {
    /// Constructs a page id.
    pub const fn new(space: SpaceId, page_no: u64) -> Self {
        PageId { space, page_no }
    }

    /// The page `n` positions after this one in the same space.
    pub fn offset(self, n: u64) -> PageId {
        PageId {
            space: self.space,
            page_no: self.page_no + n,
        }
    }

    /// True when `other` is the page immediately following this one in the
    /// same space (used by the sequential-access detector).
    pub fn is_successor_of(self, other: PageId) -> bool {
        self.space == other.space && self.page_no == other.page_no + 1
    }
}

impl fmt::Debug for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space{}", self.0)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{}", self.space, self.page_no)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.space.0, self.page_no)
    }
}

/// Converts a byte size to whole pages (rounding up).
pub fn bytes_to_pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE_BYTES)
}

/// Converts megabytes to whole pages.
pub fn megabytes_to_pages(mb: u64) -> u64 {
    bytes_to_pages(mb * 1024 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let p = PageId::new(SpaceId(3), 10);
        assert_eq!(p.offset(5).page_no, 15);
        assert!(p.offset(1).is_successor_of(p));
        assert!(!p.offset(2).is_successor_of(p));
        assert!(!PageId::new(SpaceId(4), 11).is_successor_of(p));
    }

    #[test]
    fn sizing_matches_paper_configuration() {
        // 128 MiB buffer pool == 8192 InnoDB pages (Table 2 configuration).
        assert_eq!(megabytes_to_pages(128), 8192);
        // ~4 GiB TPC-W database == 262144 pages.
        assert_eq!(megabytes_to_pages(4096), 262_144);
    }

    #[test]
    fn bytes_round_up() {
        assert_eq!(bytes_to_pages(1), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE_BYTES), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE_BYTES + 1), 2);
        assert_eq!(bytes_to_pages(0), 0);
    }
}
