//! Single-spindle disk with a parametric service-time model and FCFS queue.

use odlb_sim::station::Admission;
use odlb_sim::{SimDuration, SimTime, Station};

/// Whether a request is positioned randomly (pays seek + rotation) or
/// continues a sequential stream (transfer only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Random access: head movement plus rotational delay plus transfer.
    Random,
    /// Sequential access: transfer only (the head is already positioned).
    Sequential,
}

/// Service-time parameters for one spindle.
///
/// Defaults approximate the striped 15K RPM SCSI storage of the paper's
/// Dell PowerEdge era: ~2.5 ms average positioning, ~105 MB/s streaming,
/// so a random 16 KiB page costs ~2.65 ms and a sequential page ~0.15 ms.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Seek + rotational latency paid once per random request.
    pub positioning: SimDuration,
    /// Transfer time per 16 KiB page.
    pub transfer_per_page: SimDuration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            positioning: SimDuration::from_micros(2_500),
            transfer_per_page: SimDuration::from_micros(150),
        }
    }
}

impl DiskModel {
    /// Service time for a request of `pages` contiguous pages.
    pub fn service_time(&self, kind: IoKind, pages: u64) -> SimDuration {
        let transfer = self.transfer_per_page * pages;
        match kind {
            IoKind::Random => self.positioning + transfer,
            IoKind::Sequential => transfer,
        }
    }
}

/// Running I/O counters for one consumer of a disk (a query class, an
/// application, or a VM domain, depending on who is accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Block read requests issued (one per `Disk::read` call).
    pub requests: u64,
    /// Pages transferred.
    pub pages: u64,
    /// Of which issued by the read-ahead engine.
    pub readahead_requests: u64,
}

impl IoCounters {
    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: IoCounters) {
        self.requests += other.requests;
        self.pages += other.pages;
        self.readahead_requests += other.readahead_requests;
    }
}

/// A disk: a [`DiskModel`] in front of a single-server FCFS station.
#[derive(Clone, Debug)]
pub struct Disk {
    model: DiskModel,
    station: Station,
    counters: IoCounters,
}

impl Disk {
    /// Creates a disk with the given service-time model.
    pub fn new(model: DiskModel) -> Self {
        Disk {
            model,
            station: Station::new(1),
            counters: IoCounters::default(),
        }
    }

    /// Submits a read of `pages` contiguous pages arriving at `now`;
    /// returns FCFS start/completion. `readahead` marks prefetch traffic in
    /// the counters (it queues identically).
    pub fn read(&mut self, now: SimTime, kind: IoKind, pages: u64, readahead: bool) -> Admission {
        let service = self.model.service_time(kind, pages);
        self.counters.requests += 1;
        self.counters.pages += pages;
        if readahead {
            self.counters.readahead_requests += 1;
        }
        self.station.submit(now, service)
    }

    /// Cumulative counters since creation.
    pub fn counters(&self) -> IoCounters {
        self.counters
    }

    /// Utilisation since the previous probe (see
    /// [`Station::utilisation_since_snapshot`]).
    pub fn utilisation_since_snapshot(&mut self, now: SimTime) -> f64 {
        self.station.utilisation_since_snapshot(now)
    }

    /// Mean queueing delay over all requests.
    pub fn mean_wait(&self) -> SimDuration {
        self.station.mean_wait()
    }

    /// The service-time model.
    pub fn model(&self) -> DiskModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pays_positioning_sequential_does_not() {
        let m = DiskModel::default();
        let r = m.service_time(IoKind::Random, 1);
        let s = m.service_time(IoKind::Sequential, 1);
        assert_eq!(r, SimDuration::from_micros(2_650));
        assert_eq!(s, SimDuration::from_micros(150));
    }

    #[test]
    fn multi_page_transfer_scales() {
        let m = DiskModel::default();
        assert_eq!(
            m.service_time(IoKind::Sequential, 64),
            SimDuration::from_micros(64 * 150)
        );
    }

    #[test]
    fn requests_queue_fcfs() {
        let mut d = Disk::new(DiskModel::default());
        let a = d.read(SimTime::ZERO, IoKind::Random, 1, false);
        let b = d.read(SimTime::ZERO, IoKind::Random, 1, false);
        assert_eq!(a.completion, SimTime::from_micros(2_650));
        assert_eq!(b.start, a.completion);
        assert_eq!(b.completion, SimTime::from_micros(5_300));
    }

    #[test]
    fn counters_track_traffic() {
        let mut d = Disk::new(DiskModel::default());
        d.read(SimTime::ZERO, IoKind::Random, 1, false);
        d.read(SimTime::ZERO, IoKind::Sequential, 64, true);
        let c = d.counters();
        assert_eq!(c.requests, 2);
        assert_eq!(c.pages, 65);
        assert_eq!(c.readahead_requests, 1);
    }

    #[test]
    fn counters_absorb() {
        let mut a = IoCounters {
            requests: 1,
            pages: 2,
            readahead_requests: 0,
        };
        a.absorb(IoCounters {
            requests: 3,
            pages: 4,
            readahead_requests: 5,
        });
        assert_eq!(
            a,
            IoCounters {
                requests: 4,
                pages: 6,
                readahead_requests: 5
            }
        );
    }
}
