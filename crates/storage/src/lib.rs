//! # odlb-storage — disk model, shared I/O paths, read-ahead
//!
//! The storage substrate under the simulated database engines. It provides:
//!
//! * [`PageId`] / [`SpaceId`] — page addressing shared with the buffer pool.
//! * [`DiskModel`] — a parametric service-time model (seek + rotation +
//!   per-page transfer, with a sequential-access discount) for a single
//!   spindle.
//! * [`Disk`] — a [`DiskModel`] attached to a FCFS queueing station;
//!   submitting requests yields exact FCFS completion times, so I/O wait
//!   grows when tenants contend for the spindle.
//! * [`SharedIoPath`] — the Xen *domain-0* abstraction: several VM domains
//!   funnel their I/O through one back-end disk with per-domain accounting.
//!   This is the mechanism behind the paper's Table 3 (two RUBiS instances
//!   in two domains collapse each other's throughput through domain-0).
//! * [`ReadAheadDetector`] — InnoDB-style linear read-ahead: when a query
//!   class touches enough sequentially increasing pages inside one extent,
//!   the next extent is prefetched. The paper monitors the *number of
//!   read-ahead requests* per query class as one of its outlier metrics
//!   (Fig. 4(d)): a query that degenerates into large scans shows a sharp
//!   read-ahead spike.

pub mod disk;
pub mod page;
pub mod readahead;
pub mod shared;

pub use disk::{Disk, DiskModel, IoKind};
pub use page::{PageId, SpaceId};
pub use readahead::{ReadAheadDetector, EXTENT_PAGES};
pub use shared::{DomainId, SharedIoPath};
