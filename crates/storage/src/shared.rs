//! The Xen domain-0 shared I/O path.
//!
//! Xen's split-driver model routes every guest domain's block I/O through
//! the control domain (domain-0), so domains that are isolated in CPU and
//! memory still contend at the storage back-end. The paper's Table 3 shows
//! exactly this: two I/O-intensive RUBiS instances in separate domains on
//! one physical machine collapse to a third of their standalone throughput.
//!
//! [`SharedIoPath`] models that back-end: one [`Disk`] shared by all
//! domains of a physical machine, with per-domain I/O accounting that the
//! diagnosis layer reads to attribute interference.

use crate::disk::{Disk, DiskModel, IoCounters, IoKind};
use odlb_sim::station::Admission;
use odlb_sim::{SimDuration, SimTime};
use odlb_telemetry::{enter_span, span_units, SharedSpanProfiler, Telemetry};
use std::collections::HashMap;

/// Identifies a VM domain on one physical machine. Domain 0 is the control
/// domain; guests are 1, 2, ….
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomainId(pub u32);

/// One physical machine's storage back-end, shared by its VM domains.
#[derive(Clone, Debug)]
pub struct SharedIoPath {
    disk: Disk,
    per_domain: HashMap<DomainId, IoCounters>,
    profiler: Option<SharedSpanProfiler>,
}

impl SharedIoPath {
    /// Creates a shared path over a disk with the given model.
    pub fn new(model: DiskModel) -> Self {
        SharedIoPath {
            disk: Disk::new(model),
            per_domain: HashMap::new(),
            profiler: None,
        }
    }

    /// Installs a span profiler: every read records a `storage_read`
    /// span whose sim units are the request's simulated service time
    /// (microseconds). Observation-only.
    pub fn set_profiler(&mut self, profiler: SharedSpanProfiler) {
        self.profiler = Some(profiler);
    }

    /// Submits a read on behalf of `domain`. All domains share one FCFS
    /// queue — this is where cross-domain interference comes from.
    pub fn read(
        &mut self,
        domain: DomainId,
        now: SimTime,
        kind: IoKind,
        pages: u64,
        readahead: bool,
    ) -> Admission {
        let _span = enter_span(&self.profiler, "storage_read");
        let entry = self.per_domain.entry(domain).or_default();
        entry.requests += 1;
        entry.pages += pages;
        if readahead {
            entry.readahead_requests += 1;
        }
        let adm = self.disk.read(now, kind, pages, readahead);
        span_units(&self.profiler, adm.completion.since(adm.start).as_micros());
        adm
    }

    /// Cumulative counters for one domain.
    pub fn domain_counters(&self, domain: DomainId) -> IoCounters {
        self.per_domain.get(&domain).copied().unwrap_or_default()
    }

    /// Counters summed over all domains (equals the disk's own counters).
    pub fn total_counters(&self) -> IoCounters {
        let mut total = IoCounters::default();
        for c in self.per_domain.values() {
            total.absorb(*c);
        }
        total
    }

    /// Fraction of total I/O requests issued by `domain` (0 when idle).
    /// The paper's I/O-interference heuristic removes work in decreasing
    /// order of exactly this share.
    pub fn domain_share(&self, domain: DomainId) -> f64 {
        let total = self.total_counters().requests;
        if total == 0 {
            0.0
        } else {
            self.domain_counters(domain).requests as f64 / total as f64
        }
    }

    /// Back-end utilisation since the last probe.
    pub fn utilisation_since_snapshot(&mut self, now: SimTime) -> f64 {
        self.disk.utilisation_since_snapshot(now)
    }

    /// Mean queueing delay at the back-end over all requests.
    pub fn mean_wait(&self) -> SimDuration {
        self.disk.mean_wait()
    }

    /// Exports per-domain I/O counters into a telemetry registry (domains
    /// iterated in sorted order, so export stays deterministic despite the
    /// `HashMap`). The counters are cumulative, so `set_total` keeps the
    /// telemetry series monotone. No-op when `telemetry` is inactive.
    pub fn export_telemetry(&self, telemetry: &Telemetry, machine: &str) {
        if !telemetry.is_active() {
            return;
        }
        let mut domains: Vec<(&DomainId, &IoCounters)> = self.per_domain.iter().collect();
        domains.sort_by_key(|(d, _)| **d);
        for (domain, counters) in domains {
            let domain = domain.0.to_string();
            let labels = [("domain", domain.as_str()), ("machine", machine)];
            for (name, help, total) in [
                (
                    "odlb_io_requests_total",
                    "Disk read requests issued by a VM domain.",
                    counters.requests,
                ),
                (
                    "odlb_io_pages_total",
                    "Pages read from disk by a VM domain.",
                    counters.pages,
                ),
                (
                    "odlb_io_readahead_requests_total",
                    "Asynchronous read-ahead requests issued by a VM domain.",
                    counters.readahead_requests,
                ),
            ] {
                if let Some(c) = telemetry.counter(name, help, &labels) {
                    c.set_total(total);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_share_one_queue() {
        let mut path = SharedIoPath::new(DiskModel::default());
        let a = path.read(DomainId(1), SimTime::ZERO, IoKind::Random, 1, false);
        let b = path.read(DomainId(2), SimTime::ZERO, IoKind::Random, 1, false);
        // Domain 2's request waits behind domain 1's: interference.
        assert_eq!(b.start, a.completion);
    }

    #[test]
    fn per_domain_accounting() {
        let mut path = SharedIoPath::new(DiskModel::default());
        for _ in 0..3 {
            path.read(DomainId(1), SimTime::ZERO, IoKind::Random, 2, false);
        }
        path.read(DomainId(2), SimTime::ZERO, IoKind::Sequential, 64, true);
        let d1 = path.domain_counters(DomainId(1));
        let d2 = path.domain_counters(DomainId(2));
        assert_eq!(d1.requests, 3);
        assert_eq!(d1.pages, 6);
        assert_eq!(d2.readahead_requests, 1);
        assert_eq!(path.total_counters().requests, 4);
    }

    #[test]
    fn domain_share_attributes_interference() {
        let mut path = SharedIoPath::new(DiskModel::default());
        for _ in 0..87 {
            path.read(DomainId(1), SimTime::ZERO, IoKind::Random, 1, false);
        }
        for _ in 0..13 {
            path.read(DomainId(2), SimTime::ZERO, IoKind::Random, 1, false);
        }
        assert!((path.domain_share(DomainId(1)) - 0.87).abs() < 1e-12);
        assert!((path.domain_share(DomainId(2)) - 0.13).abs() < 1e-12);
    }

    #[test]
    fn export_telemetry_is_monotone_and_deterministic() {
        let mut path = SharedIoPath::new(DiskModel::default());
        path.read(DomainId(2), SimTime::ZERO, IoKind::Random, 1, false);
        path.read(DomainId(1), SimTime::ZERO, IoKind::Sequential, 64, true);
        let t = Telemetry::attached();
        path.export_telemetry(&t, "pm0");
        path.read(DomainId(1), SimTime::ZERO, IoKind::Random, 1, false);
        path.export_telemetry(&t, "pm0");
        let prom = t.render_prometheus().unwrap();
        assert!(prom.contains("odlb_io_requests_total{domain=\"1\",machine=\"pm0\"} 2"));
        assert!(prom.contains("odlb_io_pages_total{domain=\"1\",machine=\"pm0\"} 65"));
        assert!(prom.contains("odlb_io_readahead_requests_total{domain=\"2\",machine=\"pm0\"} 0"));
        path.export_telemetry(&Telemetry::inactive(), "pm0");
    }

    #[test]
    fn idle_domain_has_zero_share() {
        let path = SharedIoPath::new(DiskModel::default());
        assert_eq!(path.domain_share(DomainId(7)), 0.0);
        assert_eq!(path.domain_counters(DomainId(7)), IoCounters::default());
    }
}
