//! The quota mechanism: a general partition plus dedicated per-class
//! partitions (paper §3.3.2, Table 1).
//!
//! "The second option is to limit the amount of buffer pool that the
//! problem query class is allocated, by enforcing a fixed quota allocation
//! for the respective query class, while maintaining the placement of the
//! query on the same replica as before." The pool is "divided into two
//! dedicated partitions: one partition for servicing the BestSeller query
//! class and the other partition for all other queries of the application".
//!
//! Capacity invariant: the general partition plus all quota partitions
//! always sum to the configured total.

use crate::pool::{AccessOutcome, BufferPool, ClassCounters};
use odlb_metrics::ClassId;
use odlb_storage::PageId;
use odlb_telemetry::{enter_span, span_units, SharedSpanProfiler, Telemetry};
use std::collections::HashMap;

/// A buffer pool with optional per-class quota partitions.
#[derive(Clone, Debug)]
pub struct PartitionedPool {
    total_pages: usize,
    general: BufferPool,
    quotas: HashMap<ClassId, BufferPool>,
    profiler: Option<SharedSpanProfiler>,
}

/// Errors from quota manipulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaError {
    /// Granting the quota would leave the general partition under one page.
    InsufficientGeneral {
        /// Pages available for new quotas.
        available: usize,
        /// Pages requested.
        requested: usize,
    },
    /// The class already has a quota (clear it first).
    AlreadyQuotaed,
    /// Quota must be at least one page.
    ZeroQuota,
}

impl PartitionedPool {
    /// Creates a pool of `total_pages` pages, all in the general partition.
    pub fn new(total_pages: usize) -> Self {
        PartitionedPool {
            total_pages,
            general: BufferPool::new(total_pages),
            quotas: HashMap::new(),
            profiler: None,
        }
    }

    /// Installs a span profiler: each prefetch batch records a
    /// `bufferpool_prefetch` span whose sim units are the pages actually
    /// inserted. Observation-only.
    pub fn set_profiler(&mut self, profiler: SharedSpanProfiler) {
        self.profiler = Some(profiler);
    }

    /// Total configured pages across all partitions.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently assigned to the general partition.
    pub fn general_pages(&self) -> usize {
        self.general.capacity()
    }

    /// The quota (pages) of `class`, if it has a dedicated partition.
    pub fn quota_of(&self, class: ClassId) -> Option<usize> {
        self.quotas.get(&class).map(|p| p.capacity())
    }

    /// Classes with dedicated partitions, sorted.
    pub fn quotaed_classes(&self) -> Vec<ClassId> {
        let mut out: Vec<ClassId> = self.quotas.keys().copied().collect();
        out.sort();
        out
    }

    /// Carves a dedicated partition of `pages` for `class` out of the
    /// general partition (shrinking it and evicting its LRU pages).
    pub fn set_quota(&mut self, class: ClassId, pages: usize) -> Result<(), QuotaError> {
        if pages == 0 {
            return Err(QuotaError::ZeroQuota);
        }
        if self.quotas.contains_key(&class) {
            return Err(QuotaError::AlreadyQuotaed);
        }
        let available = self.general.capacity().saturating_sub(1);
        if pages > available {
            return Err(QuotaError::InsufficientGeneral {
                available,
                requested: pages,
            });
        }
        self.general.resize(self.general.capacity() - pages);
        // The class's accounting moves to its partition: stale general
        // counters must not resurface if the quota is later cleared.
        self.general.clear_class_counters(class);
        self.quotas.insert(class, BufferPool::new(pages));
        Ok(())
    }

    /// Dissolves `class`'s partition, returning its pages to the general
    /// partition. The partition's contents are dropped cold (the general
    /// partition does not inherit them — matching the cost asymmetry the
    /// paper discusses). Returns whether a quota existed.
    pub fn clear_quota(&mut self, class: ClassId) -> bool {
        match self.quotas.remove(&class) {
            Some(p) => {
                self.general.resize(self.general.capacity() + p.capacity());
                true
            }
            None => false,
        }
    }

    /// Accesses one page: routed to the class's dedicated partition if it
    /// has one, otherwise to the general partition.
    pub fn access(&mut self, class: ClassId, page: PageId) -> AccessOutcome {
        match self.quotas.get_mut(&class) {
            Some(p) => p.access(class, page),
            None => self.general.access(class, page),
        }
    }

    /// Prefetches pages on behalf of `class` into its routed partition.
    pub fn prefetch(&mut self, class: ClassId, pages: impl IntoIterator<Item = PageId>) -> u64 {
        let _span = enter_span(&self.profiler, "bufferpool_prefetch");
        let inserted = match self.quotas.get_mut(&class) {
            Some(p) => p.prefetch(class, pages),
            None => self.general.prefetch(class, pages),
        };
        span_units(&self.profiler, inserted);
        inserted
    }

    /// Counters for one class (from whichever partition serves it).
    pub fn class_counters(&self, class: ClassId) -> ClassCounters {
        match self.quotas.get(&class) {
            Some(p) => p.class_counters(class),
            None => self.general.class_counters(class),
        }
    }

    /// Hit ratio of the general partition (all non-quotaed classes).
    pub fn general_hit_ratio(&self) -> f64 {
        self.general.total_counters().hit_ratio()
    }

    /// Resident pages of the general partition, LRU→MRU order.
    pub fn general_resident_pages(&self) -> Vec<PageId> {
        self.general.resident_pages()
    }

    /// Installs pages into the general partition without accounting
    /// (replica warm-up).
    pub fn preload(&mut self, pages: impl IntoIterator<Item = PageId>) {
        self.general.preload(pages);
    }

    /// Resets all per-class counters across partitions, keeping resident
    /// pages — used to exclude warm-up from measured hit ratios.
    pub fn reset_counters(&mut self) {
        self.general.drain_counters();
        for p in self.quotas.values_mut() {
            p.drain_counters();
        }
    }

    /// Lifetime evictions across all partitions (monotone).
    pub fn evictions(&self) -> u64 {
        self.general.evictions() + self.quotas.values().map(|p| p.evictions()).sum::<u64>()
    }

    /// Exports pool state into a telemetry registry: per-partition
    /// capacity and occupancy gauges plus the monotone eviction counter.
    /// Per-class hit/miss counters intentionally stay out — quota churn
    /// moves and drops that accounting, so the engine derives monotone
    /// per-class series from query records instead. No-op when `telemetry`
    /// is inactive.
    pub fn export_telemetry(&self, telemetry: &Telemetry, instance: &str) {
        if !telemetry.is_active() {
            return;
        }
        let export_partition = |partition: &str, pool: &BufferPool| {
            if let Some(g) = telemetry.gauge(
                "odlb_pool_pages",
                "Configured buffer-pool partition capacity (16 KiB pages).",
                &[("instance", instance), ("partition", partition)],
            ) {
                g.set(pool.capacity() as f64);
            }
            if let Some(g) = telemetry.gauge(
                "odlb_pool_resident_pages",
                "Resident pages in a buffer-pool partition.",
                &[("instance", instance), ("partition", partition)],
            ) {
                g.set(pool.resident() as f64);
            }
        };
        export_partition("general", &self.general);
        for class in self.quotaed_classes() {
            export_partition(&class.to_string(), &self.quotas[&class]);
        }
        if let Some(c) = telemetry.counter(
            "odlb_pool_evictions_total",
            "Pages evicted by capacity pressure across all partitions.",
            &[("instance", instance)],
        ) {
            c.set_total(self.evictions());
        }
    }

    /// Verifies the capacity invariant (for tests and debug assertions).
    pub fn capacity_invariant_holds(&self) -> bool {
        let quota_sum: usize = self.quotas.values().map(|p| p.capacity()).sum();
        self.general.capacity() + quota_sum == self.total_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::AppId;
    use odlb_storage::SpaceId;

    fn class(t: u32) -> ClassId {
        ClassId::new(AppId(0), t)
    }
    fn pid(no: u64) -> PageId {
        PageId::new(SpaceId(0), no)
    }

    #[test]
    fn quota_isolates_class_from_general_pollution() {
        let mut p = PartitionedPool::new(100);
        p.set_quota(class(8), 10).unwrap();
        // Class 8 works in its 10 pages.
        for i in 0..10 {
            p.access(class(8), pid(i));
        }
        // Another class floods the general partition with 90+ pages.
        for i in 1000..1200 {
            p.access(class(1), pid(i));
        }
        // Class 8's working set survived: all hits now.
        for i in 0..10 {
            assert_eq!(p.access(class(8), pid(i)), AccessOutcome::Hit);
        }
        assert!(p.capacity_invariant_holds());
    }

    #[test]
    fn quota_confines_scanning_class() {
        let mut p = PartitionedPool::new(100);
        p.set_quota(class(8), 10).unwrap();
        // General classes establish a working set.
        for i in 0..80 {
            p.access(class(1), pid(i));
        }
        // Class 8 scans 500 pages — inside its own partition.
        for i in 10_000..10_500 {
            p.access(class(8), pid(i));
        }
        // The general working set is untouched.
        for i in 0..80 {
            assert_eq!(p.access(class(1), pid(i)), AccessOutcome::Hit);
        }
    }

    #[test]
    fn without_quota_scan_pollutes_shared_pool() {
        // The contrast case justifying Table 1's partitioning.
        let mut p = PartitionedPool::new(100);
        for i in 0..80 {
            p.access(class(1), pid(i));
        }
        for i in 10_000..10_500 {
            p.access(class(8), pid(i));
        }
        let mut hits = 0;
        for i in 0..80 {
            if p.access(class(1), pid(i)) == AccessOutcome::Hit {
                hits += 1;
            }
        }
        assert!(hits < 10, "scan evicted the working set ({hits} hits left)");
    }

    #[test]
    fn quota_errors() {
        let mut p = PartitionedPool::new(10);
        assert_eq!(p.set_quota(class(1), 0), Err(QuotaError::ZeroQuota));
        assert_eq!(
            p.set_quota(class(1), 10),
            Err(QuotaError::InsufficientGeneral {
                available: 9,
                requested: 10
            })
        );
        p.set_quota(class(1), 5).unwrap();
        assert_eq!(p.set_quota(class(1), 2), Err(QuotaError::AlreadyQuotaed));
        assert!(p.capacity_invariant_holds());
    }

    #[test]
    fn clear_quota_returns_capacity() {
        let mut p = PartitionedPool::new(100);
        p.set_quota(class(8), 40).unwrap();
        assert_eq!(p.general_pages(), 60);
        assert!(p.clear_quota(class(8)));
        assert_eq!(p.general_pages(), 100);
        assert!(!p.clear_quota(class(8)), "second clear is a no-op");
        assert!(p.capacity_invariant_holds());
    }

    #[test]
    fn clear_quota_drops_partition_contents_cold() {
        let mut p = PartitionedPool::new(100);
        p.set_quota(class(8), 10).unwrap();
        for i in 0..10 {
            p.access(class(8), pid(i));
        }
        p.clear_quota(class(8));
        assert_eq!(
            p.access(class(8), pid(0)),
            AccessOutcome::Miss,
            "pages were dropped, not migrated"
        );
    }

    #[test]
    fn multiple_quotas_coexist() {
        let mut p = PartitionedPool::new(100);
        p.set_quota(class(1), 20).unwrap();
        p.set_quota(class(2), 30).unwrap();
        assert_eq!(p.general_pages(), 50);
        assert_eq!(p.quota_of(class(1)), Some(20));
        assert_eq!(p.quota_of(class(2)), Some(30));
        assert_eq!(p.quotaed_classes(), vec![class(1), class(2)]);
        assert!(p.capacity_invariant_holds());
    }

    #[test]
    fn reset_counters_keeps_residency() {
        let mut p = PartitionedPool::new(50);
        p.set_quota(class(8), 10).unwrap();
        p.access(class(8), pid(1));
        p.access(class(1), pid(2));
        p.reset_counters();
        assert_eq!(p.class_counters(class(8)).accesses, 0);
        assert_eq!(p.class_counters(class(1)).accesses, 0);
        // Pages stayed resident: immediate hits.
        assert_eq!(p.access(class(8), pid(1)), AccessOutcome::Hit);
        assert_eq!(p.access(class(1), pid(2)), AccessOutcome::Hit);
    }

    #[test]
    fn export_telemetry_reports_partitions_and_evictions() {
        let mut p = PartitionedPool::new(20);
        p.set_quota(class(8), 5).unwrap();
        for i in 0..30 {
            p.access(class(1), pid(i)); // overflows the 15-page general
        }
        let t = Telemetry::attached();
        p.export_telemetry(&t, "inst0");
        let prom = t.render_prometheus().unwrap();
        assert!(prom.contains("odlb_pool_pages{instance=\"inst0\",partition=\"general\"} 15"));
        assert!(prom.contains("partition=\"app0#8\"} 5"));
        assert!(prom.contains("odlb_pool_evictions_total{instance=\"inst0\"} 15"));
        // Inactive handle: no work, no panic.
        p.export_telemetry(&Telemetry::inactive(), "inst0");
    }

    #[test]
    fn prefetch_routes_to_quota_partition() {
        let mut p = PartitionedPool::new(100);
        p.set_quota(class(8), 10).unwrap();
        p.prefetch(class(8), (0..5).map(pid));
        assert_eq!(p.class_counters(class(8)).prefetched, 5);
        assert_eq!(p.access(class(8), pid(3)), AccessOutcome::Hit);
        // General partition never saw those pages.
        assert_eq!(p.access(class(1), pid(3)), AccessOutcome::Miss);
    }
}
