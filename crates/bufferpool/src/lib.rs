//! # odlb-bufferpool — LRU buffer pool with per-class accounting and quotas
//!
//! The simulated InnoDB buffer pool. The paper instruments MySQL/InnoDB to
//! tie hit/miss/read-ahead statistics to query classes, and alleviates
//! memory interference by "enforcing a fixed quota allocation for the
//! respective query class" — a dedicated partition of the pool — while all
//! other classes keep sharing the rest (§3.3.2, Table 1).
//!
//! * [`LruList`] — an O(1) intrusive LRU list (slab + hash index), the
//!   replacement policy under everything.
//! * [`BufferPool`] — one LRU partition with per-class counters and
//!   prefetch (read-ahead) insertion.
//! * [`PartitionedPool`] — the quota mechanism: a *general* partition plus
//!   dedicated per-class partitions carved out of it; the paper's Table 1
//!   compares exactly `shared` vs `partitioned` vs `exclusive`
//!   configurations of this structure.

pub mod lru;
pub mod partitioned;
pub mod pool;

pub use lru::LruList;
pub use partitioned::{PartitionedPool, QuotaError};
pub use pool::{AccessOutcome, BufferPool, ClassCounters};
