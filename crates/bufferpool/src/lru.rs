//! An O(1) LRU list: slab-allocated doubly-linked list plus a hash index.
//!
//! LRU is what makes Mattson's stack algorithm applicable (the inclusion
//! property, paper §2), so the pool's policy and the MRC tracker must
//! agree — a property the test suite checks explicitly.

use odlb_storage::PageId;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// A fixed-capacity LRU list of pages.
#[derive(Clone, Debug)]
pub struct LruList {
    nodes: Vec<Node>,
    free: Vec<u32>,
    index: HashMap<PageId, u32>,
    head: u32, // MRU
    tail: u32, // LRU
    capacity: usize,
}

impl LruList {
    /// Creates a list holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "an LRU list needs capacity >= 1");
        LruList {
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            index: HashMap::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no page is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when `page` is resident (no recency update).
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Promotes `page` to MRU if resident. Returns whether it was a hit.
    pub fn touch(&mut self, page: PageId) -> bool {
        match self.index.get(&page).copied() {
            Some(idx) => {
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `page` at MRU, evicting the LRU page if full. Returns the
    /// evicted page, if any. Inserting a resident page just promotes it.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if self.touch(page) {
            return None;
        }
        let evicted = if self.index.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    page,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    page,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.index.insert(page, idx);
        self.push_front(idx);
        evicted
    }

    /// Evicts and returns the LRU page, if any.
    pub fn evict_lru(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let page = self.nodes[idx as usize].page;
        self.unlink(idx);
        self.index.remove(&page);
        self.free.push(idx);
        Some(page)
    }

    /// Removes a specific page if resident; returns whether it was there.
    pub fn remove(&mut self, page: PageId) -> bool {
        match self.index.remove(&page) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Changes the capacity; shrinking evicts LRU pages. Returns the
    /// evicted pages (in eviction order).
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<PageId> {
        assert!(capacity >= 1, "an LRU list needs capacity >= 1");
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.index.len() > capacity {
            evicted.push(self.evict_lru().expect("len > 0"));
        }
        evicted
    }

    /// Pages from MRU to LRU (debugging/tests; O(len)).
    pub fn pages_mru_to_lru(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.index.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.nodes[cur as usize].page);
            cur = self.nodes[cur as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_storage::SpaceId;

    fn pid(no: u64) -> PageId {
        PageId::new(SpaceId(0), no)
    }

    #[test]
    fn insert_until_full_then_evicts_lru() {
        let mut l = LruList::new(3);
        assert_eq!(l.insert(pid(1)), None);
        assert_eq!(l.insert(pid(2)), None);
        assert_eq!(l.insert(pid(3)), None);
        assert_eq!(l.insert(pid(4)), Some(pid(1)), "oldest goes first");
        assert_eq!(l.pages_mru_to_lru(), vec![pid(4), pid(3), pid(2)]);
    }

    #[test]
    fn touch_promotes() {
        let mut l = LruList::new(3);
        l.insert(pid(1));
        l.insert(pid(2));
        l.insert(pid(3));
        assert!(l.touch(pid(1)));
        assert_eq!(l.insert(pid(4)), Some(pid(2)), "2 became LRU after touch");
    }

    #[test]
    fn touch_miss_returns_false() {
        let mut l = LruList::new(2);
        assert!(!l.touch(pid(9)));
    }

    #[test]
    fn reinsert_resident_is_promotion_not_eviction() {
        let mut l = LruList::new(2);
        l.insert(pid(1));
        l.insert(pid(2));
        assert_eq!(l.insert(pid(1)), None);
        assert_eq!(l.len(), 2);
        assert_eq!(l.pages_mru_to_lru(), vec![pid(1), pid(2)]);
    }

    #[test]
    fn remove_specific_page() {
        let mut l = LruList::new(3);
        l.insert(pid(1));
        l.insert(pid(2));
        assert!(l.remove(pid(1)));
        assert!(!l.remove(pid(1)));
        assert_eq!(l.len(), 1);
        assert!(!l.contains(pid(1)));
        // Slab slot is reused.
        l.insert(pid(3));
        l.insert(pid(4));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn shrink_evicts_in_lru_order() {
        let mut l = LruList::new(5);
        for i in 1..=5 {
            l.insert(pid(i));
        }
        let evicted = l.set_capacity(2);
        assert_eq!(evicted, vec![pid(1), pid(2), pid(3)]);
        assert_eq!(l.pages_mru_to_lru(), vec![pid(5), pid(4)]);
        assert_eq!(l.capacity(), 2);
    }

    #[test]
    fn grow_keeps_contents() {
        let mut l = LruList::new(2);
        l.insert(pid(1));
        l.insert(pid(2));
        assert!(l.set_capacity(4).is_empty());
        l.insert(pid(3));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn single_capacity_list() {
        let mut l = LruList::new(1);
        assert_eq!(l.insert(pid(1)), None);
        assert_eq!(l.insert(pid(2)), Some(pid(1)));
        assert!(l.touch(pid(2)));
        assert_eq!(l.evict_lru(), Some(pid(2)));
        assert_eq!(l.evict_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn hit_iff_stack_distance_within_capacity() {
        // The LRU inclusion property, checked against a naive stack: a
        // touch hits iff the page's stack distance is <= capacity. This is
        // the bridge between the pool and the MRC predictions.
        let cap = 32;
        let mut l = LruList::new(cap);
        let mut stack: Vec<u64> = Vec::new();
        let mut x: u64 = 0xDEADBEEF;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = x % 300;
            let dist = stack.iter().position(|&k| k == key).map(|i| i + 1);
            let hit = l.touch(pid(key));
            match dist {
                Some(d) => assert_eq!(hit, d <= cap, "key {key} dist {d}"),
                None => assert!(!hit),
            }
            if let Some(i) = stack.iter().position(|&k| k == key) {
                stack.remove(i);
            }
            stack.insert(0, key);
            if !hit {
                l.insert(pid(key));
            }
        }
    }
}
