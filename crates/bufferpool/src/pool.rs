//! A single-partition buffer pool with per-class accounting.

use crate::lru::LruList;
use odlb_metrics::ClassId;
use odlb_storage::PageId;
use std::collections::HashMap;

/// The result of one page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was resident.
    Hit,
    /// The page was not resident and has been installed (the caller
    /// charges the disk read).
    Miss,
}

impl AccessOutcome {
    /// Convenience predicate.
    pub fn is_miss(self) -> bool {
        matches!(self, AccessOutcome::Miss)
    }
}

/// Per-class hit/miss accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Page accesses (hits + misses).
    pub accesses: u64,
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses that required a disk read.
    pub misses: u64,
    /// Pages installed by read-ahead on this class's behalf.
    pub prefetched: u64,
}

impl ClassCounters {
    /// Hit ratio over all accesses (1.0 when no accesses, so an idle class
    /// reads as unproblematic).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A single LRU pool shared by all classes routed to it.
#[derive(Clone, Debug)]
pub struct BufferPool {
    lru: LruList,
    counters: HashMap<ClassId, ClassCounters>,
    /// Lifetime pages evicted by capacity pressure. Unlike the per-class
    /// counters this is never drained or moved, so it can back a monotone
    /// telemetry counter.
    evictions: u64,
}

impl BufferPool {
    /// Creates a pool of `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        BufferPool {
            lru: LruList::new(capacity_pages),
            counters: HashMap::new(),
            evictions: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Resident pages.
    pub fn resident(&self) -> usize {
        self.lru.len()
    }

    /// Accesses one page on behalf of `class`. On a miss the page is
    /// installed at MRU (the caller performs the disk read).
    pub fn access(&mut self, class: ClassId, page: PageId) -> AccessOutcome {
        let c = self.counters.entry(class).or_default();
        c.accesses += 1;
        if self.lru.touch(page) {
            c.hits += 1;
            AccessOutcome::Hit
        } else {
            c.misses += 1;
            if self.lru.insert(page).is_some() {
                self.evictions += 1;
            }
            AccessOutcome::Miss
        }
    }

    /// Installs prefetched pages (read-ahead) on behalf of `class` without
    /// counting them as accesses. Already-resident pages are skipped
    /// *without* promotion (prefetch must not distort recency). Returns
    /// how many pages were actually installed.
    pub fn prefetch(&mut self, class: ClassId, pages: impl IntoIterator<Item = PageId>) -> u64 {
        let mut installed = 0;
        for page in pages {
            if !self.lru.contains(page) {
                if self.lru.insert(page).is_some() {
                    self.evictions += 1;
                }
                installed += 1;
            }
        }
        self.counters.entry(class).or_default().prefetched += installed;
        installed
    }

    /// True when `page` is resident (no recency update).
    pub fn contains(&self, page: PageId) -> bool {
        self.lru.contains(page)
    }

    /// Counters for one class.
    pub fn class_counters(&self, class: ClassId) -> ClassCounters {
        self.counters.get(&class).copied().unwrap_or_default()
    }

    /// Counters summed across classes.
    pub fn total_counters(&self) -> ClassCounters {
        let mut total = ClassCounters::default();
        for c in self.counters.values() {
            total.accesses += c.accesses;
            total.hits += c.hits;
            total.misses += c.misses;
            total.prefetched += c.prefetched;
        }
        total
    }

    /// Drains and returns all class counters (interval close), keeping
    /// resident pages untouched.
    pub fn drain_counters(&mut self) -> HashMap<ClassId, ClassCounters> {
        std::mem::take(&mut self.counters)
    }

    /// Forgets one class's counters (its accounting moves elsewhere).
    pub fn clear_class_counters(&mut self, class: ClassId) {
        self.counters.remove(&class);
    }

    /// Resizes the pool; shrinking evicts LRU pages.
    pub fn resize(&mut self, capacity_pages: usize) {
        self.lru.set_capacity(capacity_pages);
    }

    /// Resident pages in LRU→MRU order (suitable for re-insertion into
    /// another pool while preserving recency).
    pub fn resident_pages(&self) -> Vec<PageId> {
        let mut pages = self.lru.pages_mru_to_lru();
        pages.reverse();
        pages
    }

    /// Installs pages without any accounting — pool warm-up during
    /// replica provisioning ("warming up the buffer pool", §3.3.2).
    pub fn preload(&mut self, pages: impl IntoIterator<Item = PageId>) {
        for page in pages {
            if self.lru.insert(page).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// Lifetime pages evicted by capacity pressure (monotone; survives
    /// counter drains and resets).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::AppId;
    use odlb_storage::SpaceId;

    fn class(t: u32) -> ClassId {
        ClassId::new(AppId(0), t)
    }
    fn pid(no: u64) -> PageId {
        PageId::new(SpaceId(0), no)
    }

    #[test]
    fn miss_then_hit() {
        let mut p = BufferPool::new(10);
        assert_eq!(p.access(class(1), pid(5)), AccessOutcome::Miss);
        assert_eq!(p.access(class(1), pid(5)), AccessOutcome::Hit);
        let c = p.class_counters(class(1));
        assert_eq!((c.accesses, c.hits, c.misses), (2, 1, 1));
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn classes_share_residency_but_not_counters() {
        let mut p = BufferPool::new(10);
        p.access(class(1), pid(5));
        // Class 2 benefits from class 1's page: shared pool.
        assert_eq!(p.access(class(2), pid(5)), AccessOutcome::Hit);
        assert_eq!(p.class_counters(class(1)).misses, 1);
        assert_eq!(p.class_counters(class(2)).hits, 1);
        assert_eq!(p.total_counters().accesses, 2);
    }

    #[test]
    fn capacity_evictions_cause_remises() {
        let mut p = BufferPool::new(2);
        p.access(class(1), pid(1));
        p.access(class(1), pid(2));
        p.access(class(1), pid(3)); // evicts 1
        assert_eq!(p.access(class(1), pid(1)), AccessOutcome::Miss);
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn prefetch_installs_without_access_counting() {
        let mut p = BufferPool::new(10);
        let installed = p.prefetch(class(1), (0..4).map(pid));
        assert_eq!(installed, 4);
        assert_eq!(p.class_counters(class(1)).accesses, 0);
        assert_eq!(p.class_counters(class(1)).prefetched, 4);
        assert_eq!(p.access(class(1), pid(2)), AccessOutcome::Hit);
    }

    #[test]
    fn prefetch_skips_resident_without_promotion() {
        let mut p = BufferPool::new(2);
        p.access(class(1), pid(1));
        p.access(class(1), pid(2)); // MRU order: 2, 1
        let installed = p.prefetch(class(1), [pid(1)]);
        assert_eq!(installed, 0, "already resident");
        // Page 1 must still be the LRU: next insert evicts it.
        p.access(class(1), pid(3));
        assert!(!p.contains(pid(1)));
        assert!(p.contains(pid(2)));
    }

    #[test]
    fn idle_class_reads_perfect_ratio() {
        let p = BufferPool::new(4);
        assert_eq!(p.class_counters(class(9)).hit_ratio(), 1.0);
    }

    #[test]
    fn drain_counters_resets_accounting_only() {
        let mut p = BufferPool::new(4);
        p.access(class(1), pid(1));
        let drained = p.drain_counters();
        assert_eq!(drained[&class(1)].misses, 1);
        assert_eq!(p.class_counters(class(1)), ClassCounters::default());
        assert!(p.contains(pid(1)), "pages survive interval close");
    }

    #[test]
    fn evictions_counter_survives_drain() {
        let mut p = BufferPool::new(2);
        p.access(class(1), pid(1));
        p.access(class(1), pid(2));
        assert_eq!(p.evictions(), 0);
        p.access(class(1), pid(3)); // evicts 1
        p.prefetch(class(1), [pid(4)]); // evicts 2
        assert_eq!(p.evictions(), 2);
        p.drain_counters();
        assert_eq!(p.evictions(), 2, "lifetime counter is never drained");
    }

    #[test]
    fn shrink_evicts() {
        let mut p = BufferPool::new(8);
        for i in 0..8 {
            p.access(class(1), pid(i));
        }
        p.resize(3);
        assert_eq!(p.resident(), 3);
        assert!(p.contains(pid(7)));
        assert!(!p.contains(pid(0)));
    }
}
