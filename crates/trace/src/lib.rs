//! # odlb-trace — decision-trace observability
//!
//! The paper's contribution is a *decision sequence*: which query-class
//! contexts get flagged as outliers, which MRC validations fire, and which
//! narrow action (quota, re-placement, provisioning, release, isolation)
//! the controller picks each measurement interval. This crate makes that
//! sequence a first-class, machine-readable artifact:
//!
//! * [`TraceEvent`] — one structured record per decision-relevant moment:
//!   interval close, SLA evaluation, per-metric outlier findings, MRC
//!   validation verdicts, and every applied control action.
//! * [`TraceSink`] — where events go. Ships with three implementations:
//!   [`RingBufferSink`] (bounded in-memory readback for tests and live
//!   inspection), [`JsonlSink`] (one canonical JSON object per line, for
//!   offline analysis), and [`DigestSink`] (folds the canonical event
//!   stream into a stable 64-bit FNV-1a digest — two runs produced the
//!   same decisions iff their digests match).
//! * [`Tracer`] — a cheaply cloneable fan-out handle the simulation
//!   driver, the controller and the baselines all share. An unattached
//!   tracer is free: emission sites skip event construction entirely.
//!
//! The crate deliberately depends on nothing: event payloads are plain
//! integers, floats and interned strings, so every layer of the workspace
//! (cluster driver, controller, baselines, experiment harness) can emit
//! without dependency cycles.
//!
//! ## Digest semantics
//!
//! [`DigestSink`] hashes each event's canonical JSON line (exactly the
//! bytes [`JsonlSink`] writes, including the trailing newline) with
//! 64-bit FNV-1a. The simulation clock is integer microseconds and every
//! stochastic stream derives from `SimulationConfig.seed`, so a digest is
//! reproducible bit-for-bit across runs and platforms: golden tests pin
//! one digest per scenario and any behavioural drift — an extra
//! provisioning, a different quota, a reordered diagnosis — changes it.

pub mod event;
pub mod sink;

pub use event::{ActionKind, TraceEvent};
pub use sink::{fnv1a64, DigestSink, JsonlSink, RingBufferSink, SharedSink, TraceSink};

use std::cell::RefCell;
use std::rc::Rc;

/// A cheaply cloneable handle fanning events out to attached sinks.
///
/// Cloning shares the sink set (the driver and the controller hold clones
/// of the same tracer). With no sinks attached, [`Tracer::is_active`] is
/// false and emission sites skip building events altogether.
#[derive(Clone, Default)]
pub struct Tracer {
    sinks: Rc<RefCell<Vec<SharedSink>>>,
}

impl Tracer {
    /// Creates a tracer with no sinks (inactive until one is attached).
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Attaches a sink, returning a shared handle for later readback
    /// (ring buffers and digests are read after the run completes).
    pub fn attach<S: TraceSink + 'static>(&self, sink: S) -> Rc<RefCell<S>> {
        let handle = Rc::new(RefCell::new(sink));
        self.sinks.borrow_mut().push(handle.clone());
        handle
    }

    /// True when at least one sink is attached.
    pub fn is_active(&self) -> bool {
        !self.sinks.borrow().is_empty()
    }

    /// Sends one event to every attached sink.
    pub fn emit(&self, event: TraceEvent) {
        for sink in self.sinks.borrow().iter() {
            sink.borrow_mut().emit(&event);
        }
    }

    /// Builds and sends an event only when a sink is listening.
    pub fn emit_with(&self, build: impl FnOnce() -> TraceEvent) {
        if self.is_active() {
            self.emit(build());
        }
    }

    /// Flushes every attached sink (file sinks buffer).
    pub fn flush(&self) {
        for sink in self.sinks.borrow().iter() {
            sink.borrow_mut().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent::ActionApplied {
            end_us: 180_000_000,
            kind: ActionKind::SetQuota,
            app: Some(0),
            instance: Some(1),
            template: Some(8),
            pages: Some(3695),
            detail: "quota: app0#8 limited to 3695 pages on inst1".to_string(),
        }
    }

    #[test]
    fn inactive_tracer_skips_event_construction() {
        let tracer = Tracer::new();
        assert!(!tracer.is_active());
        tracer.emit_with(|| unreachable!("no sink attached"));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let tracer = Tracer::new();
        let ring = tracer.attach(RingBufferSink::new(16));
        let digest = tracer.attach(DigestSink::new());
        assert!(tracer.is_active());
        tracer.emit(sample_event());
        assert_eq!(ring.borrow().events().len(), 1);
        assert_eq!(digest.borrow().events(), 1);
    }

    #[test]
    fn clones_share_the_sink_set() {
        let tracer = Tracer::new();
        let clone = tracer.clone();
        let ring = tracer.attach(RingBufferSink::new(4));
        clone.emit(sample_event());
        assert_eq!(ring.borrow().events().len(), 1);
    }

    #[test]
    fn digest_matches_jsonl_bytes() {
        // The digest must hash exactly what the JSONL sink writes.
        let tracer = Tracer::new();
        let digest = tracer.attach(DigestSink::new());
        let events = [sample_event(), sample_event()];
        let mut bytes = Vec::new();
        for e in &events {
            tracer.emit(e.clone());
            bytes.extend_from_slice(e.to_json().as_bytes());
            bytes.push(b'\n');
        }
        assert_eq!(digest.borrow().digest(), fnv1a64(&bytes));
    }
}
