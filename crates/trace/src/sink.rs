//! Trace sinks: where decision-trace events go.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// A destination for trace events.
pub trait TraceSink {
    /// Receives one event.
    fn emit(&mut self, event: &TraceEvent);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// A shared, dynamically typed sink handle as stored by a `Tracer`.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// Bounded in-memory sink keeping the most recent events.
///
/// Tests and live dashboards read the retained window back after (or
/// during) a run; when the buffer is full the oldest event is dropped.
#[derive(Clone, Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Total events ever emitted (including dropped ones).
    seen: u64,
}

impl RingBufferSink {
    /// Creates a ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBufferSink {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Total events emitted over the sink's lifetime.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// True when older events have been evicted.
    pub fn dropped_any(&self) -> bool {
        self.seen > self.events.len() as u64
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
        self.seen += 1;
    }
}

/// Writes one canonical JSON object per line to any `io::Write`.
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates a file-backed JSONL sink at `path` (truncating).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0 }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Consumes the sink, returning the inner writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }

    /// Borrows the inner writer (e.g. to read back an in-memory buffer
    /// while the sink stays attached to a tracer).
    pub fn writer(&self) -> &W {
        &self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        // I/O errors must not perturb the simulation; the line counter
        // still advances so a short file is detectable.
        let _ = self.writer.write_all(event.to_json().as_bytes());
        let _ = self.writer.write_all(b"\n");
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Folds the canonical event stream into a stable 64-bit digest.
///
/// The digest is 64-bit FNV-1a over exactly the bytes a [`JsonlSink`]
/// would write (each event's canonical JSON line plus `\n`). Equal
/// digests ⇒ byte-identical decision traces; any behavioural drift in a
/// seeded run changes the digest.
#[derive(Clone, Debug)]
pub struct DigestSink {
    state: u64,
    events: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice (the digest primitive, exposed so
/// tests can cross-check sink output against raw bytes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(FNV_OFFSET, bytes)
}

fn fnv1a64_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl DigestSink {
    /// Creates an empty digest (offset-basis state).
    pub fn new() -> Self {
        DigestSink {
            state: FNV_OFFSET,
            events: 0,
        }
    }

    /// The digest over everything emitted so far.
    pub fn digest(&self) -> u64 {
        self.state
    }

    /// Events folded in so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl TraceSink for DigestSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.state = fnv1a64_fold(self.state, event.to_json().as_bytes());
        self.state = fnv1a64_fold(self.state, b"\n");
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ActionKind;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent::IntervalClosed {
            seq,
            start_us: seq * 10,
            end_us: (seq + 1) * 10,
            instances: 1,
            classes: 1,
        }
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.emit(&ev(i));
        }
        assert_eq!(ring.seen(), 5);
        assert!(ring.dropped_any());
        let seqs: Vec<u64> = ring
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::IntervalClosed { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&ev(0));
        sink.emit(&TraceEvent::ActionApplied {
            end_us: 20,
            kind: ActionKind::ProvisionedReplica,
            app: Some(0),
            instance: Some(2),
            template: None,
            pages: None,
            detail: "provisioned inst2 for app0".to_string(),
        });
        assert_eq!(sink.lines(), 2);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with("{\"event\":\""));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = DigestSink::new();
        let mut b = DigestSink::new();
        a.emit(&ev(0));
        a.emit(&ev(1));
        b.emit(&ev(1));
        b.emit(&ev(0));
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.events(), 2);
    }

    #[test]
    fn digest_equals_hash_of_jsonl_stream() {
        let events = [ev(0), ev(1), ev(2)];
        let mut digest = DigestSink::new();
        let mut jsonl = JsonlSink::new(Vec::new());
        for e in &events {
            digest.emit(e);
            jsonl.emit(e);
        }
        assert_eq!(digest.digest(), fnv1a64(&jsonl.into_inner()));
    }
}
