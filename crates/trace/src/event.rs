//! The decision-trace event vocabulary and its canonical JSON form.
//!
//! Field order inside each JSON object is fixed, floats are rendered with
//! Rust's shortest-roundtrip formatting, and all identifiers are plain
//! integers — so a given event has exactly one byte representation and
//! the digest over a run is well-defined.

use std::fmt::Write as _;

/// The kind of control action (or surfaced diagnosis) that was applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionKind {
    /// Outlier detection flagged one or more query contexts.
    DetectedOutliers,
    /// A buffer-pool quota was enforced on a class.
    SetQuota,
    /// A class's reads were re-placed onto another replica.
    PlacedClass,
    /// A fresh replica was provisioned.
    ProvisionedReplica,
    /// A replica was released back to the pool.
    RetiredReplica,
    /// The coarse-grained fallback isolated a whole application.
    CoarseFallback,
    /// Lock contention surfaced to the operator (no automatic remedy).
    LockContention,
    /// A whole VM was live-migrated (baseline remedy).
    MigratedVm,
    /// An I/O-heavy class was moved off a disk-saturated server.
    MovedIoHeavyClass,
}

impl ActionKind {
    /// Stable wire name, used in the JSON encoding (and thus the digest).
    pub const fn as_str(self) -> &'static str {
        match self {
            ActionKind::DetectedOutliers => "detected_outliers",
            ActionKind::SetQuota => "set_quota",
            ActionKind::PlacedClass => "placed_class",
            ActionKind::ProvisionedReplica => "provisioned_replica",
            ActionKind::RetiredReplica => "retired_replica",
            ActionKind::CoarseFallback => "coarse_fallback",
            ActionKind::LockContention => "lock_contention",
            ActionKind::MigratedVm => "migrated_vm",
            ActionKind::MovedIoHeavyClass => "moved_io_heavy_class",
        }
    }
}

/// One structured record in the decision trace.
///
/// Times are the simulation clock in integer microseconds (`*_us`);
/// `app`/`template`/`instance` are the raw ids from `odlb-metrics` and
/// `odlb-cluster`, kept as plain integers so this crate depends on
/// nothing and every layer can emit.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A measurement interval closed in the simulation driver.
    IntervalClosed {
        /// 0-based interval sequence number.
        seq: u64,
        /// Interval start (µs on the simulation clock).
        start_us: u64,
        /// Interval end (µs).
        end_us: u64,
        /// Database instances reporting this interval.
        instances: u32,
        /// Distinct (instance, class) rows observed.
        classes: u32,
    },
    /// One application's SLA was evaluated over the closed interval.
    SlaEvaluated {
        /// Interval end (µs).
        end_us: u64,
        /// The application.
        app: u32,
        /// Mean latency in seconds, `None` when no query completed.
        latency_s: Option<f64>,
        /// Aggregate throughput (queries/s).
        throughput_qps: f64,
        /// Whether the SLA was violated.
        violated: bool,
    },
    /// One per-metric outlier finding on a query context (§3.3.1).
    OutlierFinding {
        /// Interval end (µs).
        end_us: u64,
        /// Instance diagnosed.
        instance: u32,
        /// Owning application of the flagged class.
        app: u32,
        /// Template index of the flagged class.
        template: u32,
        /// Metric label (e.g. `"misses"`).
        metric: &'static str,
        /// `"mild"` or `"extreme"`.
        severity: &'static str,
        /// Raw current/stable deviation ratio.
        ratio: f64,
        /// True when the finding points in the metric's "worse" direction.
        degradation: bool,
    },
    /// An MRC was recomputed to validate a suspect class (§3.3.2).
    MrcValidation {
        /// Interval end (µs).
        end_us: u64,
        /// Instance whose access window was replayed.
        instance: u32,
        /// Owning application.
        app: u32,
        /// Template index.
        template: u32,
        /// Acceptable memory (pages) from the fresh curve.
        acceptable_pages: u64,
        /// Verdict: did the curve change significantly vs stable state?
        changed: bool,
    },
    /// A control action was applied to the cluster.
    ActionApplied {
        /// Interval end (µs).
        end_us: u64,
        /// What was done.
        kind: ActionKind,
        /// Application involved, when applicable.
        app: Option<u32>,
        /// Instance involved, when applicable.
        instance: Option<u32>,
        /// Class template involved, when applicable.
        template: Option<u32>,
        /// Pages granted (quotas), when applicable.
        pages: Option<u64>,
        /// Human-readable rendering of the action.
        detail: String,
    },
}

impl TraceEvent {
    /// The event's wire name (the JSON `"event"` field).
    pub const fn name(&self) -> &'static str {
        match self {
            TraceEvent::IntervalClosed { .. } => "interval_closed",
            TraceEvent::SlaEvaluated { .. } => "sla_evaluated",
            TraceEvent::OutlierFinding { .. } => "outlier_finding",
            TraceEvent::MrcValidation { .. } => "mrc_validation",
            TraceEvent::ActionApplied { .. } => "action_applied",
        }
    }

    /// The interval-end timestamp (µs) the event belongs to.
    pub const fn end_us(&self) -> u64 {
        match *self {
            TraceEvent::IntervalClosed { end_us, .. }
            | TraceEvent::SlaEvaluated { end_us, .. }
            | TraceEvent::OutlierFinding { end_us, .. }
            | TraceEvent::MrcValidation { end_us, .. }
            | TraceEvent::ActionApplied { end_us, .. } => end_us,
        }
    }

    /// The canonical single-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"event\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            TraceEvent::IntervalClosed {
                seq,
                start_us,
                end_us,
                instances,
                classes,
            } => {
                field_u64(&mut s, "seq", *seq);
                field_u64(&mut s, "start_us", *start_us);
                field_u64(&mut s, "end_us", *end_us);
                field_u64(&mut s, "instances", *instances as u64);
                field_u64(&mut s, "classes", *classes as u64);
            }
            TraceEvent::SlaEvaluated {
                end_us,
                app,
                latency_s,
                throughput_qps,
                violated,
            } => {
                field_u64(&mut s, "end_us", *end_us);
                field_u64(&mut s, "app", *app as u64);
                match latency_s {
                    Some(l) => field_f64(&mut s, "latency_s", *l),
                    None => s.push_str(",\"latency_s\":null"),
                }
                field_f64(&mut s, "throughput_qps", *throughput_qps);
                field_bool(&mut s, "violated", *violated);
            }
            TraceEvent::OutlierFinding {
                end_us,
                instance,
                app,
                template,
                metric,
                severity,
                ratio,
                degradation,
            } => {
                field_u64(&mut s, "end_us", *end_us);
                field_u64(&mut s, "instance", *instance as u64);
                field_u64(&mut s, "app", *app as u64);
                field_u64(&mut s, "template", *template as u64);
                field_str(&mut s, "metric", metric);
                field_str(&mut s, "severity", severity);
                field_f64(&mut s, "ratio", *ratio);
                field_bool(&mut s, "degradation", *degradation);
            }
            TraceEvent::MrcValidation {
                end_us,
                instance,
                app,
                template,
                acceptable_pages,
                changed,
            } => {
                field_u64(&mut s, "end_us", *end_us);
                field_u64(&mut s, "instance", *instance as u64);
                field_u64(&mut s, "app", *app as u64);
                field_u64(&mut s, "template", *template as u64);
                field_u64(&mut s, "acceptable_pages", *acceptable_pages);
                field_bool(&mut s, "changed", *changed);
            }
            TraceEvent::ActionApplied {
                end_us,
                kind,
                app,
                instance,
                template,
                pages,
                detail,
            } => {
                field_u64(&mut s, "end_us", *end_us);
                field_str(&mut s, "kind", kind.as_str());
                field_opt_u64(&mut s, "app", app.map(u64::from));
                field_opt_u64(&mut s, "instance", instance.map(u64::from));
                field_opt_u64(&mut s, "template", template.map(u64::from));
                field_opt_u64(&mut s, "pages", *pages);
                field_str(&mut s, "detail", detail);
            }
        }
        s.push('}');
        s
    }
}

fn field_u64(s: &mut String, name: &str, v: u64) {
    let _ = write!(s, ",\"{name}\":{v}");
}

fn field_opt_u64(s: &mut String, name: &str, v: Option<u64>) {
    match v {
        Some(v) => field_u64(s, name, v),
        None => {
            let _ = write!(s, ",\"{name}\":null");
        }
    }
}

fn field_bool(s: &mut String, name: &str, v: bool) {
    let _ = write!(s, ",\"{name}\":{v}");
}

/// Floats use Rust's shortest-roundtrip formatting (deterministic for a
/// given bit pattern); non-finite values become `null` (JSON has no NaN).
fn field_f64(s: &mut String, name: &str, v: f64) {
    if v.is_finite() {
        // odlb-lint: allow(D03) — this IS the shared canonical-JSON float formatter; shortest-roundtrip Display is deterministic per bit pattern
        let _ = write!(s, ",\"{name}\":{v}");
    } else {
        let _ = write!(s, ",\"{name}\":null");
    }
}

fn field_str(s: &mut String, name: &str, v: &str) {
    let _ = write!(s, ",\"{name}\":\"");
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_closed_encoding_is_canonical() {
        let e = TraceEvent::IntervalClosed {
            seq: 3,
            start_us: 30_000_000,
            end_us: 40_000_000,
            instances: 2,
            classes: 14,
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"interval_closed\",\"seq\":3,\"start_us\":30000000,\
             \"end_us\":40000000,\"instances\":2,\"classes\":14}"
        );
    }

    #[test]
    fn sla_encoding_handles_missing_latency() {
        let e = TraceEvent::SlaEvaluated {
            end_us: 10_000_000,
            app: 0,
            latency_s: None,
            throughput_qps: 0.0,
            violated: false,
        };
        assert!(e.to_json().contains("\"latency_s\":null"));
        let e = TraceEvent::SlaEvaluated {
            end_us: 10_000_000,
            app: 0,
            latency_s: Some(0.25),
            throughput_qps: 12.5,
            violated: true,
        };
        assert!(e.to_json().contains("\"latency_s\":0.25"));
        assert!(e.to_json().contains("\"violated\":true"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = TraceEvent::SlaEvaluated {
            end_us: 0,
            app: 0,
            latency_s: Some(f64::NAN),
            throughput_qps: f64::INFINITY,
            violated: false,
        };
        let json = e.to_json();
        assert!(json.contains("\"latency_s\":null"));
        assert!(json.contains("\"throughput_qps\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::ActionApplied {
            end_us: 0,
            kind: ActionKind::CoarseFallback,
            app: Some(1),
            instance: None,
            template: None,
            pages: None,
            detail: "say \"hi\"\n\\done".to_string(),
        };
        let json = e.to_json();
        assert!(json.contains("say \\\"hi\\\"\\n\\\\done"));
        assert!(json.contains("\"instance\":null"));
    }

    #[test]
    fn every_kind_has_a_distinct_wire_name() {
        let kinds = [
            ActionKind::DetectedOutliers,
            ActionKind::SetQuota,
            ActionKind::PlacedClass,
            ActionKind::ProvisionedReplica,
            ActionKind::RetiredReplica,
            ActionKind::CoarseFallback,
            ActionKind::LockContention,
            ActionKind::MigratedVm,
            ActionKind::MovedIoHeavyClass,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
