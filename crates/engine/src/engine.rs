//! The engine proper: executes queries against the buffer pool, the CPU
//! station and the shared disk path, and produces instrumentation records.

use crate::locks::LockManager;
use crate::query::QuerySpec;
use odlb_bufferpool::{PartitionedPool, QuotaError};
use odlb_metrics::{
    ClassId, ClassStatsCollector, IntervalReport, PrivateLogBuffer, QueryLogRecord, WindowRegistry,
};
use odlb_mrc::MissRatioCurve;
use odlb_sim::{SimTime, Station};
use odlb_storage::{DomainId, IoKind, ReadAheadDetector, SharedIoPath, EXTENT_PAGES};
use odlb_telemetry::{enter_span, span_units, SharedSpanProfiler, Telemetry};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Buffer pool size in 16 KiB pages (8192 = the paper's 128 MB).
    pub pool_pages: usize,
    /// Sequential accesses within an extent that trigger read-ahead.
    pub readahead_trigger: u32,
    /// Recent page accesses retained per class for MRC recomputation.
    pub window_capacity: usize,
    /// Private log buffer capacity (records) before flush.
    pub logbuf_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pool_pages: 8192,
            readahead_trigger: 56,
            window_capacity: 100_000,
            logbuf_capacity: 64,
        }
    }
}

/// The outcome of executing one query.
#[derive(Clone, Debug)]
pub struct ExecutionResult {
    /// When the query finishes (CPU and all blocking I/O done).
    pub completion: SimTime,
    /// The instrumentation record, stamped with completion and latency.
    pub record: QueryLogRecord,
}

/// Cached per-class telemetry handles: the hot path pays the registry
/// lookup once per class, then records through shared `Rc` handles.
#[derive(Clone, Debug)]
struct ClassSeries {
    latency: odlb_telemetry::Histogram,
    queries: odlb_telemetry::Counter,
    page_accesses: odlb_telemetry::Counter,
    buffer_misses: odlb_telemetry::Counter,
    io_requests: odlb_telemetry::Counter,
    readaheads: odlb_telemetry::Counter,
}

/// One simulated database engine (one MySQL instance in the paper).
#[derive(Clone, Debug)]
pub struct DbEngine {
    config: EngineConfig,
    pool: PartitionedPool,
    readahead: ReadAheadDetector,
    windows: WindowRegistry,
    logbuf: PrivateLogBuffer,
    collector: ClassStatsCollector,
    locks: LockManager,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
    instance_label: String,
    series: BTreeMap<ClassId, ClassSeries>,
}

impl DbEngine {
    /// Creates an engine; its measurement clock starts at `now`.
    pub fn new(config: EngineConfig, now: SimTime) -> Self {
        DbEngine {
            pool: PartitionedPool::new(config.pool_pages),
            readahead: ReadAheadDetector::new(config.readahead_trigger),
            windows: WindowRegistry::new(config.window_capacity),
            logbuf: PrivateLogBuffer::new(config.logbuf_capacity),
            collector: ClassStatsCollector::new(now),
            locks: LockManager::new(),
            config,
            telemetry: Telemetry::inactive(),
            profiler: None,
            instance_label: String::new(),
            series: BTreeMap::new(),
        }
    }

    /// Installs a span profiler on the engine and its buffer pool: query
    /// execution records a `pages` span (sim units = pages accessed) and
    /// prefetch batches a `bufferpool_prefetch` span. Observation-only —
    /// execution outcomes are unchanged.
    pub fn set_profiler(&mut self, profiler: SharedSpanProfiler) {
        self.pool.set_profiler(profiler.clone());
        self.profiler = Some(profiler);
    }

    /// Attaches a telemetry handle; `instance` labels every series this
    /// engine emits. Inactive handles cost one branch per commit.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, instance: &str) {
        self.telemetry = telemetry;
        self.instance_label = instance.to_string();
        self.series.clear();
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Per-class latency histogram handles this engine has registered,
    /// in class order. The cluster driver merges these across replicas
    /// at export time into the cluster-wide distribution the paper's
    /// SLA is stated against. Empty when telemetry is inactive.
    pub fn class_latency_histograms(
        &self,
    ) -> impl Iterator<Item = (ClassId, &odlb_telemetry::Histogram)> + '_ {
        self.series.iter().map(|(class, s)| (*class, &s.latency))
    }

    /// Executes a query arriving at `now`.
    ///
    /// The page sequence is played through the buffer pool immediately
    /// (pool state is updated at arrival — concurrent queries see the
    /// pages; an accepted simplification over page-grained interleaving).
    /// Misses are charged as random single-page reads on the server's
    /// shared I/O path; triggered read-ahead issues an asynchronous
    /// sequential extent read that occupies the disk but does not block
    /// this query. CPU demand queues at the server's CPU station. The
    /// query completes when both its CPU slice and its last blocking read
    /// are done.
    pub fn execute(
        &mut self,
        now: SimTime,
        spec: &QuerySpec,
        cpu: &mut Station,
        io: &mut SharedIoPath,
        domain: DomainId,
    ) -> ExecutionResult {
        let class = spec.class;
        let mut misses = 0u64;
        let mut io_requests = 0u64;
        let mut readaheads = 0u64;
        let mut last_io_done = now;

        let mut io_service = odlb_sim::SimDuration::ZERO;
        let pages_span = enter_span(&self.profiler, "pages");
        span_units(&self.profiler, spec.pages.len() as u64);
        for &page in &spec.pages {
            self.windows.push(class, page);
            if self.pool.access(class, page).is_miss() {
                misses += 1;
                io_requests += 1;
                let adm = io.read(domain, now, IoKind::Random, 1, false);
                io_service += adm.completion.since(adm.start);
                last_io_done = last_io_done.max(adm.completion);
            }
            if let Some(start) = self.readahead.observe(class.as_u64(), page) {
                readaheads += 1;
                io_requests += 1;
                // Asynchronous prefetch: occupies the disk, does not block.
                io.read(domain, now, IoKind::Sequential, EXTENT_PAGES, true);
                self.pool
                    .prefetch(class, (0..EXTENT_PAGES).map(|i| start.offset(i)));
            }
        }
        drop(pages_span);

        let cpu_adm = cpu.submit(now, spec.cpu_demand());
        let mut completion = cpu_adm.completion.max(last_io_done);
        // Writes acquire exclusive locks on their update target for the
        // duration of execution; conflicting writers queue FCFS, and the
        // waiting time surfaces as the per-class LockWaits metric.
        // Hold time: the write's own work (CPU and its reads' service
        // time overlap, so the max), not the queueing delays of the
        // batched-at-arrival I/O model — those would overstate hold times
        // and manufacture lock convoys whenever the disk queues.
        let locked = spec.locked_pages();
        let lock_wait = if locked.is_empty() {
            odlb_sim::SimDuration::ZERO
        } else {
            let hold = spec.cpu_demand().max(io_service);
            self.locks.acquire(now, locked, hold)
        };
        completion += lock_wait;
        let record = QueryLogRecord {
            class,
            completed_at: completion,
            latency: completion.since(now),
            page_accesses: spec.pages.len() as u64,
            buffer_misses: misses,
            io_requests,
            readaheads,
            lock_wait,
        };
        ExecutionResult { completion, record }
    }

    /// Commits a completed query's record through the private log buffer
    /// into the per-class collector (call when the completion event fires,
    /// so interval accounting matches completion times).
    pub fn commit_record(&mut self, record: QueryLogRecord) {
        if self.telemetry.is_active() {
            self.record_telemetry(&record);
        }
        if let Some(batch) = self.logbuf.log(record) {
            self.collector.record_batch(&batch);
            self.logbuf.recycle(batch);
        }
    }

    /// Records one completed query into the attached registry. Only
    /// reached when telemetry is active; the first record of each class
    /// registers its series, later ones reuse the cached handles.
    fn record_telemetry(&mut self, record: &QueryLogRecord) {
        let series = match self.series.entry(record.class) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let class = record.class.to_string();
                let labels = [
                    ("class", class.as_str()),
                    ("instance", self.instance_label.as_str()),
                ];
                let t = &self.telemetry;
                let counter = |name, help| t.counter(name, help, &labels).expect("active");
                e.insert(ClassSeries {
                    latency: t
                        .histogram(
                            "odlb_query_latency_us",
                            "Per-query latency by class (simulated microseconds).",
                            &labels,
                        )
                        .expect("active"),
                    queries: counter("odlb_queries_total", "Queries completed."),
                    page_accesses: counter(
                        "odlb_page_accesses_total",
                        "Buffer-pool page accesses.",
                    ),
                    buffer_misses: counter(
                        "odlb_buffer_misses_total",
                        "Page accesses that required a disk read.",
                    ),
                    io_requests: counter(
                        "odlb_query_io_requests_total",
                        "Disk requests issued on behalf of queries.",
                    ),
                    readaheads: counter(
                        "odlb_readaheads_total",
                        "Read-ahead extents triggered by queries.",
                    ),
                })
            }
        };
        series.latency.record(record.latency.as_micros());
        series.queries.inc();
        series.page_accesses.add(record.page_accesses);
        series.buffer_misses.add(record.buffer_misses);
        series.io_requests.add(record.io_requests);
        series.readaheads.add(record.readaheads);
    }

    /// Closes the current measurement interval: flushes the log buffer and
    /// returns per-class interval metrics.
    pub fn close_interval(&mut self, now: SimTime) -> IntervalReport {
        let remainder = self.logbuf.flush();
        self.collector.record_batch(&remainder);
        self.logbuf.recycle(remainder);
        self.locks.gc(now);
        if self.telemetry.is_active() {
            self.pool
                .export_telemetry(&self.telemetry, &self.instance_label);
        }
        self.collector.close_interval(now)
    }

    /// Lock-manager observability (contention rate, cumulative wait).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Recomputes the MRC of `class` from its recent access window
    /// (§3.3.2's on-demand recomputation). `None` when the class has no
    /// window on this engine.
    pub fn recompute_mrc(&self, class: ClassId, cap_pages: usize) -> Option<MissRatioCurve> {
        self.recompute_mrc_with(class, cap_pages, odlb_mrc::MrcMode::Exact)
    }

    /// [`DbEngine::recompute_mrc`] with an explicit tracker mode — the
    /// controller threads its configured [`odlb_mrc::MrcMode`] through
    /// here so web-scale tenancies can trade exactness for throughput.
    pub fn recompute_mrc_with(
        &self,
        class: ClassId,
        cap_pages: usize,
        mode: odlb_mrc::MrcMode,
    ) -> Option<MissRatioCurve> {
        self.windows
            .get(class)
            .map(|w| w.compute_mrc_with(mode, cap_pages))
    }

    /// Enforces a buffer-pool quota for a class (§3.3.2, option two).
    pub fn set_quota(&mut self, class: ClassId, pages: usize) -> Result<(), QuotaError> {
        self.pool.set_quota(class, pages)
    }

    /// Removes a class's quota, returning whether one existed.
    pub fn clear_quota(&mut self, class: ClassId) -> bool {
        self.pool.clear_quota(class)
    }

    /// The class's quota, if any.
    pub fn quota_of(&self, class: ClassId) -> Option<usize> {
        self.pool.quota_of(class)
    }

    /// Buffer-pool counters for a class.
    pub fn pool_counters(&self, class: ClassId) -> odlb_bufferpool::ClassCounters {
        self.pool.class_counters(class)
    }

    /// Drops all engine-side state for a class that has been re-placed on
    /// another replica (window, read-ahead runs, quota).
    pub fn forget_class(&mut self, class: ClassId) {
        self.windows.forget(class);
        self.readahead.reset_consumer(class.as_u64());
        self.pool.clear_quota(class);
    }

    /// Resident pages of the general pool partition (LRU→MRU), for warm
    /// hand-off to a freshly provisioned replica.
    pub fn resident_pages(&self) -> Vec<odlb_storage::PageId> {
        self.pool.general_resident_pages()
    }

    /// Warm-up: installs pages without accounting. Provisioning a replica
    /// includes copying the data and priming its caches (§3.3.2 discusses
    /// exactly this warm-up cost as part of the re-placement trade-off).
    pub fn preload(&mut self, pages: impl IntoIterator<Item = odlb_storage::PageId>) {
        self.pool.preload(pages);
    }

    /// Direct pool access for table-level experiments (Table 1 uses the
    /// pool as a trace-driven simulator).
    pub fn pool(&self) -> &PartitionedPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::{AppId, MetricKind};
    use odlb_sim::SimDuration;
    use odlb_storage::{DiskModel, PageId, SpaceId};

    fn class(t: u32) -> ClassId {
        ClassId::new(AppId(0), t)
    }

    fn spec(template: u32, pages: Vec<u64>) -> QuerySpec {
        QuerySpec {
            class: class(template),
            pages: pages
                .into_iter()
                .map(|n| PageId::new(SpaceId(0), n))
                .collect(),
            cpu_base: SimDuration::from_micros(200),
            cpu_per_page: SimDuration::from_micros(20),
            is_write: false,
            lock_prefix: 0,
        }
    }

    fn rig() -> (DbEngine, Station, SharedIoPath) {
        (
            DbEngine::new(
                EngineConfig {
                    // Must comfortably exceed one 64-page read-ahead
                    // extent plus the tests' working sets.
                    pool_pages: 256,
                    readahead_trigger: 8,
                    window_capacity: 10_000,
                    logbuf_capacity: 4,
                },
                SimTime::ZERO,
            ),
            Station::new(4),
            SharedIoPath::new(DiskModel::default()),
        )
    }

    #[test]
    fn cold_query_pays_io_warm_query_does_not() {
        let (mut eng, mut cpu, mut io) = rig();
        let q = spec(1, (0..10).collect());
        let cold = eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        assert_eq!(cold.record.buffer_misses, 10);
        let warm = eng.execute(cold.completion, &q, &mut cpu, &mut io, DomainId(1));
        assert_eq!(warm.record.buffer_misses, 0);
        assert!(
            warm.record.latency < cold.record.latency,
            "warm {} >= cold {}",
            warm.record.latency,
            cold.record.latency
        );
    }

    #[test]
    fn latency_covers_cpu_and_blocking_io() {
        let (mut eng, mut cpu, mut io) = rig();
        let q = spec(1, vec![5]);
        let r = eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        // 1 random read (2.65 ms) dominates CPU (0.22 ms).
        assert_eq!(r.record.latency, SimDuration::from_micros(2_650));
    }

    #[test]
    fn sequential_scan_triggers_readahead() {
        let (mut eng, mut cpu, mut io) = rig();
        let q = spec(2, (0..32).collect());
        let r = eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        assert!(r.record.readaheads >= 1, "scan of 32 pages with trigger 8");
        // Prefetched extent is resident: a follow-up scan into it hits.
        let q2 = spec(2, (64..80).collect());
        let r2 = eng.execute(r.completion, &q2, &mut cpu, &mut io, DomainId(1));
        assert_eq!(r2.record.buffer_misses, 0, "served by prefetch");
    }

    #[test]
    fn records_flow_into_interval_reports() {
        let (mut eng, mut cpu, mut io) = rig();
        for _ in 0..6 {
            let q = spec(1, vec![1, 2, 3]);
            let r = eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
            eng.commit_record(r.record);
        }
        let report = eng.close_interval(SimTime::from_secs(10));
        let v = report.per_class[&class(1)];
        assert_eq!(v[MetricKind::PageAccesses], 18.0);
        assert!((v[MetricKind::Throughput] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn interval_close_flushes_partial_logbuf() {
        let (mut eng, mut cpu, mut io) = rig();
        let q = spec(1, vec![1]);
        let r = eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        eng.commit_record(r.record); // 1 record < logbuf capacity 4
        let report = eng.close_interval(SimTime::from_secs(1));
        assert_eq!(report.per_class.len(), 1, "partial buffer was flushed");
    }

    #[test]
    fn mrc_recompute_reflects_access_window() {
        let (mut eng, mut cpu, mut io) = rig();
        // Loop over 16 pages repeatedly.
        for _ in 0..50 {
            let q = spec(3, (0..16).collect());
            eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        }
        let curve = eng.recompute_mrc(class(3), 64).expect("window exists");
        assert!(curve.miss_ratio(15) > 0.9);
        assert!(curve.miss_ratio(16) < 0.05);
        assert!(eng.recompute_mrc(class(99), 64).is_none());
    }

    #[test]
    fn quota_round_trip() {
        let (mut eng, _, _) = rig();
        eng.set_quota(class(1), 16).unwrap();
        assert_eq!(eng.quota_of(class(1)), Some(16));
        assert!(eng.clear_quota(class(1)));
        assert_eq!(eng.quota_of(class(1)), None);
    }

    #[test]
    fn forget_class_clears_state() {
        let (mut eng, mut cpu, mut io) = rig();
        let q = spec(1, (0..10).collect());
        eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        eng.set_quota(class(1), 8).unwrap();
        eng.forget_class(class(1));
        assert!(eng.recompute_mrc(class(1), 64).is_none());
        assert_eq!(eng.quota_of(class(1)), None);
    }

    #[test]
    fn telemetry_records_per_class_latency_and_counters() {
        let (mut eng, mut cpu, mut io) = rig();
        let t = Telemetry::attached();
        eng.set_telemetry(t.clone(), "inst0");
        for _ in 0..3 {
            let q = spec(1, vec![1, 2]);
            let r = eng.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
            eng.commit_record(r.record);
        }
        eng.close_interval(SimTime::from_secs(1));
        let prom = t.render_prometheus().unwrap();
        assert!(prom.contains("odlb_queries_total{class=\"app0#1\",instance=\"inst0\"} 3"));
        assert!(prom.contains("odlb_page_accesses_total{class=\"app0#1\",instance=\"inst0\"} 6"));
        assert!(prom.contains("odlb_buffer_misses_total{class=\"app0#1\",instance=\"inst0\"} 2"));
        assert!(prom.contains("odlb_query_latency_us_count{class=\"app0#1\",instance=\"inst0\"} 3"));
        assert!(prom.contains("odlb_pool_pages{instance=\"inst0\",partition=\"general\"}"));
        odlb_telemetry::validate_prometheus(&prom).expect("valid exposition");
    }

    #[test]
    fn io_contention_raises_latency_across_domains() {
        // Two engines (two VM domains) share one I/O path: the second
        // domain's cold query queues behind the first's.
        let mut io = SharedIoPath::new(DiskModel::default());
        let mut cpu1 = Station::new(4);
        let mut cpu2 = Station::new(4);
        let mut e1 = DbEngine::new(EngineConfig::default(), SimTime::ZERO);
        let mut e2 = DbEngine::new(EngineConfig::default(), SimTime::ZERO);
        let q = spec(1, (0..20).collect());
        let r1 = e1.execute(SimTime::ZERO, &q, &mut cpu1, &mut io, DomainId(1));
        let r2 = e2.execute(SimTime::ZERO, &q, &mut cpu2, &mut io, DomainId(2));
        assert!(
            r2.record.latency.as_micros() > r1.record.latency.as_micros() * 3 / 2,
            "domain 2 ({}) should queue behind domain 1 ({})",
            r2.record.latency,
            r1.record.latency
        );
    }
}
