//! Query template extraction (paper §3.2).
//!
//! "Our scheduling unit, a query class, consists of all query instances of
//! an application with the same query template but different arguments.
//! The scheduler determines the query templates of each application on the
//! fly."
//!
//! [`normalize_template`] strips argument literals from SQL text (numbers,
//! quoted strings, IN-lists), so `SELECT * FROM item WHERE i_id = 42` and
//! `… = 17` normalise identically. [`TemplateRegistry`] assigns each
//! distinct normalised template a stable per-application index, which is
//! the `template` component of a [`ClassId`].

use odlb_metrics::{AppId, ClassId};
use std::collections::BTreeMap;

/// Replaces literals in SQL-ish text with `?` placeholders and collapses
/// whitespace, yielding the query's template.
pub fn normalize_template(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut last_was_space = false;
    while let Some(c) = chars.next() {
        match c {
            // Quoted string literal (SQL doubles quotes to escape).
            '\'' => {
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                out.push('?');
                last_was_space = false;
            }
            // Numeric literal — only when it starts a token (identifiers
            // like `order2` keep their digits).
            '0'..='9'
                if !out
                    .chars()
                    .last()
                    .is_some_and(|p| p.is_alphanumeric() || p == '_' || p == '?') =>
            {
                while chars
                    .peek()
                    .is_some_and(|d| d.is_ascii_digit() || *d == '.')
                {
                    chars.next();
                }
                out.push('?');
                last_was_space = false;
            }
            c if c.is_whitespace() => {
                if !last_was_space && !out.is_empty() {
                    out.push(' ');
                }
                last_was_space = true;
            }
            c => {
                out.push(c.to_ascii_uppercase());
                last_was_space = false;
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    // Collapse IN-lists of placeholders: (?, ?, ?) -> (?).
    let mut collapsed = out
        .replace("? , ?", "?")
        .replace("?, ?", "?")
        .replace("?,?", "?");
    while collapsed.contains("?, ?") || collapsed.contains("?,?") {
        collapsed = collapsed.replace("?, ?", "?").replace("?,?", "?");
    }
    collapsed
}

/// Assigns stable per-application template indices on the fly.
#[derive(Clone, Debug, Default)]
pub struct TemplateRegistry {
    by_app: BTreeMap<AppId, BTreeMap<String, u32>>,
}

impl TemplateRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalises `sql` and returns the class id of its template,
    /// assigning the next free index on first sight.
    pub fn classify(&mut self, app: AppId, sql: &str) -> ClassId {
        let template = normalize_template(sql);
        let per_app = self.by_app.entry(app).or_default();
        let next = per_app.len() as u32;
        let idx = *per_app.entry(template).or_insert(next);
        ClassId::new(app, idx)
    }

    /// Number of distinct templates seen for `app`.
    pub fn template_count(&self, app: AppId) -> usize {
        self.by_app.get(&app).map_or(0, |m| m.len())
    }

    /// The normalised template text for a class, if known (linear scan —
    /// reporting only).
    pub fn template_text(&self, class: ClassId) -> Option<&str> {
        self.by_app.get(&class.app).and_then(|m| {
            m.iter()
                .find(|(_, &idx)| idx == class.template)
                .map(|(t, _)| t.as_str())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_stripped() {
        assert_eq!(
            normalize_template("SELECT * FROM item WHERE i_id = 42"),
            "SELECT * FROM ITEM WHERE I_ID = ?"
        );
    }

    #[test]
    fn strings_are_stripped() {
        assert_eq!(
            normalize_template("SELECT * FROM author WHERE a_lname = 'Smith'"),
            "SELECT * FROM AUTHOR WHERE A_LNAME = ?"
        );
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        assert_eq!(
            normalize_template("SELECT 1 FROM t WHERE s = 'O''Brien' AND x = 3"),
            "SELECT ? FROM T WHERE S = ? AND X = ?"
        );
    }

    #[test]
    fn identifiers_keep_digits() {
        assert_eq!(
            normalize_template("SELECT col2 FROM order_line2"),
            "SELECT COL2 FROM ORDER_LINE2"
        );
    }

    #[test]
    fn whitespace_and_case_are_canonical() {
        let a = normalize_template("select *  from item\n where i_id=9");
        let b = normalize_template("SELECT * FROM item WHERE i_id=77");
        assert_eq!(a, b);
    }

    #[test]
    fn in_lists_collapse() {
        let a = normalize_template("SELECT * FROM t WHERE id IN (1, 2, 3)");
        let b = normalize_template("SELECT * FROM t WHERE id IN (7)");
        assert_eq!(a, b, "{a} vs {b}");
    }

    #[test]
    fn registry_assigns_stable_indices() {
        let mut reg = TemplateRegistry::new();
        let app = AppId(1);
        let c1 = reg.classify(app, "SELECT * FROM item WHERE i_id = 1");
        let c2 = reg.classify(app, "SELECT * FROM item WHERE i_id = 2");
        let c3 = reg.classify(app, "SELECT * FROM customer WHERE c_id = 5");
        assert_eq!(c1, c2, "same template, same class");
        assert_ne!(c1, c3);
        assert_eq!(reg.template_count(app), 2);
        assert_eq!(
            reg.template_text(c1),
            Some("SELECT * FROM ITEM WHERE I_ID = ?")
        );
    }

    #[test]
    fn apps_are_independent() {
        let mut reg = TemplateRegistry::new();
        let c1 = reg.classify(AppId(1), "SELECT 1");
        let c2 = reg.classify(AppId(2), "SELECT 1");
        assert_eq!(c1.template, c2.template, "both first templates");
        assert_ne!(c1, c2, "but different apps");
    }
}
