//! # odlb-engine — the simulated database engine
//!
//! Stands in for the MySQL/InnoDB instances of the paper's testbed. Each
//! [`DbEngine`] owns a (possibly partitioned) buffer pool, an InnoDB-style
//! read-ahead detector, per-class access windows for MRC recomputation, and
//! the per-thread private log buffer instrumentation from the paper's §4.
//!
//! Queries arrive as [`QuerySpec`]s — a query class plus the page-access
//! sequence and CPU demand its execution generates (produced by the
//! workload models in `odlb-workload`). [`DbEngine::execute`] plays the
//! access sequence through the buffer pool, charges misses and read-ahead
//! to the server's shared disk path, charges computation to the server's
//! CPU station, and returns the query's completion time together with its
//! instrumentation record.
//!
//! [`templates`] implements the scheduler-side query template extraction
//! ("the scheduler determines the query templates of each application on
//! the fly"): SQL text is normalised by stripping literals, and each
//! distinct template becomes a query class.

pub mod engine;
pub mod locks;
pub mod query;
pub mod templates;

pub use engine::{DbEngine, EngineConfig, ExecutionResult};
pub use locks::LockManager;
pub use query::QuerySpec;
pub use templates::{normalize_template, TemplateRegistry};
