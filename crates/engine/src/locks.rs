//! Page-level write locks — the substrate behind the paper's §7 future
//! work ("outlier detection is a promising approach for narrowing down …
//! lock contention or deadlock situations").
//!
//! InnoDB-style semantics at page granularity, simplified for the
//! analytic execution model: reads are non-locking (MVCC); a write query
//! acquires exclusive locks on the pages it updates for the duration of
//! its execution. Conflicting writers queue FCFS per page; the engine
//! records their waiting time as the per-class `LockWaits` metric, which
//! then flows through exactly the same stable-state / outlier pipeline as
//! every other counter.

use odlb_sim::{SimDuration, SimTime};
use odlb_storage::PageId;
use std::collections::BTreeMap;

/// Exclusive page locks with FCFS waiting, bookkept analytically: each
/// page stores the time until which it is held; an acquisition at `now`
/// starts after every requested page is free and holds them until the
/// caller-provided release time.
#[derive(Clone, Debug, Default)]
pub struct LockManager {
    held_until: BTreeMap<PageId, SimTime>,
    /// Cumulative waiting across all acquisitions (observability).
    total_wait: SimDuration,
    acquisitions: u64,
    contended: u64,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires exclusive locks on `pages` for a write arriving at `now`
    /// whose execution (once running) lasts `exec`. Returns the lock wait
    /// — the delay until every page is free. All pages are then held
    /// until `now + wait + exec`.
    pub fn acquire(&mut self, now: SimTime, pages: &[PageId], exec: SimDuration) -> SimDuration {
        let mut free_at = now;
        for page in pages {
            if let Some(&until) = self.held_until.get(page) {
                free_at = free_at.max(until);
            }
        }
        let wait = free_at.since(now);
        let release = now + wait + exec;
        for &page in pages {
            self.held_until.insert(page, release);
        }
        self.acquisitions += 1;
        if wait > SimDuration::ZERO {
            self.contended += 1;
        }
        self.total_wait += wait;
        wait
    }

    /// Drops expired entries (call at interval close; keeps the table
    /// proportional to in-flight writes, not history).
    pub fn gc(&mut self, now: SimTime) {
        self.held_until.retain(|_, &mut until| until > now);
    }

    /// Locks currently tracked (live + not yet GC'd).
    pub fn tracked(&self) -> usize {
        self.held_until.len()
    }

    /// Fraction of acquisitions that had to wait.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Cumulative wait across all acquisitions.
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_storage::SpaceId;

    fn pid(no: u64) -> PageId {
        PageId::new(SpaceId(0), no)
    }
    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn uncontended_acquisition_is_free() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(at(0), &[pid(1), pid(2)], ms(10)), ms(0));
        assert_eq!(lm.contention_rate(), 0.0);
    }

    #[test]
    fn conflicting_writers_serialize_fcfs() {
        let mut lm = LockManager::new();
        lm.acquire(at(0), &[pid(1)], ms(10)); // holds 1 until t=10
        let w2 = lm.acquire(at(4), &[pid(1)], ms(10)); // waits 6, holds until 20
        assert_eq!(w2, ms(6));
        let w3 = lm.acquire(at(5), &[pid(1)], ms(10)); // waits 15, until 30
        assert_eq!(w3, ms(15));
        assert!((lm.contention_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(lm.total_wait(), ms(21));
    }

    #[test]
    fn disjoint_pages_do_not_conflict() {
        let mut lm = LockManager::new();
        lm.acquire(at(0), &[pid(1)], ms(100));
        assert_eq!(lm.acquire(at(1), &[pid(2)], ms(100)), ms(0));
    }

    #[test]
    fn multi_page_write_waits_for_the_latest_holder() {
        let mut lm = LockManager::new();
        lm.acquire(at(0), &[pid(1)], ms(10));
        lm.acquire(at(0), &[pid(2)], ms(30));
        // Needs both: must wait for page 2's holder (t=30).
        assert_eq!(lm.acquire(at(0), &[pid(1), pid(2)], ms(5)), ms(30));
    }

    #[test]
    fn expired_locks_are_free_and_gc_drops_them() {
        let mut lm = LockManager::new();
        lm.acquire(at(0), &[pid(1)], ms(10));
        assert_eq!(lm.acquire(at(50), &[pid(1)], ms(10)), ms(0));
        assert_eq!(lm.tracked(), 1);
        lm.gc(at(100));
        assert_eq!(lm.tracked(), 0);
    }

    #[test]
    fn empty_page_set_is_a_noop_wait() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(at(0), &[], ms(10)), ms(0));
    }
}
