//! The unit of work the engine executes.

use odlb_metrics::ClassId;
use odlb_sim::SimDuration;
use odlb_storage::PageId;

/// One query instance, fully materialised: its class (template) and the
/// resource demands its execution generates. Workload models produce these
/// from per-class access-pattern generators.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The query's class — the paper's scheduling and accounting unit.
    pub class: ClassId,
    /// Buffer-pool page accesses, in execution order.
    pub pages: Vec<PageId>,
    /// Fixed CPU demand (parse/plan/return).
    pub cpu_base: SimDuration,
    /// CPU demand per page accessed (predicate evaluation etc.).
    pub cpu_per_page: SimDuration,
    /// True for updates: under read-one-write-all they are applied on
    /// every replica of the application.
    pub is_write: bool,
    /// For writes: the first `lock_prefix` entries of `pages` are the
    /// update target and are locked exclusively for the execution.
    /// Zero for reads (non-locking MVCC).
    pub lock_prefix: usize,
}

impl QuerySpec {
    /// Total CPU demand for this query.
    pub fn cpu_demand(&self) -> SimDuration {
        self.cpu_base + self.cpu_per_page * self.pages.len() as u64
    }

    /// The cheaper *apply* form executed on non-primary replicas for a
    /// write: same page set (the update must touch the same data), but the
    /// per-page CPU is halved (no result construction, pre-resolved plan).
    pub fn as_replica_apply(&self) -> QuerySpec {
        debug_assert!(self.is_write, "only writes are applied on replicas");
        QuerySpec {
            class: self.class,
            pages: self.pages.clone(),
            cpu_base: self.cpu_base / 2,
            cpu_per_page: self.cpu_per_page / 2,
            is_write: true,
            lock_prefix: self.lock_prefix,
        }
    }

    /// [`QuerySpec::as_replica_apply`] by value: moves the page list
    /// instead of cloning it, for callers done with the primary form
    /// (the driver's hot path, which recycles the buffer afterwards).
    pub fn into_replica_apply(self) -> QuerySpec {
        debug_assert!(self.is_write, "only writes are applied on replicas");
        QuerySpec {
            cpu_base: self.cpu_base / 2,
            cpu_per_page: self.cpu_per_page / 2,
            ..self
        }
    }

    /// The pages this query locks exclusively (empty for reads).
    pub fn locked_pages(&self) -> &[odlb_storage::PageId] {
        if self.is_write {
            &self.pages[..self.lock_prefix.min(self.pages.len())]
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::AppId;
    use odlb_storage::SpaceId;

    fn spec(n_pages: u64, write: bool) -> QuerySpec {
        QuerySpec {
            class: ClassId::new(AppId(0), 1),
            pages: (0..n_pages).map(|i| PageId::new(SpaceId(0), i)).collect(),
            cpu_base: SimDuration::from_micros(100),
            cpu_per_page: SimDuration::from_micros(10),
            is_write: write,
            lock_prefix: if write { 2 } else { 0 },
        }
    }

    #[test]
    fn cpu_demand_scales_with_pages() {
        assert_eq!(spec(0, false).cpu_demand(), SimDuration::from_micros(100));
        assert_eq!(spec(50, false).cpu_demand(), SimDuration::from_micros(600));
    }

    #[test]
    fn replica_apply_halves_cpu() {
        let w = spec(10, true);
        let a = w.as_replica_apply();
        assert_eq!(a.cpu_demand(), w.cpu_demand() / 2);
        assert_eq!(a.pages, w.pages);
        assert!(a.is_write);
        assert_eq!(a.lock_prefix, w.lock_prefix);
    }

    #[test]
    fn into_replica_apply_matches_borrowed_form() {
        let w = spec(10, true);
        let a = w.as_replica_apply();
        let b = w.into_replica_apply();
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.cpu_demand(), b.cpu_demand());
        assert_eq!(a.lock_prefix, b.lock_prefix);
    }

    #[test]
    fn reads_lock_nothing_writes_lock_their_prefix() {
        assert!(spec(10, false).locked_pages().is_empty());
        assert_eq!(spec(10, true).locked_pages().len(), 2);
        // Prefix larger than the page list is clamped, not a panic.
        let mut w = spec(1, true);
        w.lock_prefix = 9;
        assert_eq!(w.locked_pages().len(), 1);
    }
}
