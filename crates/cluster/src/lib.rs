//! # odlb-cluster — the replicated database cluster substrate
//!
//! Reimplements the paper's cluster architecture (Fig. 2):
//!
//! * A **scheduler tier** with one [`Scheduler`] per application,
//!   implementing read-one-write-all replication and *per-query-class*
//!   placement and load balancing — the paper's fine-grained scheduling
//!   unit (§3.2).
//! * A **resource manager** making global replica-allocation decisions
//!   (which database instances an application runs on, provisioning new
//!   ones from the free pool with a realistic copy/warm-up delay).
//! * **Physical servers** (multi-core FCFS CPU stations + a shared
//!   domain-0 I/O path), hosting one or more **database instances**
//!   ([`odlb_engine::DbEngine`]s), possibly in separate VM domains.
//! * The **simulation driver** ([`Simulation`]) — the discrete-event loop
//!   gluing client sessions, schedulers, engines and servers together. It
//!   runs one *measurement interval* at a time and hands the interval's
//!   per-instance reports and SLA outcomes back to the caller, so a
//!   controller (the `odlb-core` crate, or a baseline) can diagnose and
//!   act between intervals exactly like the paper's decision managers.

pub mod aggregate;
pub mod driver;
pub mod scheduler;
pub mod topology;

pub use aggregate::{AppAggregate, RackAggregate};
pub use driver::{IntervalOutcome, ServerSnapshot, Simulation, SimulationConfig};
pub use scheduler::Scheduler;
pub use topology::{InstanceId, ProvisionError};
