//! Cluster topology identifiers and configuration.

use std::fmt;

/// One database instance (one `DbEngine`, i.e. one MySQL process in the
/// paper). A physical server can host several, in the same or different
/// VM domains; an application's *replica set* is a set of instances.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// Errors from replica provisioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProvisionError {
    /// Every server in the pool is already in use by this application.
    NoFreeServer,
    /// The application is unknown to the resource manager.
    UnknownApp,
}

impl fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvisionError::NoFreeServer => write!(f, "no free server in the pool"),
            ProvisionError::UnknownApp => write!(f, "unknown application"),
        }
    }
}

impl std::error::Error for ProvisionError {}
