//! The per-application scheduler (paper §3.1–3.2).
//!
//! "Each scheduler is in charge of maintaining replica consistency between
//! different replicas of a single application and for load balancing
//! read-only queries among the set of replicas allocated for the
//! corresponding application … Each query class is placed by the
//! scheduler on a sub-set of replicas of its application and load balanced
//! across these replicas" under a read-one-write-all scheme.

use crate::topology::InstanceId;
use odlb_metrics::{AppId, ClassId};
use std::collections::BTreeMap;

/// Routing decision for one write query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteRoute {
    /// The replica executing the full query.
    pub primary: InstanceId,
    /// Replicas receiving the cheaper apply (all other replicas of the
    /// application — write-all).
    pub applies: Vec<InstanceId>,
}

/// One application's scheduler.
#[derive(Clone, Debug)]
pub struct Scheduler {
    app: AppId,
    /// The application's replica set, in allocation order.
    replicas: Vec<InstanceId>,
    /// Read placement overrides per class; classes not present are load
    /// balanced across the whole replica set.
    placement: BTreeMap<ClassId, Vec<InstanceId>>,
}

impl Scheduler {
    /// Creates a scheduler for `app` with an initial replica set.
    pub fn new(app: AppId, replicas: Vec<InstanceId>) -> Self {
        Scheduler {
            app,
            replicas,
            placement: BTreeMap::new(),
        }
    }

    /// The application this scheduler serves.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The current replica set.
    pub fn replicas(&self) -> &[InstanceId] {
        &self.replicas
    }

    /// Adds a replica (newly provisioned and warmed).
    pub fn add_replica(&mut self, instance: InstanceId) {
        if !self.replicas.contains(&instance) {
            self.replicas.push(instance);
        }
    }

    /// Removes a replica; any class placements pointing at it are pruned,
    /// and placements that become empty fall back to the full set.
    pub fn remove_replica(&mut self, instance: InstanceId) {
        self.replicas.retain(|&i| i != instance);
        let mut emptied = Vec::new();
        for (class, set) in self.placement.iter_mut() {
            set.retain(|&i| i != instance);
            if set.is_empty() {
                emptied.push(*class);
            }
        }
        for class in emptied {
            self.placement.remove(&class);
        }
    }

    /// Pins `class` to a sub-set of replicas (§3.3.2: "schedule a suspect
    /// query class on a different replica"). Instances not in the replica
    /// set are ignored; an effectively empty placement clears the pin.
    pub fn place_class(&mut self, class: ClassId, instances: Vec<InstanceId>) {
        assert_eq!(class.app, self.app, "class belongs to another application");
        let filtered: Vec<InstanceId> = instances
            .into_iter()
            .filter(|i| self.replicas.contains(i))
            .collect();
        if filtered.is_empty() {
            self.placement.remove(&class);
        } else {
            self.placement.insert(class, filtered);
        }
    }

    /// Removes a class pin, returning it to full load balancing.
    pub fn unplace_class(&mut self, class: ClassId) {
        self.placement.remove(&class);
    }

    /// The replicas `class` may currently read from.
    pub fn placement_of(&self, class: ClassId) -> &[InstanceId] {
        self.placement
            .get(&class)
            .map(|v| v.as_slice())
            .unwrap_or(&self.replicas)
    }

    /// Classes currently pinned, in ascending order (`placement` is a
    /// `BTreeMap`, so its key order is already sorted).
    pub fn pinned_classes(&self) -> Vec<ClassId> {
        self.placement.keys().copied().collect()
    }

    /// Routes a read: the least-loaded replica in the class's placement
    /// (`load` returns each instance's outstanding queries).
    pub fn route_read(
        &self,
        class: ClassId,
        load: impl Fn(InstanceId) -> usize,
    ) -> Option<InstanceId> {
        self.placement_of(class)
            .iter()
            .copied()
            .min_by_key(|&i| (load(i), i))
    }

    /// Routes a write: read-one-write-all. The primary is the least-loaded
    /// replica in the class's placement; every other replica of the
    /// application receives the apply.
    pub fn route_write(
        &self,
        class: ClassId,
        load: impl Fn(InstanceId) -> usize,
    ) -> Option<WriteRoute> {
        let primary = self.route_read(class, load)?;
        let applies = self
            .replicas
            .iter()
            .copied()
            .filter(|&i| i != primary)
            .collect();
        Some(WriteRoute { primary, applies })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(i: u32) -> InstanceId {
        InstanceId(i)
    }
    fn class(t: u32) -> ClassId {
        ClassId::new(AppId(0), t)
    }

    fn sched() -> Scheduler {
        Scheduler::new(AppId(0), vec![inst(0), inst(1), inst(2)])
    }

    #[test]
    fn reads_go_to_least_loaded() {
        let s = sched();
        let load = |i: InstanceId| match i.0 {
            0 => 5,
            1 => 2,
            _ => 9,
        };
        assert_eq!(s.route_read(class(1), load), Some(inst(1)));
    }

    #[test]
    fn ties_break_deterministically() {
        let s = sched();
        assert_eq!(s.route_read(class(1), |_| 0), Some(inst(0)));
    }

    #[test]
    fn writes_reach_all_replicas() {
        let s = sched();
        let route = s.route_write(class(1), |_| 0).unwrap();
        assert_eq!(route.primary, inst(0));
        assert_eq!(route.applies, vec![inst(1), inst(2)]);
        let mut all = route.applies.clone();
        all.push(route.primary);
        all.sort();
        assert_eq!(all, vec![inst(0), inst(1), inst(2)], "write-all invariant");
    }

    #[test]
    fn placement_restricts_reads_but_not_write_all() {
        let mut s = sched();
        s.place_class(class(3), vec![inst(2)]);
        assert_eq!(s.route_read(class(3), |_| 0), Some(inst(2)));
        // Other classes still load balance over everything.
        assert_eq!(s.placement_of(class(4)).len(), 3);
        // A pinned write still applies everywhere else.
        let route = s.route_write(class(3), |_| 0).unwrap();
        assert_eq!(route.primary, inst(2));
        assert_eq!(route.applies, vec![inst(0), inst(1)]);
    }

    #[test]
    fn placement_filters_foreign_instances() {
        let mut s = sched();
        s.place_class(class(1), vec![inst(9), inst(1)]);
        assert_eq!(s.placement_of(class(1)), &[inst(1)]);
        // All-foreign placement clears the pin instead of blackholing.
        s.place_class(class(1), vec![inst(9)]);
        assert_eq!(s.placement_of(class(1)).len(), 3);
    }

    #[test]
    fn unplace_restores_full_balancing() {
        let mut s = sched();
        s.place_class(class(3), vec![inst(2)]);
        assert_eq!(s.pinned_classes(), vec![class(3)]);
        s.unplace_class(class(3));
        assert!(s.pinned_classes().is_empty());
        assert_eq!(s.placement_of(class(3)).len(), 3);
    }

    #[test]
    fn add_remove_replicas() {
        let mut s = sched();
        s.add_replica(inst(3));
        s.add_replica(inst(3)); // idempotent
        assert_eq!(s.replicas().len(), 4);
        s.place_class(class(1), vec![inst(3)]);
        s.remove_replica(inst(3));
        assert_eq!(s.replicas().len(), 3);
        // The pin pointing at the removed replica fell back to everyone.
        assert_eq!(s.placement_of(class(1)).len(), 3);
    }

    #[test]
    fn empty_replica_set_routes_nothing() {
        let s = Scheduler::new(AppId(0), vec![]);
        assert_eq!(s.route_read(class(1), |_| 0), None);
        assert!(s.route_write(class(1), |_| 0).is_none());
    }

    #[test]
    #[should_panic(expected = "another application")]
    fn foreign_class_rejected() {
        let mut s = sched();
        s.place_class(ClassId::new(AppId(9), 1), vec![inst(0)]);
    }
}
