//! Hierarchical interval aggregation: instance → rack → cluster.
//!
//! The flat interval close re-walked every instance's per-class report
//! once *per application* (`O(apps × instances × classes)` per
//! interval), which dominates the close path once the cluster reaches
//! 100+ replicas. The aggregator instead makes **one** pass over each
//! instance report, bucketing class rows by application into per-rack
//! partial sums, then folds the rack partials into the cluster view —
//! `O(instances × classes + racks × apps)`.
//!
//! Floating-point care: within one instance, an application's classes
//! form an ascending subsequence of the `per_class` B-tree walk, so the
//! per-app accumulation here adds the same values in the same order as
//! [`IntervalReport::app_mean_latency`] / `app_throughput` did. With a
//! single rack (`rack_size == 0`, the default) the rack partial *is* the
//! historical flat sum, bit for bit — golden trace digests are
//! unchanged. Multi-rack layouts regroup the instance sums per rack,
//! which can shift the last ulp; that is the large-cluster regime
//! (`fig-scale`) where no golden digests apply.

use crate::topology::InstanceId;
use odlb_metrics::{AppId, IntervalReport, MetricKind};
use odlb_telemetry::LogLinearHistogram;
use std::collections::BTreeMap;

/// Per-application partial sums over one rack — or, after
/// [`combine_racks`], over the whole cluster.
#[derive(Clone, Debug, Default)]
pub struct AppAggregate {
    /// Σ (instance mean latency × instance throughput).
    pub lat_weight: f64,
    /// Σ instance throughput — the weight behind the mean.
    pub weight: f64,
    /// Σ instance throughput (queries/s).
    pub tput: f64,
    /// Merged interval latency histograms across the app's classes and
    /// the rack's instances; `None` when nothing was observed.
    pub tail: Option<LogLinearHistogram>,
}

impl AppAggregate {
    /// Throughput-weighted mean latency (seconds), `None` when the app
    /// saw no load — the SLA operand.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.weight > 1e-12 {
            Some(self.lat_weight / self.weight)
        } else {
            None
        }
    }

    fn absorb(&mut self, other: AppAggregate) {
        self.lat_weight += other.lat_weight;
        self.weight += other.weight;
        self.tput += other.tput;
        if let Some(hist) = other.tail {
            match &mut self.tail {
                Some(t) => t.merge(&hist),
                None => self.tail = Some(hist),
            }
        }
    }
}

/// One rack's partial aggregation over its instances' interval reports.
#[derive(Clone, Debug, Default)]
pub struct RackAggregate {
    /// Rack index ([`rack_of`]).
    pub rack: usize,
    /// Instances folded into this partial.
    pub instances: usize,
    /// Per-application partial sums.
    pub per_app: BTreeMap<AppId, AppAggregate>,
}

/// The rack an instance belongs to. `rack_size == 0` means one
/// cluster-wide rack (the flat layout).
pub fn rack_of(instance: InstanceId, rack_size: usize) -> usize {
    (instance.0 as usize).checked_div(rack_size).unwrap_or(0)
}

/// First aggregation level: folds each instance report into its rack's
/// partial. Reports arrive keyed by instance id (ascending), so rack
/// ids are non-decreasing and each rack's instances fold in id order —
/// the same order the flat pass visited them.
pub fn aggregate_racks(
    reports: &BTreeMap<InstanceId, IntervalReport>,
    rack_size: usize,
) -> Vec<RackAggregate> {
    let mut racks: Vec<RackAggregate> = Vec::new();
    for (&instance, report) in reports {
        let rack = rack_of(instance, rack_size);
        if racks.last().is_none_or(|r| r.rack != rack) {
            racks.push(RackAggregate {
                rack,
                ..RackAggregate::default()
            });
        }
        let partial = racks.last_mut().expect("rack just ensured");
        partial.instances += 1;
        absorb_report(partial, report);
    }
    racks
}

/// Folds one instance report into a rack partial in a single pass over
/// its per-class rows (plus one over its histograms).
fn absorb_report(rack: &mut RackAggregate, report: &IntervalReport) {
    let duration = report.end.since(report.start).as_secs_f64();
    // (lat_weighted, queries, tput) per app, accumulated in the class
    // walk order `app_mean_latency` used.
    let mut per_app: BTreeMap<AppId, (f64, f64, f64)> = BTreeMap::new();
    for (class, v) in &report.per_class {
        let e = per_app.entry(class.app).or_default();
        let tput = v[MetricKind::Throughput];
        let n = tput * duration;
        e.0 += v[MetricKind::Latency] * n;
        e.1 += n;
        e.2 += tput;
    }
    for (app, (lat_weighted, queries, tput)) in per_app {
        // Mirrors `app_mean_latency` returning `None`: an instance that
        // saw (effectively) no queries of this app contributes nothing,
        // not a zero-weight term.
        if queries < 1e-9 {
            continue;
        }
        let mean = lat_weighted / queries;
        let agg = rack.per_app.entry(app).or_default();
        agg.lat_weight += mean * tput;
        agg.weight += tput;
        agg.tput += tput;
    }
    for (class, hist) in &report.latency_histograms {
        let agg = rack.per_app.entry(class.app).or_default();
        match &mut agg.tail {
            Some(t) => t.merge(hist),
            None => agg.tail = Some(hist.clone()),
        }
    }
}

/// Second aggregation level: folds rack partials (in rack order) into
/// the cluster view. With one rack this moves the partial through
/// unchanged.
pub fn combine_racks(racks: Vec<RackAggregate>) -> BTreeMap<AppId, AppAggregate> {
    let mut cluster: BTreeMap<AppId, AppAggregate> = BTreeMap::new();
    for rack in racks {
        for (app, partial) in rack.per_app {
            match cluster.entry(app) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(partial);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().absorb(partial);
                }
            }
        }
    }
    cluster
}

/// Convenience: both levels at once.
pub fn aggregate_cluster(
    reports: &BTreeMap<InstanceId, IntervalReport>,
    rack_size: usize,
) -> BTreeMap<AppId, AppAggregate> {
    combine_racks(aggregate_racks(reports, rack_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::{ClassId, MetricVector};
    use odlb_sim::SimTime;

    fn report(start_s: u64, end_s: u64, rows: &[(AppId, u32, f64, f64)]) -> IntervalReport {
        // rows: (app, template, latency_s, throughput_qps)
        let mut per_class = BTreeMap::new();
        let mut latency_histograms = BTreeMap::new();
        for &(app, template, lat, tput) in rows {
            let class = ClassId::new(app, template);
            let mut v = MetricVector::ZERO;
            v[MetricKind::Latency] = lat;
            v[MetricKind::Throughput] = tput;
            per_class.insert(class, v);
            let mut h = LogLinearHistogram::default();
            // One sample per row at the row's latency, in microseconds.
            h.record((lat * 1e6) as u64);
            latency_histograms.insert(class, h);
        }
        IntervalReport {
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
            per_class,
            latency_histograms,
        }
    }

    fn sample_reports() -> BTreeMap<InstanceId, IntervalReport> {
        let a = AppId(0);
        let b = AppId(1);
        let mut reports = BTreeMap::new();
        reports.insert(
            InstanceId(0),
            report(
                0,
                10,
                &[(a, 0, 0.010, 3.0), (a, 1, 0.200, 0.5), (b, 0, 0.050, 1.0)],
            ),
        );
        reports.insert(
            InstanceId(1),
            report(0, 10, &[(a, 0, 0.020, 2.0), (b, 0, 0.040, 4.0)]),
        );
        reports.insert(InstanceId(2), report(0, 10, &[(a, 1, 0.300, 0.25)]));
        reports.insert(InstanceId(3), report(0, 10, &[(b, 0, 0.060, 2.0)]));
        reports
    }

    /// Single-rack aggregation reproduces the flat per-app pass over
    /// `app_mean_latency`/`app_throughput` **bit for bit**.
    #[test]
    fn single_rack_matches_flat_pass_exactly() {
        let reports = sample_reports();
        let cluster = aggregate_cluster(&reports, 0);
        for app in [AppId(0), AppId(1), AppId(7)] {
            let mut lat_weight = 0.0;
            let mut weight = 0.0;
            let mut tput = 0.0;
            for report in reports.values() {
                if let Some(mean) = report.app_mean_latency(app) {
                    let t = report.app_throughput(app);
                    lat_weight += mean * t;
                    weight += t;
                    tput += t;
                }
            }
            let flat_mean = if weight > 1e-12 {
                Some(lat_weight / weight)
            } else {
                None
            };
            let agg = cluster.get(&app).cloned().unwrap_or_default();
            assert_eq!(agg.lat_weight.to_bits(), lat_weight.to_bits(), "{app:?}");
            assert_eq!(agg.weight.to_bits(), weight.to_bits(), "{app:?}");
            assert_eq!(agg.tput.to_bits(), tput.to_bits(), "{app:?}");
            assert_eq!(
                agg.mean_latency().map(f64::to_bits),
                flat_mean.map(f64::to_bits),
                "{app:?}"
            );
        }
    }

    /// Racked aggregation regroups the same sums: equal to the flat
    /// answer within floating-point regrouping tolerance, and the
    /// merged tails are identical (integer bucket counts).
    #[test]
    fn racked_matches_flat_within_regrouping_tolerance() {
        let reports = sample_reports();
        let flat = aggregate_cluster(&reports, 0);
        for rack_size in [1, 2, 3] {
            let racks = aggregate_racks(&reports, rack_size);
            assert_eq!(racks.iter().map(|r| r.instances).sum::<usize>(), 4);
            let racked = combine_racks(racks);
            assert_eq!(racked.len(), flat.len(), "rack_size {rack_size}");
            for (app, f) in &flat {
                let r = &racked[app];
                assert!((r.tput - f.tput).abs() <= 1e-12 * f.tput.abs().max(1.0));
                let (rm, fm) = (r.mean_latency().unwrap(), f.mean_latency().unwrap());
                assert!((rm - fm).abs() <= 1e-12 * fm.abs().max(1.0));
                assert_eq!(
                    r.tail.as_ref().map(LogLinearHistogram::count),
                    f.tail.as_ref().map(LogLinearHistogram::count)
                );
            }
        }
    }

    #[test]
    fn rack_of_partitions_by_size() {
        assert_eq!(rack_of(InstanceId(42), 0), 0);
        assert_eq!(rack_of(InstanceId(0), 4), 0);
        assert_eq!(rack_of(InstanceId(3), 4), 0);
        assert_eq!(rack_of(InstanceId(4), 4), 1);
        assert_eq!(rack_of(InstanceId(11), 4), 2);
    }

    /// An instance whose report contains an app row with ~zero queries
    /// contributes nothing for that app — the `app_mean_latency == None`
    /// semantics of the flat pass.
    #[test]
    fn zero_query_instances_are_skipped_like_the_flat_pass() {
        let a = AppId(0);
        let mut reports = BTreeMap::new();
        reports.insert(InstanceId(0), report(0, 10, &[(a, 0, 0.5, 0.0)]));
        let cluster = aggregate_cluster(&reports, 0);
        let agg = &cluster[&a];
        assert_eq!(agg.mean_latency(), None);
        assert_eq!(agg.tput, 0.0);
        // The histogram row still merges through — the flat pass
        // merged tails unconditionally too.
        assert!(agg.tail.is_some());
    }
}
