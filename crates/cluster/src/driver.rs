//! The discrete-event simulation driver.
//!
//! [`Simulation`] owns the whole testbed: physical servers (CPU stations +
//! domain-0 I/O paths), database instances (engines), per-application
//! schedulers and closed-loop client pools. It advances one *measurement
//! interval* at a time: [`Simulation::run_interval`] processes all events
//! up to the next interval boundary, closes every engine's statistics
//! interval, evaluates SLAs, and returns an [`IntervalOutcome`]. A
//! controller (the `odlb-core` crate or a baseline) then inspects the
//! outcome and applies actions — quotas, class placements, provisioning —
//! through the driver's mutation API before the next interval runs.
//! This mirrors the paper's decision managers acting between measurement
//! intervals.

use crate::aggregate;
use crate::scheduler::Scheduler;
use crate::topology::{InstanceId, ProvisionError};
use odlb_engine::{DbEngine, EngineConfig, QuerySpec};
use odlb_metrics::{AppId, ClassId, IntervalReport, QueryLogRecord, ServerId, Sla, SlaOutcome};
use odlb_mrc::MissRatioCurve;
use odlb_sim::{EventQueue, SimDuration, SimRng, SimTime};
use odlb_storage::{DiskModel, DomainId, PageId, SharedIoPath};
use odlb_telemetry::{
    enter_span, profile_span, span_units, LogLinearHistogram, SharedSpanProfiler, Telemetry,
};
use odlb_trace::{TraceEvent, Tracer};
use odlb_workload::{ClientConfig, ClientPool, GeneratedSchedule, LoadFunction, WorkloadSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Driver-level timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Root seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Measurement interval (SLA checks, signature refresh, diagnosis).
    pub measurement_interval: SimDuration,
    /// How often client-pool sizes track the load function.
    pub load_update_interval: SimDuration,
    /// Data copy + warm-up delay before a provisioned replica serves.
    pub provisioning_delay: SimDuration,
    /// Instances per rack for the hierarchical interval close
    /// ([`crate::aggregate`]). `0` (the default) folds everything into
    /// one cluster-wide rack, which reproduces the historical flat
    /// aggregation bit for bit; large clusters set a real rack size so
    /// partial sums fold rack-by-rack.
    pub rack_size: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            seed: 42,
            measurement_interval: SimDuration::from_secs(10),
            load_update_interval: SimDuration::from_secs(2),
            provisioning_delay: SimDuration::from_secs(20),
            rack_size: 0,
        }
    }
}

enum Event {
    ClientIssue {
        app: usize,
        client: u64,
    },
    QueryDone {
        app: usize,
        client: Option<u64>,
        instance: usize,
        record: QueryLogRecord,
    },
    ReplicaReady {
        app: usize,
        instance: usize,
    },
    LoadTick,
    /// Dispatch the next query of a replayed app's pregenerated
    /// schedule. One such event is in flight per replayed app; each
    /// dispatch chains the next.
    ReplayIssue {
        app: usize,
    },
}

/// Cursor over a shared pregenerated schedule (see
/// [`Simulation::add_replayed_app`]). The schedule itself is behind an
/// `Arc` so many isolated simulations can replay one generation.
struct ReplayState {
    schedule: Arc<GeneratedSchedule>,
    /// Index of the next query to dispatch.
    next: usize,
}

struct ServerState {
    cpu: odlb_sim::Station,
    io: SharedIoPath,
}

struct InstanceState {
    server: usize,
    domain: DomainId,
    engine: DbEngine,
    outstanding: usize,
    ready: bool,
    /// Permanently removed from service (never resurrected by an
    /// in-flight `ReplicaReady`).
    retired: bool,
}

struct AppState {
    spec: WorkloadSpec,
    sla: Sla,
    clients: ClientPool,
    scheduler: Scheduler,
    rng: SimRng,
    /// Clients currently in their issue→complete→think loop.
    active_clients: usize,
    /// Desired number of clients (from the load function).
    target_clients: usize,
    /// Next client id to hand out.
    next_client: u64,
    /// Queries issued this interval (drives the `had_load` SLA input).
    offered_this_interval: u64,
    /// `Some` for apps replaying a pregenerated schedule instead of
    /// running the closed-loop client pool.
    replay: Option<ReplayState>,
}

/// Per-server utilisation over the closed interval.
#[derive(Clone, Copy, Debug)]
pub struct ServerSnapshot {
    /// Which server.
    pub server: ServerId,
    /// CPU utilisation in [0, 1].
    pub cpu_utilisation: f64,
    /// Disk (domain-0 back-end) utilisation in [0, 1].
    pub io_utilisation: f64,
}

/// Everything a controller needs about one closed measurement interval.
#[derive(Clone, Debug)]
pub struct IntervalOutcome {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Per-instance interval reports (per-class metric vectors).
    pub reports: BTreeMap<InstanceId, IntervalReport>,
    /// Per-application mean latency (seconds) across its instances.
    pub app_latency: BTreeMap<AppId, Option<f64>>,
    /// Per-application throughput (queries/s) summed over instances.
    pub app_throughput: BTreeMap<AppId, f64>,
    /// Per-application SLA outcome.
    pub sla: BTreeMap<AppId, SlaOutcome>,
    /// Per-server vmstat-style utilisations.
    pub servers: Vec<ServerSnapshot>,
}

impl IntervalOutcome {
    /// True when any application violated its SLA this interval.
    pub fn any_violation(&self) -> bool {
        self.sla.values().any(|s| s.is_violation())
    }
}

/// The simulated cluster.
pub struct Simulation {
    config: SimulationConfig,
    queue: EventQueue<Event>,
    servers: Vec<ServerState>,
    instances: Vec<InstanceState>,
    apps: Vec<AppState>,
    now: SimTime,
    last_tick: SimTime,
    started: bool,
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
    interval_seq: u64,
    /// Recycled routing scratch (per-instance outstanding counts) — the
    /// hot path fills it in place instead of allocating per query.
    route_loads: Vec<usize>,
    /// Recycled page buffer for sampled query specs: each issued query
    /// borrows it via [`WorkloadSpec::sample_query_into`] and hands it
    /// back after dispatch, so steady-state sampling never allocates.
    spec_pages: Vec<PageId>,
    /// Events dispatched since construction (events/sec accounting).
    events_processed: u64,
}

impl Simulation {
    /// Creates an empty cluster.
    pub fn new(config: SimulationConfig) -> Self {
        Simulation {
            config,
            queue: EventQueue::new(),
            servers: Vec::new(),
            instances: Vec::new(),
            apps: Vec::new(),
            now: SimTime::ZERO,
            last_tick: SimTime::ZERO,
            started: false,
            tracer: Tracer::new(),
            telemetry: Telemetry::inactive(),
            profiler: None,
            interval_seq: 0,
            route_loads: Vec::new(),
            spec_pages: Vec::new(),
            events_processed: 0,
        }
    }

    /// Total events dispatched by the loop since construction — the
    /// numerator of the events/sec scaling benchmark.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Installs a decision-trace handle. The driver emits
    /// `interval_closed` and `sla_evaluated` events at the end of every
    /// measurement interval; a controller holding a clone of the same
    /// tracer emits the diagnosis and action events in between.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a telemetry handle. Every existing and future instance's
    /// engine emits per-class series labelled with its instance id; the
    /// driver adds per-instance queue depths, per-app latency/throughput/
    /// client gauges, per-server utilisation and I/O counters, and records
    /// one registry snapshot per closed measurement interval.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        for (i, inst) in self.instances.iter_mut().enumerate() {
            inst.engine
                .set_telemetry(self.telemetry.clone(), &InstanceId(i as u32).to_string());
        }
    }

    /// Installs a span profiler. The driver opens one `interval` span
    /// per [`Simulation::run_interval`] and an `engine_execute` span per
    /// dispatched query; existing and future engines and every server's
    /// I/O path share the same profiler, so their spans nest under the
    /// driver's. Observation-only: results, traces and artifacts are
    /// byte-identical with or without a profiler attached.
    pub fn set_profiler(&mut self, profiler: SharedSpanProfiler) {
        for inst in self.instances.iter_mut() {
            inst.engine.set_profiler(profiler.clone());
        }
        for srv in self.servers.iter_mut() {
            srv.io.set_profiler(profiler.clone());
        }
        self.profiler = Some(profiler);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds a physical server with `cores` CPU cores and a default disk.
    pub fn add_server(&mut self, cores: usize) -> ServerId {
        self.add_server_with_disk(cores, DiskModel::default())
    }

    /// Adds a physical server with an explicit disk model (e.g. a wide
    /// RAID stripe for CPU-bound experiments).
    pub fn add_server_with_disk(&mut self, cores: usize, disk: DiskModel) -> ServerId {
        let mut io = SharedIoPath::new(disk);
        if let Some(p) = &self.profiler {
            io.set_profiler(p.clone());
        }
        self.servers.push(ServerState {
            cpu: odlb_sim::Station::new(cores),
            io,
        });
        ServerId((self.servers.len() - 1) as u32)
    }

    /// Number of servers in the pool.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Adds a database instance on `server`, in VM domain `domain`.
    pub fn add_instance(
        &mut self,
        server: ServerId,
        domain: DomainId,
        engine: EngineConfig,
    ) -> InstanceId {
        assert!((server.0 as usize) < self.servers.len(), "unknown server");
        let id = InstanceId(self.instances.len() as u32);
        let mut engine = DbEngine::new(engine, self.now);
        if self.telemetry.is_active() {
            engine.set_telemetry(self.telemetry.clone(), &id.to_string());
        }
        if let Some(p) = &self.profiler {
            engine.set_profiler(p.clone());
        }
        self.instances.push(InstanceState {
            server: server.0 as usize,
            domain,
            engine,
            outstanding: 0,
            ready: true,
            retired: false,
        });
        id
    }

    /// Registers an application with its SLA, client behaviour and load.
    /// Replicas are assigned separately with [`Simulation::assign_replica`].
    pub fn add_app(
        &mut self,
        spec: WorkloadSpec,
        sla: Sla,
        client_config: ClientConfig,
        load: LoadFunction,
    ) -> AppId {
        let app_id = spec.app;
        assert!(
            self.apps.iter().all(|a| a.spec.app != app_id),
            "duplicate application id"
        );
        let idx = self.apps.len() as u64;
        let root = SimRng::new(self.config.seed);
        self.apps.push(AppState {
            scheduler: Scheduler::new(app_id, Vec::new()),
            sla,
            clients: ClientPool::new(client_config, load, root.split(1_000 + idx)),
            rng: root.split(2_000 + idx),
            spec,
            active_clients: 0,
            target_clients: 0,
            next_client: 0,
            offered_this_interval: 0,
            replay: None,
        });
        app_id
    }

    /// Registers an application that replays a pregenerated open-loop
    /// schedule ([`odlb_workload::generate_schedule`]) instead of running
    /// closed-loop clients. Arrival times, classes and page accesses come
    /// verbatim from the schedule; CPU demands and the write flag are
    /// resolved against the *current* class spec at dispatch, so
    /// mid-run plan changes ([`Simulation::set_class_cpu`]) still apply.
    /// The schedule is shared by `Arc`: parameter-sweep cells replay one
    /// generation without copying it per cell.
    pub fn add_replayed_app(
        &mut self,
        spec: WorkloadSpec,
        sla: Sla,
        schedule: Arc<GeneratedSchedule>,
    ) -> AppId {
        // The closed-loop pool stays allocated but idle (constant zero
        // load): LoadTick finds no clients to admit, so the replayed app
        // draws nothing from the pool's streams.
        let app_id = self.add_app(
            spec,
            sla,
            ClientConfig::default(),
            LoadFunction::Constant(0),
        );
        let idx = self.app_index(app_id);
        self.apps[idx].replay = Some(ReplayState { schedule, next: 0 });
        app_id
    }

    fn app_index(&self, app: AppId) -> usize {
        self.apps
            .iter()
            .position(|a| a.spec.app == app)
            .expect("unknown application")
    }

    /// Makes `instance` a (ready) replica of `app`. An instance serving
    /// several applications models a shared DBMS (the paper's Table 2).
    pub fn assign_replica(&mut self, app: AppId, instance: InstanceId) {
        let idx = self.app_index(app);
        self.apps[idx].scheduler.add_replica(instance);
    }

    /// Provisions a new replica of `app` on a server that hosts none of
    /// its replicas yet (preferring empty servers), with the configured
    /// copy/warm-up delay before it starts serving. Returns the new
    /// instance id. Mirrors the paper's reactive coarse-grained
    /// provisioning (§3.3.3, Fig. 3(b)).
    pub fn provision_replica(&mut self, app: AppId) -> Result<InstanceId, ProvisionError> {
        let app_idx = self.app_index(app);
        let used: Vec<usize> = self.apps[app_idx]
            .scheduler
            .replicas()
            .iter()
            .map(|i| self.instances[i.0 as usize].server)
            .collect();
        // Prefer a server with no instances at all, then any server not
        // already hosting this app.
        let candidate = (0..self.servers.len())
            .filter(|s| !used.contains(s))
            .min_by_key(|&s| self.instances.iter().filter(|i| i.server == s).count())
            .ok_or(ProvisionError::NoFreeServer)?;
        if used.contains(&candidate) {
            return Err(ProvisionError::NoFreeServer);
        }
        // Clone the engine configuration from an existing replica, or use
        // defaults for an app with no replicas yet.
        let engine_config = self.apps[app_idx]
            .scheduler
            .replicas()
            .first()
            .map(|i| self.instances[i.0 as usize].engine.config())
            .unwrap_or_default();
        let mut engine = DbEngine::new(engine_config, self.now);
        if self.telemetry.is_active() {
            engine.set_telemetry(
                self.telemetry.clone(),
                &InstanceId(self.instances.len() as u32).to_string(),
            );
        }
        if let Some(p) = &self.profiler {
            engine.set_profiler(p.clone());
        }
        self.instances.push(InstanceState {
            server: candidate,
            domain: DomainId(1),
            engine,
            outstanding: 0,
            ready: false,
            retired: false,
        });
        let instance = self.instances.len() - 1;
        self.queue.schedule(
            self.now + self.config.provisioning_delay,
            Event::ReplicaReady {
                app: app_idx,
                instance,
            },
        );
        Ok(InstanceId(instance as u32))
    }

    /// Retires a replica of `app`: it stops receiving traffic (in-flight
    /// queries drain naturally) and its server returns to the pool. The
    /// release half of the paper's reactive provisioning (Fig. 3(b)).
    pub fn retire_replica(&mut self, app: AppId, instance: InstanceId) {
        let idx = self.app_index(app);
        self.apps[idx].scheduler.remove_replica(instance);
        self.instances[instance.0 as usize].ready = false;
        self.instances[instance.0 as usize].retired = true;
    }

    /// Pins a query class of `app` to a sub-set of its replicas.
    pub fn place_class(&mut self, app: AppId, class: ClassId, instances: Vec<InstanceId>) {
        let idx = self.app_index(app);
        self.apps[idx].scheduler.place_class(class, instances);
    }

    /// Clears a class pin.
    pub fn unplace_class(&mut self, app: AppId, class: ClassId) {
        let idx = self.app_index(app);
        self.apps[idx].scheduler.unplace_class(class);
    }

    /// The replica set of `app`.
    pub fn replicas_of(&self, app: AppId) -> Vec<InstanceId> {
        let idx = self.app_index(app);
        self.apps[idx].scheduler.replicas().to_vec()
    }

    /// The read placement of one class.
    pub fn placement_of(&self, app: AppId, class: ClassId) -> Vec<InstanceId> {
        let idx = self.app_index(app);
        self.apps[idx].scheduler.placement_of(class).to_vec()
    }

    /// True when any pinned class of `app` is placed on `instance` —
    /// retiring such a replica would silently undo a fine-grained
    /// placement decision.
    pub fn is_pinned_target(&self, app: AppId, instance: InstanceId) -> bool {
        let idx = self.app_index(app);
        let sched = &self.apps[idx].scheduler;
        sched
            .pinned_classes()
            .iter()
            .any(|&class| sched.placement_of(class).contains(&instance))
    }

    /// Enforces a buffer-pool quota on one instance (§3.3.2).
    pub fn set_quota(
        &mut self,
        instance: InstanceId,
        class: ClassId,
        pages: usize,
    ) -> Result<(), odlb_bufferpool::QuotaError> {
        self.instances[instance.0 as usize]
            .engine
            .set_quota(class, pages)
    }

    /// Clears a quota; returns whether one existed.
    pub fn clear_quota(&mut self, instance: InstanceId, class: ClassId) -> bool {
        self.instances[instance.0 as usize]
            .engine
            .clear_quota(class)
    }

    /// Recomputes a class's MRC from its access window on one instance.
    pub fn recompute_mrc(
        &self,
        instance: InstanceId,
        class: ClassId,
        cap_pages: usize,
    ) -> Option<MissRatioCurve> {
        self.recompute_mrc_with(instance, class, cap_pages, odlb_mrc::MrcMode::Exact)
    }

    /// [`Simulation::recompute_mrc`] with an explicit tracker mode
    /// (exact / bucketed / SHARDS-sampled), as configured on the
    /// controller driving this cluster.
    pub fn recompute_mrc_with(
        &self,
        instance: InstanceId,
        class: ClassId,
        cap_pages: usize,
        mode: odlb_mrc::MrcMode,
    ) -> Option<MissRatioCurve> {
        self.instances[instance.0 as usize]
            .engine
            .recompute_mrc_with(class, cap_pages, mode)
    }

    /// Buffer pool size (pages) of an instance.
    pub fn pool_pages(&self, instance: InstanceId) -> usize {
        self.instances[instance.0 as usize]
            .engine
            .config()
            .pool_pages
    }

    /// The server hosting an instance.
    pub fn server_of(&self, instance: InstanceId) -> ServerId {
        ServerId(self.instances[instance.0 as usize].server as u32)
    }

    /// Overwrites the mix weight of one class (0 removes it from the mix —
    /// the paper's "remove query contexts … in decreasing order of their
    /// I/O rate" for I/O interference).
    pub fn set_class_weight(&mut self, app: AppId, class_index: usize, weight: f64) {
        let idx = self.app_index(app);
        self.apps[idx].spec.classes[class_index].weight = weight;
    }

    /// Swaps the access pattern of one class — the mechanism behind
    /// localized plan changes like §5.3's `O_DATE` index drop, where one
    /// query's plan degenerates while everything else is untouched.
    pub fn set_class_pattern(
        &mut self,
        app: AppId,
        class_index: usize,
        pattern: odlb_workload::AccessPattern,
    ) {
        let idx = self.app_index(app);
        self.apps[idx].spec.classes[class_index].pattern = pattern;
    }

    /// Live-migrates a database instance's VM to another physical server
    /// (the coarse remedy the paper argues is usually overkill, §1).
    /// Models pre-copy migration: the instance keeps serving from the old
    /// server until `downtime` from now, then switches; its buffer pool
    /// arrives warm (pre-copy transfers memory pages). Returns false when
    /// the instance is already on `to`.
    pub fn migrate_instance(
        &mut self,
        instance: InstanceId,
        to: ServerId,
        _downtime: SimDuration,
    ) -> bool {
        assert!((to.0 as usize) < self.servers.len(), "unknown server");
        let idx = instance.0 as usize;
        if self.instances[idx].server == to.0 as usize {
            return false;
        }
        // The analytic execution model books resource time at arrival, so
        // the switch is effective for queries arriving after `now`; the
        // migration traffic itself is modelled as a burst of sequential
        // reads on both servers' disks.
        let pool_pages = self.instances[idx].engine.config().pool_pages as u64;
        let old_server = self.instances[idx].server;
        let burst_pages = pool_pages.min(16_384);
        self.servers[old_server].io.read(
            odlb_storage::DomainId(0),
            self.now,
            odlb_storage::IoKind::Sequential,
            burst_pages,
            false,
        );
        self.servers[to.0 as usize].io.read(
            odlb_storage::DomainId(0),
            self.now,
            odlb_storage::IoKind::Sequential,
            burst_pages,
            false,
        );
        self.instances[idx].server = to.0 as usize;
        true
    }

    /// Overrides one class's CPU demands — plan-cost changes (an added
    /// trigger, a regressed plan) without touching its page accesses.
    pub fn set_class_cpu(
        &mut self,
        app: AppId,
        class_index: usize,
        cpu_base: SimDuration,
        cpu_per_page: SimDuration,
    ) {
        let idx = self.app_index(app);
        let class = &mut self.apps[idx].spec.classes[class_index];
        class.cpu_base = cpu_base;
        class.cpu_per_page = cpu_per_page;
    }

    /// The workload spec of an app (current weights included).
    pub fn workload(&self, app: AppId) -> &WorkloadSpec {
        &self.apps[self.app_index(app)].spec
    }

    /// Starts client arrival processes. Must be called once before
    /// [`Simulation::run_interval`].
    pub fn start(&mut self) {
        assert!(!self.started, "simulation already started");
        self.started = true;
        self.queue.schedule(SimTime::ZERO, Event::LoadTick);
        // Prime one in-flight ReplayIssue per replayed app; each
        // dispatch chains the next.
        let firsts: Vec<(usize, SimTime)> = self
            .apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                let r = a.replay.as_ref()?;
                Some((i, r.schedule.queries.first()?.at))
            })
            .collect();
        for (app, at) in firsts {
            self.queue.schedule(at, Event::ReplayIssue { app });
        }
    }

    /// Runs one measurement interval and closes it.
    pub fn run_interval(&mut self) -> IntervalOutcome {
        assert!(self.started, "call start() first");
        // The driver-level span: event dispatch and interval close nest
        // under it. Its sim units are the interval's simulated length.
        let _interval = enter_span(&self.profiler, "interval");
        span_units(&self.profiler, self.config.measurement_interval.as_micros());
        let tick_at = self.last_tick + self.config.measurement_interval;
        while let Some(t) = self.queue.peek_time() {
            if t > tick_at {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            self.events_processed += 1;
            self.handle(t, ev);
        }
        self.now = tick_at;
        self.last_tick = tick_at;
        let profiler = self.profiler.clone();
        profile_span(&profiler, "close_interval", || self.close_interval(tick_at))
    }

    fn close_interval(&mut self, end: SimTime) -> IntervalOutcome {
        let mut reports = BTreeMap::new();
        for (i, inst) in self.instances.iter_mut().enumerate() {
            let report = inst.engine.close_interval(end);
            reports.insert(InstanceId(i as u32), report);
        }
        // Hierarchical aggregation: one pass per instance into rack
        // partials, rack partials folded into the cluster view — instead
        // of re-walking every report once per application. With the
        // default single rack the floating-point accumulation order (and
        // thus every artifact) is identical to the flat pass.
        let mut cluster = aggregate::aggregate_cluster(&reports, self.config.rack_size);
        let mut app_latency = BTreeMap::new();
        let mut app_throughput = BTreeMap::new();
        let mut app_p95 = BTreeMap::new();
        let mut sla = BTreeMap::new();
        for app in &mut self.apps {
            let id = app.spec.app;
            let agg = cluster.remove(&id).unwrap_or_default();
            app_p95.insert(id, agg.tail.as_ref().and_then(|h| h.quantile(0.95)));
            let mean_latency = agg.mean_latency();
            let had_load = app.offered_this_interval > 0;
            app.offered_this_interval = 0;
            app_latency.insert(id, mean_latency);
            app_throughput.insert(id, agg.tput);
            sla.insert(id, app.sla.evaluate(mean_latency, had_load));
        }
        let servers: Vec<ServerSnapshot> = self
            .servers
            .iter_mut()
            .enumerate()
            .map(|(i, s)| ServerSnapshot {
                server: ServerId(i as u32),
                cpu_utilisation: s.cpu.utilisation_since_snapshot(end),
                io_utilisation: s.io.utilisation_since_snapshot(end),
            })
            .collect();
        let start = end.saturating_start(self.config.measurement_interval);
        if self.telemetry.is_active() {
            self.export_interval_telemetry(
                end,
                &app_latency,
                &app_throughput,
                &app_p95,
                &sla,
                &servers,
            );
        }
        if self.tracer.is_active() {
            self.tracer.emit(TraceEvent::IntervalClosed {
                seq: self.interval_seq,
                start_us: start.as_micros(),
                end_us: end.as_micros(),
                instances: reports.len() as u32,
                classes: reports.values().map(|r| r.per_class.len() as u32).sum(),
            });
            for (app, outcome) in &sla {
                self.tracer.emit(TraceEvent::SlaEvaluated {
                    end_us: end.as_micros(),
                    app: app.0,
                    latency_s: app_latency[app],
                    throughput_qps: app_throughput[app],
                    violated: outcome.is_violation(),
                });
            }
        }
        self.interval_seq += 1;
        IntervalOutcome {
            start,
            end,
            reports,
            app_latency,
            app_throughput,
            sla,
            servers,
        }
    }

    /// Cluster-level export at interval close: queue depths, per-app
    /// aggregates, per-server utilisation and I/O counters — then one
    /// registry snapshot stamped with the interval end, so the CSV time
    /// series aligns with the controller's decision points.
    fn export_interval_telemetry(
        &mut self,
        end: SimTime,
        app_latency: &BTreeMap<AppId, Option<f64>>,
        app_throughput: &BTreeMap<AppId, f64>,
        app_p95: &BTreeMap<AppId, Option<u64>>,
        sla: &BTreeMap<AppId, SlaOutcome>,
        servers: &[ServerSnapshot],
    ) {
        let t = &self.telemetry;
        for (i, inst) in self.instances.iter().enumerate() {
            let instance = InstanceId(i as u32).to_string();
            let labels = [("instance", instance.as_str())];
            if let Some(g) = t.gauge(
                "odlb_instance_queue_depth",
                "Outstanding queries on a database instance.",
                &labels,
            ) {
                g.set(inst.outstanding as f64);
            }
            if let Some(g) = t.gauge(
                "odlb_instance_ready",
                "Whether an instance is serving traffic (1) or provisioning/retired (0).",
                &labels,
            ) {
                g.set(if inst.ready { 1.0 } else { 0.0 });
            }
        }
        for app in &self.apps {
            let id = app.spec.app.to_string();
            let labels = [("app", id.as_str())];
            if let Some(latency) = app_latency[&app.spec.app] {
                if let Some(g) = t.gauge(
                    "odlb_app_latency_seconds",
                    "Mean query latency over the closed interval.",
                    &labels,
                ) {
                    g.set(latency);
                }
            }
            if let Some(p95) = app_p95[&app.spec.app] {
                if let Some(g) = t.gauge(
                    "odlb_app_latency_p95_us",
                    "95th-percentile query latency over the closed interval \
                     (simulated microseconds, histogram-estimated).",
                    &labels,
                ) {
                    g.set(p95 as f64);
                }
            }
            if let Some(g) = t.gauge(
                "odlb_app_throughput_qps",
                "Queries per second over the closed interval.",
                &labels,
            ) {
                g.set(app_throughput[&app.spec.app]);
            }
            if let Some(g) = t.gauge("odlb_app_clients", "Active closed-loop clients.", &labels) {
                g.set(app.active_clients as f64);
            }
            if let Some(c) = t.counter(
                "odlb_sla_violations_total",
                "Measurement intervals that violated the application's SLA.",
                &labels,
            ) {
                if sla[&app.spec.app].is_violation() {
                    c.inc();
                }
            }
        }
        for (i, (state, snap)) in self.servers.iter().zip(servers).enumerate() {
            let server = ServerId(i as u32).to_string();
            let labels = [("server", server.as_str())];
            if let Some(g) = t.gauge(
                "odlb_server_cpu_utilisation",
                "CPU utilisation over the closed interval (0-1).",
                &labels,
            ) {
                g.set(snap.cpu_utilisation);
            }
            if let Some(g) = t.gauge(
                "odlb_server_io_utilisation",
                "Domain-0 disk utilisation over the closed interval (0-1).",
                &labels,
            ) {
                g.set(snap.io_utilisation);
            }
            state.io.export_telemetry(t, &server);
        }
        // Cluster-wide per-class latency distribution: merge each
        // replica's cumulative histogram (the paper's SLA is stated
        // against the class, not any one replica). Rebuilt from scratch
        // every interval via `replace` — monotone because the inputs
        // are cumulative and retired instances keep their engines.
        if t.is_active() {
            let mut merged: BTreeMap<ClassId, LogLinearHistogram> = BTreeMap::new();
            for inst in &self.instances {
                for (class, h) in inst.engine.class_latency_histograms() {
                    h.with(|src| {
                        merged
                            .entry(class)
                            .or_insert_with(|| LogLinearHistogram::new(src.grouping_power()))
                            .merge(src)
                    });
                }
            }
            for (class, hist) in merged {
                let label = class.to_string();
                if let Some(h) = t.histogram(
                    "odlb_cluster_query_latency_us",
                    "Cluster-wide per-class latency, merged across replicas (simulated microseconds).",
                    &[("class", label.as_str())],
                ) {
                    h.replace(hist);
                }
            }
        }
        // Stamp the snapshot with the same seq `close_interval` puts in
        // its `interval_closed` trace event (the increment happens after
        // this call), so CSV rows join to decision traces.
        t.snapshot(end.as_micros(), self.interval_seq);
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::LoadTick => {
                for app_idx in 0..self.apps.len() {
                    let target = self.apps[app_idx].clients.target_clients(now);
                    self.apps[app_idx].target_clients = target;
                    while self.apps[app_idx].active_clients < target {
                        let client = self.apps[app_idx].next_client;
                        self.apps[app_idx].next_client += 1;
                        self.apps[app_idx].active_clients += 1;
                        // Stagger arrivals within the update interval.
                        let stagger = SimDuration::from_micros(
                            self.apps[app_idx]
                                .rng
                                .below(self.config.load_update_interval.as_micros().max(1)),
                        );
                        self.queue.schedule(
                            now + stagger,
                            Event::ClientIssue {
                                app: app_idx,
                                client,
                            },
                        );
                    }
                    // Shrinking happens lazily: clients retire when they
                    // next come up to issue.
                }
                self.queue
                    .schedule(now + self.config.load_update_interval, Event::LoadTick);
            }
            Event::ClientIssue { app, client } => self.client_issue(now, app, client),
            Event::QueryDone {
                app,
                client,
                instance,
                record,
            } => {
                self.instances[instance].outstanding =
                    self.instances[instance].outstanding.saturating_sub(1);
                self.instances[instance].engine.commit_record(record);
                if let Some(client) = client {
                    let think = self.apps[app].clients.next_think();
                    self.queue
                        .schedule(now + think, Event::ClientIssue { app, client });
                }
            }
            Event::ReplicaReady { app, instance } => {
                // Retired while provisioning (e.g. the need evaporated):
                // never resurrect it.
                if self.instances[instance].retired {
                    return;
                }
                // The provisioning delay covers data copy and buffer
                // warm-up: hand the new replica the source replica's
                // resident pages so it starts warm, as the paper's
                // provisioning procedure does.
                let source = self.apps[app]
                    .scheduler
                    .replicas()
                    .first()
                    .map(|i| i.0 as usize);
                if let Some(src) = source {
                    if src != instance {
                        let pages = self.instances[src].engine.resident_pages();
                        self.instances[instance].engine.preload(pages);
                    }
                }
                self.instances[instance].ready = true;
                self.apps[app]
                    .scheduler
                    .add_replica(InstanceId(instance as u32));
            }
            Event::ReplayIssue { app } => self.replay_issue(now, app),
        }
    }

    fn client_issue(&mut self, now: SimTime, app: usize, client: u64) {
        // Lazy retirement keeps the population at the load target.
        if self.apps[app].active_clients > self.apps[app].target_clients {
            self.apps[app].active_clients -= 1;
            return;
        }
        // Sample into the recycled page buffer — no allocation once the
        // buffer has grown to the largest page list seen.
        let spec = {
            let pages = std::mem::take(&mut self.spec_pages);
            let a = &mut self.apps[app];
            a.spec.sample_query_into(&mut a.rng, pages)
        };
        if !self.dispatch_spec(now, app, Some(client), spec) {
            // No ready replica (all still provisioning): retry shortly.
            self.queue.schedule(
                now + SimDuration::from_millis(100),
                Event::ClientIssue { app, client },
            );
        }
    }

    /// Dispatches the next query of a replayed app's schedule and chains
    /// the following one. When every replica is still provisioning the
    /// cursor does not advance; the same query retries shortly, so the
    /// schedule is delayed, never truncated.
    fn replay_issue(&mut self, now: SimTime, app: usize) {
        let (sched, idx) = {
            let r = self.apps[app].replay.as_ref().expect("replayed app");
            (Arc::clone(&r.schedule), r.next)
        };
        let Some(q) = sched.queries.get(idx) else {
            return;
        };
        let spec = {
            let mut pages = std::mem::take(&mut self.spec_pages);
            pages.clear();
            pages.extend_from_slice(sched.pages_of(idx));
            let a = &self.apps[app];
            let class = q.class as usize;
            let c = &a.spec.classes[class];
            QuerySpec {
                class: a.spec.class_id(class),
                pages,
                cpu_base: c.cpu_base,
                cpu_per_page: c.cpu_per_page,
                is_write: c.is_write,
                lock_prefix: if c.is_write {
                    q.lock_prefix as usize
                } else {
                    0
                },
            }
        };
        if !self.dispatch_spec(now, app, None, spec) {
            self.queue.schedule(
                now + SimDuration::from_millis(100),
                Event::ReplayIssue { app },
            );
            return;
        }
        self.apps[app].replay.as_mut().expect("replayed app").next = idx + 1;
        if let Some(next) = sched.queries.get(idx + 1) {
            self.queue
                .schedule(next.at.max(now), Event::ReplayIssue { app });
        }
    }

    /// Routes and executes one materialised query (shared by the
    /// closed-loop and replay paths). Returns `false` — after recycling
    /// the page buffer — when no ready replica exists; the caller decides
    /// how to retry.
    fn dispatch_spec(
        &mut self,
        now: SimTime,
        app: usize,
        client: Option<u64>,
        spec: QuerySpec,
    ) -> bool {
        // Routing scratch: refill the recycled per-instance load vector
        // instead of collecting a fresh one per query.
        let route = {
            let mut loads = std::mem::take(&mut self.route_loads);
            loads.clear();
            loads.extend(self.instances.iter().map(|i| i.outstanding));
            let outstanding = |i: InstanceId| loads[i.0 as usize];
            let route = if spec.is_write {
                self.apps[app]
                    .scheduler
                    .route_write(spec.class, outstanding)
                    .map(|r| (r.primary, r.applies))
            } else {
                self.apps[app]
                    .scheduler
                    .route_read(spec.class, outstanding)
                    .map(|p| (p, Vec::new()))
            };
            self.route_loads = loads;
            route
        };
        let Some((primary, applies)) = route else {
            self.recycle_pages(spec.pages);
            return false;
        };
        self.apps[app].offered_this_interval += 1;
        self.execute_on(now, app, client, primary, &spec);
        let spec = if applies.is_empty() {
            spec
        } else {
            let apply_spec = spec.into_replica_apply();
            for target in applies {
                self.execute_on(now, app, None, target, &apply_spec);
            }
            apply_spec
        };
        self.recycle_pages(spec.pages);
        true
    }

    /// Returns a finished query's page buffer to the recycle slot
    /// (engines read pages during `execute`, never after).
    fn recycle_pages(&mut self, mut pages: Vec<PageId>) {
        pages.clear();
        self.spec_pages = pages;
    }

    fn execute_on(
        &mut self,
        now: SimTime,
        app: usize,
        client: Option<u64>,
        instance: InstanceId,
        spec: &QuerySpec,
    ) {
        let idx = instance.0 as usize;
        let server = self.instances[idx].server;
        let domain = self.instances[idx].domain;
        // One span per dispatched query; its sim units are the query's
        // simulated latency, so the deterministic flamegraph shows where
        // simulated time goes (engine sub-spans attribute I/O and CPU).
        let _span = enter_span(&self.profiler, "engine_execute");
        let (instances, servers) = (&mut self.instances, &mut self.servers);
        let srv = &mut servers[server];
        let result = instances[idx]
            .engine
            .execute(now, spec, &mut srv.cpu, &mut srv.io, domain);
        span_units(&self.profiler, result.record.latency.as_micros());
        instances[idx].outstanding += 1;
        self.queue.schedule(
            result.completion,
            Event::QueryDone {
                app,
                client,
                instance: idx,
                record: result.record,
            },
        );
    }
}

/// Subtraction helper: `end - interval`, saturating at zero.
trait SaturatingStart {
    fn saturating_start(self, interval: SimDuration) -> SimTime;
}

impl SaturatingStart for SimTime {
    fn saturating_start(self, interval: SimDuration) -> SimTime {
        SimTime::from_micros(self.as_micros().saturating_sub(interval.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::MetricKind;
    use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};

    fn small_sim(clients: usize) -> (Simulation, AppId) {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 7,
            ..Default::default()
        });
        let server = sim.add_server(4);
        let inst = sim.add_instance(server, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(clients),
        );
        sim.assign_replica(app, inst);
        sim.start();
        (sim, app)
    }

    #[test]
    fn light_load_meets_sla() {
        let (mut sim, app) = small_sim(5);
        let mut last = None;
        for _ in 0..6 {
            last = Some(sim.run_interval());
        }
        let outcome = last.unwrap();
        assert_eq!(outcome.sla[&app], SlaOutcome::Met);
        assert!(outcome.app_throughput[&app] > 1.0, "queries flow");
        let lat = outcome.app_latency[&app].unwrap();
        assert!(lat < 1.0, "latency {lat}");
    }

    #[test]
    fn interval_boundaries_advance_clock() {
        let (mut sim, _) = small_sim(2);
        let o1 = sim.run_interval();
        let o2 = sim.run_interval();
        assert_eq!(o1.end, SimTime::from_secs(10));
        assert_eq!(o2.start, SimTime::from_secs(10));
        assert_eq!(o2.end, SimTime::from_secs(20));
        assert_eq!(sim.now(), SimTime::from_secs(20));
    }

    #[test]
    fn per_class_metrics_are_populated() {
        let (mut sim, app) = small_sim(10);
        sim.run_interval();
        let outcome = sim.run_interval();
        let report = outcome.reports.values().next().unwrap();
        assert!(report.per_class.len() >= 5, "several classes observed");
        for (class, v) in &report.per_class {
            assert_eq!(class.app, app);
            assert!(v[MetricKind::Throughput] > 0.0);
            assert!(v[MetricKind::PageAccesses] > 0.0);
        }
    }

    #[test]
    fn replication_balances_reads() {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 9,
            ..Default::default()
        });
        let s1 = sim.add_server(4);
        let s2 = sim.add_server(4);
        let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let i2 = sim.add_instance(s2, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(20),
        );
        sim.assign_replica(app, i1);
        sim.assign_replica(app, i2);
        sim.start();
        sim.run_interval();
        let outcome = sim.run_interval();
        let t1 = outcome.reports[&i1].app_throughput(app);
        let t2 = outcome.reports[&i2].app_throughput(app);
        assert!(t1 > 0.0 && t2 > 0.0, "both replicas serve ({t1}, {t2})");
    }

    #[test]
    fn writes_reach_every_replica() {
        let mut sim = Simulation::new(SimulationConfig::default());
        let s1 = sim.add_server(4);
        let s2 = sim.add_server(4);
        let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let i2 = sim.add_instance(s2, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(10),
        );
        sim.assign_replica(app, i1);
        sim.assign_replica(app, i2);
        sim.start();
        sim.run_interval();
        let outcome = sim.run_interval();
        // The write class ShoppingCart (index 5) must appear on BOTH
        // replicas even though reads of it go to one.
        let write_class = ClassId::new(app, 5);
        for inst in [i1, i2] {
            let has = outcome.reports[&inst].per_class.contains_key(&write_class);
            assert!(has, "write class missing on {inst}");
        }
    }

    #[test]
    fn class_pinning_confines_reads() {
        let mut sim = Simulation::new(SimulationConfig::default());
        let s1 = sim.add_server(4);
        let s2 = sim.add_server(4);
        let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let i2 = sim.add_instance(s2, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(15),
        );
        sim.assign_replica(app, i1);
        sim.assign_replica(app, i2);
        // Pin the read-only BestSeller class (index 8) to replica 2.
        let bs = ClassId::new(app, 8);
        sim.place_class(app, bs, vec![i2]);
        sim.start();
        for _ in 0..3 {
            sim.run_interval();
        }
        let outcome = sim.run_interval();
        assert!(
            !outcome.reports[&i1].per_class.contains_key(&bs),
            "pinned read-only class must not run on replica 1"
        );
        assert!(outcome.reports[&i2].per_class.contains_key(&bs));
    }

    #[test]
    fn provisioning_adds_capacity_after_delay() {
        let (mut sim, app) = small_sim(10);
        assert_eq!(sim.replicas_of(app).len(), 1);
        // No second server yet: provisioning must fail.
        assert_eq!(
            sim.provision_replica(app),
            Err(ProvisionError::NoFreeServer)
        );
        sim.add_server(4);
        let new = sim.provision_replica(app).expect("free server available");
        // Not yet ready.
        assert_eq!(sim.replicas_of(app).len(), 1);
        sim.run_interval(); // 10 s > 20 s? no — one more interval
        sim.run_interval();
        assert_eq!(sim.replicas_of(app).len(), 2, "ready after the delay");
        assert_eq!(sim.replicas_of(app)[1], new);
    }

    #[test]
    fn load_function_grows_population() {
        let mut sim = Simulation::new(SimulationConfig {
            seed: 3,
            ..Default::default()
        });
        let s = sim.add_server(4);
        let i = sim.add_instance(s, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig {
                think_time_mean: SimDuration::from_millis(500),
                load_noise: 0.0,
            },
            LoadFunction::Step {
                before: 2,
                after: 30,
                at: SimTime::from_secs(20),
            },
        );
        sim.assign_replica(app, i);
        sim.start();
        sim.run_interval();
        let before = sim.run_interval();
        sim.run_interval();
        sim.run_interval();
        let after = sim.run_interval();
        let t_before = before.app_throughput[&app];
        let t_after = after.app_throughput[&app];
        assert!(
            t_after > t_before * 3.0,
            "throughput should scale with clients: {t_before} -> {t_after}"
        );
    }

    #[test]
    fn set_class_weight_removes_class_from_mix() {
        let (mut sim, app) = small_sim(10);
        sim.set_class_weight(app, 8, 0.0);
        for _ in 0..2 {
            sim.run_interval();
        }
        let outcome = sim.run_interval();
        let bs = ClassId::new(app, 8);
        for report in outcome.reports.values() {
            assert!(!report.per_class.contains_key(&bs));
        }
    }

    #[test]
    fn retired_replica_stops_serving() {
        let mut sim = Simulation::new(SimulationConfig::default());
        let s1 = sim.add_server(4);
        let s2 = sim.add_server(4);
        let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
        let i2 = sim.add_instance(s2, DomainId(1), EngineConfig::default());
        let app = sim.add_app(
            tpcw_workload(TpcwConfig::default()),
            Sla::one_second(),
            ClientConfig::default(),
            LoadFunction::Constant(10),
        );
        sim.assign_replica(app, i1);
        sim.assign_replica(app, i2);
        sim.start();
        sim.run_interval();
        sim.retire_replica(app, i2);
        assert_eq!(sim.replicas_of(app), vec![i1]);
        sim.run_interval(); // drain
        let outcome = sim.run_interval();
        assert_eq!(
            outcome.reports[&i2].app_throughput(app),
            0.0,
            "retired replica serves nothing"
        );
        assert!(outcome.reports[&i1].app_throughput(app) > 0.0);
    }

    #[test]
    fn telemetry_snapshots_align_with_intervals() {
        let (mut sim, app) = small_sim(8);
        let t = odlb_telemetry::Telemetry::attached();
        sim.set_telemetry(t.clone());
        for _ in 0..3 {
            sim.run_interval();
        }
        let prom = t.render_prometheus().unwrap();
        odlb_telemetry::validate_prometheus(&prom).expect("valid exposition");
        assert!(prom.contains(&format!("odlb_app_throughput_qps{{app=\"{app}\"}}")));
        assert!(
            prom.contains(&format!("odlb_app_latency_p95_us{{app=\"{app}\"}}")),
            "interval tail-latency gauge from the merged class histograms"
        );
        assert!(prom.contains("odlb_instance_queue_depth{instance=\"inst0\"}"));
        assert!(prom.contains("odlb_server_cpu_utilisation{server=\"srv0\"}"));
        assert!(prom.contains("odlb_io_requests_total{domain=\"1\",machine=\"srv0\"}"));
        let csv = t.render_csv().unwrap();
        odlb_telemetry::validate_csv(&csv).expect("valid csv");
        let snaps = t.with_registry(|r| r.snapshots().len()).unwrap();
        assert_eq!(snaps, 3, "one snapshot per closed interval");
        // Snapshots are stamped with the interval seq, so CSV rows join
        // to `interval_closed` trace events.
        assert!(csv.contains("10.000000,0,"));
        assert!(csv.contains("20.000000,1,"));
        assert!(csv.contains("30.000000,2,"));
    }

    #[test]
    fn cluster_histograms_merge_per_class_counts_across_replicas() {
        let (mut sim, app) = small_sim(8);
        let second = sim.add_instance(ServerId(0), DomainId(1), EngineConfig::default());
        sim.assign_replica(app, second);
        let t = odlb_telemetry::Telemetry::attached();
        sim.set_telemetry(t.clone());
        for _ in 0..3 {
            sim.run_interval();
        }
        let (per_instance, cluster): (u64, u64) = t
            .with_registry(|r| {
                let mut per_instance = 0;
                let mut cluster = 0;
                for row in r.sample_rows() {
                    if row.name == "odlb_query_latency_us_count" {
                        per_instance += row.value as u64;
                    }
                    if row.name == "odlb_cluster_query_latency_us_count" {
                        cluster += row.value as u64;
                    }
                }
                (per_instance, cluster)
            })
            .unwrap();
        assert!(cluster > 0, "merged histogram must carry samples");
        assert_eq!(
            cluster, per_instance,
            "cluster-wide counts must equal the sum over replicas"
        );
        let prom = t.render_prometheus().unwrap();
        odlb_telemetry::validate_prometheus(&prom).expect("valid exposition");
        assert!(prom.contains("odlb_cluster_query_latency_us_count{class=\""));
    }

    #[test]
    fn telemetry_does_not_perturb_results() {
        let run = |attach: bool| {
            let (mut sim, app) = small_sim(8);
            if attach {
                sim.set_telemetry(odlb_telemetry::Telemetry::attached());
            }
            for _ in 0..3 {
                sim.run_interval();
            }
            let o = sim.run_interval();
            (o.app_throughput[&app], o.app_latency[&app])
        };
        assert_eq!(run(false), run(true), "telemetry must be observation-only");
    }

    #[test]
    fn profiling_does_not_perturb_results() {
        let run = |attach: bool| {
            let (mut sim, app) = small_sim(8);
            if attach {
                sim.set_profiler(odlb_telemetry::SpanProfiler::shared());
            }
            for _ in 0..3 {
                sim.run_interval();
            }
            let o = sim.run_interval();
            (o.app_throughput[&app], o.app_latency[&app])
        };
        assert_eq!(run(false), run(true), "profiling must be observation-only");
    }

    #[test]
    fn sim_folded_profile_is_deterministic_and_nested() {
        let run = || {
            let profiler = odlb_telemetry::SpanProfiler::shared();
            let (mut sim, _) = small_sim(8);
            sim.set_profiler(profiler.clone());
            for _ in 0..3 {
                sim.run_interval();
            }
            let folded = profiler.borrow().folded_sim();
            folded
        };
        let folded = run();
        assert_eq!(folded, run(), "sim folded dump must be run-invariant");
        let stats = odlb_telemetry::validate_folded(&folded).expect("valid folded dump");
        assert!(stats.max_depth >= 3, "driver spans nest: {folded}");
        assert!(folded.contains("interval;engine_execute;pages;storage_read "));
        assert!(folded.contains("interval;close_interval "));
    }

    #[test]
    fn replayed_app_serves_the_whole_schedule_deterministically() {
        use odlb_workload::{generate_schedule, ScheduleConfig};
        let spec = tpcw_workload(TpcwConfig::default());
        let schedule = Arc::new(generate_schedule(
            &spec,
            &ScheduleConfig {
                seed: 17,
                horizon: SimDuration::from_secs(30),
                load: LoadFunction::Constant(6),
                client: ClientConfig::default(),
                tick: SimDuration::from_secs(2),
            },
        ));
        assert!(!schedule.is_empty());
        let run = |servers: usize| {
            let mut sim = Simulation::new(SimulationConfig {
                seed: 17,
                ..Default::default()
            });
            let mut insts = Vec::new();
            for _ in 0..servers {
                let s = sim.add_server(4);
                insts.push(sim.add_instance(s, DomainId(1), EngineConfig::default()));
            }
            let app = sim.add_replayed_app(
                tpcw_workload(TpcwConfig::default()),
                Sla::one_second(),
                Arc::clone(&schedule),
            );
            for inst in insts {
                sim.assign_replica(app, inst);
            }
            sim.start();
            let mut offered = 0.0;
            let mut last = None;
            for _ in 0..3 {
                let o = sim.run_interval();
                offered += o.app_throughput[&app] * 10.0;
                last = Some(o);
            }
            (offered.round() as u64, last.unwrap().app_latency[&app])
        };
        let (a_count, a_lat) = run(1);
        let (b_count, b_lat) = run(1);
        assert_eq!(
            (a_count, a_lat),
            (b_count, b_lat),
            "replay is deterministic"
        );
        // Every scheduled arrival within the simulated horizon is served
        // (completions may trail arrivals slightly, hence the tolerance).
        let arrivals = schedule.len() as u64;
        assert!(
            a_count > arrivals * 9 / 10,
            "served {a_count} of {arrivals} scheduled queries"
        );
        // The identical offered load runs against a different cluster
        // size without regenerating anything.
        let (two_replicas, _) = run(2);
        assert!(two_replicas > arrivals * 9 / 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, app) = small_sim(8);
            for _ in 0..3 {
                sim.run_interval();
            }
            let o = sim.run_interval();
            (o.app_throughput[&app], o.app_latency[&app])
        };
        assert_eq!(run(), run());
    }
}
