//! Workload specifications: an application as a weighted mix of query
//! classes, sampled into executable [`QuerySpec`]s.

use crate::pattern::AccessPattern;
use odlb_engine::QuerySpec;
use odlb_metrics::{AppId, ClassId};
use odlb_sim::{SimDuration, SimRng};
use odlb_storage::PageId;

/// One query class of an application.
#[derive(Clone, Debug)]
pub struct QueryClassSpec {
    /// Human-readable interaction name (e.g. "BestSeller").
    pub name: &'static str,
    /// Representative SQL template (drives template extraction fidelity).
    pub sql: &'static str,
    /// Relative frequency in the mix.
    pub weight: f64,
    /// Page-access generator.
    pub pattern: AccessPattern,
    /// Fixed CPU demand.
    pub cpu_base: SimDuration,
    /// CPU demand per page accessed.
    pub cpu_per_page: SimDuration,
    /// True for updates (read-one-write-all applies them everywhere).
    pub is_write: bool,
}

/// An application: its identity plus its query classes. The class at
/// position `i` has `ClassId { app, template: i }`.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Display name ("TPC-W", "RUBiS").
    pub name: String,
    /// The application id.
    pub app: AppId,
    /// Query classes, position = template index.
    pub classes: Vec<QueryClassSpec>,
}

impl WorkloadSpec {
    /// The class id of the `i`-th class.
    pub fn class_id(&self, i: usize) -> ClassId {
        assert!(i < self.classes.len(), "class index out of range");
        ClassId::new(self.app, i as u32)
    }

    /// All class ids, in template order.
    pub fn class_ids(&self) -> Vec<ClassId> {
        (0..self.classes.len()).map(|i| self.class_id(i)).collect()
    }

    /// Looks up a class index by interaction name.
    pub fn class_index_by_name(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Fraction of the mix that is writes.
    pub fn write_fraction(&self) -> f64 {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let writes: f64 = self
            .classes
            .iter()
            .filter(|c| c.is_write)
            .map(|c| c.weight)
            .sum();
        writes / total
    }

    /// Samples a class index according to the mix weights. Allocation-
    /// free: the weighted draw ([`SimRng::weighted`] semantics — one
    /// uniform draw scaled by the total, then a linear scan) runs
    /// directly over the class list.
    pub fn sample_class(&self, rng: &mut SimRng) -> usize {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = rng.f64() * total;
        for (i, c) in self.classes.iter().enumerate() {
            if x < c.weight {
                return i;
            }
            x -= c.weight;
        }
        self.classes.len() - 1
    }

    /// Samples one executable query from the mix.
    pub fn sample_query(&self, rng: &mut SimRng) -> QuerySpec {
        self.sample_query_into(rng, Vec::new())
    }

    /// [`WorkloadSpec::sample_query`] building the page list in a
    /// recycled buffer (cleared first): the driver's hot path hands page
    /// vectors of completed queries back through here, so steady-state
    /// sampling performs no allocation.
    pub fn sample_query_into(&self, rng: &mut SimRng, pages: Vec<PageId>) -> QuerySpec {
        let idx = self.sample_class(rng);
        self.query_of_class_into(idx, rng, pages)
    }

    /// Materialises one query of a specific class (used by experiments
    /// that drive a single class, e.g. the MRC harnesses).
    pub fn query_of_class(&self, idx: usize, rng: &mut SimRng) -> QuerySpec {
        self.query_of_class_into(idx, rng, Vec::new())
    }

    /// [`WorkloadSpec::query_of_class`] with a recycled page buffer.
    pub fn query_of_class_into(
        &self,
        idx: usize,
        rng: &mut SimRng,
        mut pages: Vec<PageId>,
    ) -> QuerySpec {
        pages.clear();
        let c = &self.classes[idx];
        let prefix = c.pattern.generate_with_prefix_into(rng, &mut pages);
        QuerySpec {
            class: self.class_id(idx),
            pages,
            cpu_base: c.cpu_base,
            cpu_per_page: c.cpu_per_page,
            is_write: c.is_write,
            // Writes lock their update target: the first component of the
            // class's pattern (models list the written table first).
            lock_prefix: if c.is_write { prefix } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_storage::SpaceId;

    fn toy() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy".into(),
            app: AppId(7),
            classes: vec![
                QueryClassSpec {
                    name: "Read",
                    sql: "SELECT * FROM t WHERE id = 1",
                    weight: 3.0,
                    pattern: AccessPattern::UniformLookup {
                        space: SpaceId(0),
                        table_pages: 100,
                        count: 2,
                    },
                    cpu_base: SimDuration::from_micros(100),
                    cpu_per_page: SimDuration::from_micros(10),
                    is_write: false,
                },
                QueryClassSpec {
                    name: "Write",
                    sql: "UPDATE t SET v = 2 WHERE id = 1",
                    weight: 1.0,
                    pattern: AccessPattern::UniformLookup {
                        space: SpaceId(0),
                        table_pages: 100,
                        count: 1,
                    },
                    cpu_base: SimDuration::from_micros(150),
                    cpu_per_page: SimDuration::from_micros(10),
                    is_write: true,
                },
            ],
        }
    }

    #[test]
    fn class_ids_follow_positions() {
        let w = toy();
        assert_eq!(w.class_id(0), ClassId::new(AppId(7), 0));
        assert_eq!(w.class_id(1), ClassId::new(AppId(7), 1));
        assert_eq!(w.class_ids().len(), 2);
        assert_eq!(w.class_index_by_name("Write"), Some(1));
        assert_eq!(w.class_index_by_name("Nope"), None);
    }

    #[test]
    fn write_fraction_matches_weights() {
        assert!((toy().write_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_weights() {
        let w = toy();
        let mut rng = SimRng::new(1);
        let mut writes = 0;
        let n = 20_000;
        for _ in 0..n {
            let q = w.sample_query(&mut rng);
            if q.is_write {
                writes += 1;
            }
        }
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn queries_carry_class_costs() {
        let w = toy();
        let mut rng = SimRng::new(2);
        let q = w.query_of_class(1, &mut rng);
        assert_eq!(q.class, ClassId::new(AppId(7), 1));
        assert_eq!(q.cpu_base, SimDuration::from_micros(150));
        assert!(q.is_write);
        assert_eq!(q.pages.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_index_panics() {
        toy().class_id(5);
    }
}
