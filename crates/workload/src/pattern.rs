//! Page-access-pattern generators.
//!
//! Each query class's execution is characterised by the sequence of buffer
//! pool pages it touches. The generators here compose into per-class
//! patterns: an index-backed query is a hot set of index pages plus a few
//! skewed data-page lookups; a reporting query is a recency-skewed range
//! scan; an index-less query degenerates into a long sequential scan.

use odlb_sim::rng::Zipf;
use odlb_sim::SimRng;
use odlb_storage::{PageId, SpaceId};

/// A generator of page-access sequences.
#[derive(Clone, Debug)]
pub enum AccessPattern {
    /// `count` point lookups over the first `table_pages` pages of
    /// `space`, Zipf-skewed (rank 1 = page 0) with exponent `exponent`.
    /// Models primary-key/index lookups with popularity skew.
    ZipfLookup {
        /// Tablespace to read.
        space: SpaceId,
        /// Table size in pages.
        table_pages: u64,
        /// Zipf exponent (≈0.8–1.2 for web workloads).
        exponent: f64,
        /// Pages touched per query.
        count: u32,
    },
    /// `count` uniform point lookups over `table_pages` pages.
    UniformLookup {
        /// Tablespace to read.
        space: SpaceId,
        /// Table size in pages.
        table_pages: u64,
        /// Pages touched per query.
        count: u32,
    },
    /// A contiguous scan of `scan_pages`, whose start position is skewed
    /// towards the *end* of the table by `recency` (0 = uniform start,
    /// larger = more concentrated on recent pages). Models index range
    /// scans over recency-ordered data (recent orders, newest items).
    RecencyScan {
        /// Tablespace to read.
        space: SpaceId,
        /// Table size in pages.
        table_pages: u64,
        /// Length of the scan in pages.
        scan_pages: u64,
        /// Recency skew exponent; start offset from the end is distributed
        /// as `u^recency · window`.
        recency: f64,
        /// Size of the window (from the end of the table) in which scans
        /// start.
        window_pages: u64,
    },
    /// A sequential scan of pages `0..scan_pages` of `space` — the
    /// degenerate full-scan plan of a query that lost its index.
    SequentialScan {
        /// Tablespace to read.
        space: SpaceId,
        /// Pages scanned per query.
        scan_pages: u64,
    },
    /// A cyclic scan: each execution continues where the previous one
    /// left off, wrapping at `table_pages` — successive executions of a
    /// full-table-scan plan walking a table much larger than the pool.
    /// Re-access distances equal the table size, the LRU-hostile worst
    /// case, so the class's MRC is flat below `table_pages` (the paper's
    /// index-less BestSeller).
    CyclicScan {
        /// Tablespace to read.
        space: SpaceId,
        /// Table size in pages (the wrap point).
        table_pages: u64,
        /// Pages scanned per execution.
        scan_pages: u64,
        /// Scan cursor: where the next execution starts.
        cursor: std::cell::Cell<u64>,
    },
    /// `count` accesses confined to a hot set of `hot_pages` pages
    /// (index roots, small dimension tables), uniformly.
    HotSet {
        /// Tablespace to read.
        space: SpaceId,
        /// Size of the hot set in pages.
        hot_pages: u64,
        /// Pages touched per query.
        count: u32,
    },
    /// Concatenation of sub-patterns in order.
    Composite(Vec<AccessPattern>),
}

impl AccessPattern {
    /// Generates one query's page-access sequence.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<PageId> {
        let mut out = Vec::new();
        self.generate_into(rng, &mut out);
        out
    }

    /// Appends one query's accesses to `out`.
    pub fn generate_into(&self, rng: &mut SimRng, out: &mut Vec<PageId>) {
        match self {
            AccessPattern::ZipfLookup {
                space,
                table_pages,
                exponent,
                count,
            } => {
                let zipf = Zipf::new((*table_pages).max(1), *exponent);
                for _ in 0..*count {
                    let rank = zipf.sample(rng) - 1;
                    out.push(PageId::new(*space, rank));
                }
            }
            AccessPattern::UniformLookup {
                space,
                table_pages,
                count,
            } => {
                for _ in 0..*count {
                    out.push(PageId::new(*space, rng.below((*table_pages).max(1))));
                }
            }
            AccessPattern::RecencyScan {
                space,
                table_pages,
                scan_pages,
                recency,
                window_pages,
            } => {
                // Offset back from the end of the table: u^recency spreads
                // starts within the window, concentrated near the end for
                // large `recency`.
                let window = (*window_pages).min(*table_pages).max(1);
                let u = rng.f64();
                let back = (u.powf(*recency) * window as f64) as u64;
                let end = table_pages.saturating_sub(back);
                let start = end.saturating_sub(*scan_pages);
                for p in start..end {
                    out.push(PageId::new(*space, p));
                }
            }
            AccessPattern::SequentialScan { space, scan_pages } => {
                for p in 0..*scan_pages {
                    out.push(PageId::new(*space, p));
                }
            }
            AccessPattern::CyclicScan {
                space,
                table_pages,
                scan_pages,
                cursor,
            } => {
                let start = cursor.get();
                for i in 0..*scan_pages {
                    out.push(PageId::new(*space, (start + i) % table_pages));
                }
                cursor.set((start + scan_pages) % table_pages);
            }
            AccessPattern::HotSet {
                space,
                hot_pages,
                count,
            } => {
                for _ in 0..*count {
                    out.push(PageId::new(*space, rng.below((*hot_pages).max(1))));
                }
            }
            AccessPattern::Composite(parts) => {
                for p in parts {
                    p.generate_into(rng, out);
                }
            }
        }
    }

    /// Generates one query's accesses and returns the length of the
    /// *first component's* contribution. For a write query this prefix is
    /// the update target (workload models list the written table first in
    /// their composites), which the engine locks exclusively.
    pub fn generate_with_prefix(&self, rng: &mut SimRng) -> (Vec<PageId>, usize) {
        let mut out = Vec::new();
        let prefix = self.generate_with_prefix_into(rng, &mut out);
        (out, prefix)
    }

    /// Appends one query's accesses to `out` and returns the length of
    /// the first component's contribution (see
    /// [`AccessPattern::generate_with_prefix`]). `out` is not cleared —
    /// the driver's hot path recycles page buffers through here, so
    /// steady-state generation allocates nothing.
    pub fn generate_with_prefix_into(&self, rng: &mut SimRng, out: &mut Vec<PageId>) -> usize {
        let base = out.len();
        match self {
            AccessPattern::Composite(parts) => {
                if let Some(first) = parts.first() {
                    first.generate_into(rng, out);
                }
                let prefix = out.len() - base;
                for p in parts.iter().skip(1) {
                    p.generate_into(rng, out);
                }
                prefix
            }
            _ => {
                self.generate_into(rng, out);
                out.len() - base
            }
        }
    }

    /// Expected pages per query (upper bound for scans), used for CPU
    /// demand estimates and sanity checks.
    pub fn pages_per_query(&self) -> u64 {
        match self {
            AccessPattern::ZipfLookup { count, .. }
            | AccessPattern::UniformLookup { count, .. }
            | AccessPattern::HotSet { count, .. } => *count as u64,
            AccessPattern::RecencyScan { scan_pages, .. }
            | AccessPattern::SequentialScan { scan_pages, .. }
            | AccessPattern::CyclicScan { scan_pages, .. } => *scan_pages,
            AccessPattern::Composite(parts) => parts.iter().map(|p| p.pages_per_query()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn zipf_lookup_prefers_low_pages() {
        let p = AccessPattern::ZipfLookup {
            space: SpaceId(0),
            table_pages: 1000,
            exponent: 1.0,
            count: 1,
        };
        let mut r = rng();
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            let pages = p.generate(&mut r);
            assert_eq!(pages.len(), 1);
            assert!(pages[0].page_no < 1000);
            if pages[0].page_no < 10 {
                low += 1;
            }
        }
        // Under Zipf(1.0, n=1000), pages 0..10 carry ~39% of mass.
        assert!(low > n / 4, "low-page mass {low}/{n}");
    }

    #[test]
    fn uniform_lookup_stays_in_range() {
        let p = AccessPattern::UniformLookup {
            space: SpaceId(3),
            table_pages: 50,
            count: 8,
        };
        let mut r = rng();
        for _ in 0..100 {
            for page in p.generate(&mut r) {
                assert_eq!(page.space, SpaceId(3));
                assert!(page.page_no < 50);
            }
        }
    }

    #[test]
    fn recency_scan_is_contiguous_and_recent() {
        let p = AccessPattern::RecencyScan {
            space: SpaceId(1),
            table_pages: 10_000,
            scan_pages: 100,
            recency: 3.0,
            window_pages: 2_000,
        };
        let mut r = rng();
        let mut starts = Vec::new();
        for _ in 0..200 {
            let pages = p.generate(&mut r);
            assert_eq!(pages.len(), 100);
            for w in pages.windows(2) {
                assert!(w[1].is_successor_of(w[0]), "scan must be contiguous");
            }
            starts.push(pages[0].page_no);
        }
        // Strong recency: most starts land in the last fifth of the window.
        let recent = starts.iter().filter(|&&s| s >= 10_000 - 500).count();
        // Uniform starts would land ~40/200 here; recency skew should
        // roughly triple that.
        assert!(recent > 100, "recent starts {recent}/200");
    }

    #[test]
    fn sequential_scan_from_zero() {
        let p = AccessPattern::SequentialScan {
            space: SpaceId(2),
            scan_pages: 10,
        };
        let pages = p.generate(&mut rng());
        let nos: Vec<u64> = pages.iter().map(|p| p.page_no).collect();
        assert_eq!(nos, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cyclic_scan_advances_and_wraps() {
        let p = AccessPattern::CyclicScan {
            space: SpaceId(3),
            table_pages: 10,
            scan_pages: 4,
            cursor: std::cell::Cell::new(0),
        };
        let mut r = rng();
        let a: Vec<u64> = p.generate(&mut r).iter().map(|x| x.page_no).collect();
        let b: Vec<u64> = p.generate(&mut r).iter().map(|x| x.page_no).collect();
        let c: Vec<u64> = p.generate(&mut r).iter().map(|x| x.page_no).collect();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![4, 5, 6, 7]);
        assert_eq!(c, vec![8, 9, 0, 1], "wraps at the table size");
        assert_eq!(p.pages_per_query(), 4);
    }

    #[test]
    fn cyclic_scan_clones_do_not_share_cursors() {
        let p = AccessPattern::CyclicScan {
            space: SpaceId(3),
            table_pages: 10,
            scan_pages: 4,
            cursor: std::cell::Cell::new(0),
        };
        let q = p.clone();
        let mut r = rng();
        p.generate(&mut r);
        let from_clone: Vec<u64> = q.generate(&mut r).iter().map(|x| x.page_no).collect();
        assert_eq!(
            from_clone,
            vec![0, 1, 2, 3],
            "clone starts at its own cursor"
        );
    }

    #[test]
    fn hot_set_confined() {
        let p = AccessPattern::HotSet {
            space: SpaceId(0),
            hot_pages: 16,
            count: 100,
        };
        for page in p.generate(&mut rng()) {
            assert!(page.page_no < 16);
        }
    }

    #[test]
    fn composite_concatenates_in_order() {
        let p = AccessPattern::Composite(vec![
            AccessPattern::SequentialScan {
                space: SpaceId(0),
                scan_pages: 3,
            },
            AccessPattern::SequentialScan {
                space: SpaceId(1),
                scan_pages: 2,
            },
        ]);
        let pages = p.generate(&mut rng());
        assert_eq!(pages.len(), 5);
        assert_eq!(pages[0].space, SpaceId(0));
        assert_eq!(pages[3].space, SpaceId(1));
        assert_eq!(p.pages_per_query(), 5);
    }

    #[test]
    fn prefix_covers_first_component() {
        let p = AccessPattern::Composite(vec![
            AccessPattern::SequentialScan {
                space: SpaceId(0),
                scan_pages: 3,
            },
            AccessPattern::SequentialScan {
                space: SpaceId(1),
                scan_pages: 5,
            },
        ]);
        let (pages, prefix) = p.generate_with_prefix(&mut rng());
        assert_eq!(pages.len(), 8);
        assert_eq!(prefix, 3);
        assert!(pages[..prefix].iter().all(|x| x.space == SpaceId(0)));
    }

    #[test]
    fn prefix_of_non_composite_is_everything() {
        let p = AccessPattern::HotSet {
            space: SpaceId(0),
            hot_pages: 4,
            count: 6,
        };
        let (pages, prefix) = p.generate_with_prefix(&mut rng());
        assert_eq!(prefix, pages.len());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = AccessPattern::UniformLookup {
            space: SpaceId(0),
            table_pages: 1000,
            count: 20,
        };
        let a = p.generate(&mut SimRng::new(7));
        let b = p.generate(&mut SimRng::new(7));
        assert_eq!(a, b);
    }
}
