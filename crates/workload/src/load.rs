//! Offered-load functions.
//!
//! §5.2: "We use our TPC-W client emulator to emulate a sinusoid load
//! function … in terms of the number of clients presented to the web
//! server. In addition, the emulator adds some random noise on top of the
//! load function."

use odlb_sim::{SimRng, SimTime};

/// Number of concurrently active client sessions as a function of time.
#[derive(Clone, Debug)]
pub enum LoadFunction {
    /// A fixed number of clients.
    Constant(usize),
    /// `min + (max-min) · (1 − cos(2πt/period))/2`: starts at `min`,
    /// peaks at `max` mid-period — the paper's Fig. 3(a) shape.
    Sinusoid {
        /// Clients at the trough.
        min: usize,
        /// Clients at the crest.
        max: usize,
        /// Full oscillation period.
        period: odlb_sim::SimDuration,
    },
    /// `before` clients until `at`, then `after` (workload surge).
    Step {
        /// Clients before the step.
        before: usize,
        /// Clients at and after the step.
        after: usize,
        /// When the step happens.
        at: SimTime,
    },
}

impl LoadFunction {
    /// Deterministic component of the load at time `t`.
    pub fn clients_at(&self, t: SimTime) -> usize {
        match self {
            LoadFunction::Constant(n) => *n,
            LoadFunction::Sinusoid { min, max, period } => {
                let phase = t.as_secs_f64() / period.as_secs_f64();
                let wave = (1.0 - (2.0 * std::f64::consts::PI * phase).cos()) / 2.0;
                *min + ((*max - *min) as f64 * wave).round() as usize
            }
            LoadFunction::Step { before, after, at } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
        }
    }

    /// Load with multiplicative noise of relative magnitude `noise`
    /// (e.g. 0.1 = ±10%), never below zero.
    pub fn noisy_clients_at(&self, t: SimTime, noise: f64, rng: &mut SimRng) -> usize {
        let base = self.clients_at(t) as f64;
        let jitter = 1.0 + noise * (rng.f64() * 2.0 - 1.0);
        (base * jitter).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_sim::SimDuration;

    #[test]
    fn constant_is_constant() {
        let l = LoadFunction::Constant(42);
        assert_eq!(l.clients_at(SimTime::ZERO), 42);
        assert_eq!(l.clients_at(SimTime::from_secs(1000)), 42);
    }

    #[test]
    fn sinusoid_starts_low_peaks_midway() {
        let l = LoadFunction::Sinusoid {
            min: 20,
            max: 220,
            period: SimDuration::from_secs(100),
        };
        assert_eq!(l.clients_at(SimTime::ZERO), 20);
        assert_eq!(l.clients_at(SimTime::from_secs(50)), 220);
        assert_eq!(l.clients_at(SimTime::from_secs(100)), 20);
        let quarter = l.clients_at(SimTime::from_secs(25));
        assert_eq!(quarter, 120, "midpoint of the ramp");
    }

    #[test]
    fn step_switches_at_time() {
        let l = LoadFunction::Step {
            before: 10,
            after: 90,
            at: SimTime::from_secs(60),
        };
        assert_eq!(l.clients_at(SimTime::from_secs(59)), 10);
        assert_eq!(l.clients_at(SimTime::from_secs(60)), 90);
    }

    #[test]
    fn noise_stays_within_bounds() {
        let l = LoadFunction::Constant(100);
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let n = l.noisy_clients_at(SimTime::ZERO, 0.1, &mut rng);
            assert!((90..=110).contains(&n), "noisy load {n}");
        }
    }

    #[test]
    fn zero_noise_is_exact() {
        let l = LoadFunction::Constant(50);
        let mut rng = SimRng::new(5);
        assert_eq!(l.noisy_clients_at(SimTime::ZERO, 0.0, &mut rng), 50);
    }
}
