//! Pregenerated open-loop arrival-and-page-access schedules.
//!
//! A closed-loop client pool interleaves its RNG draws with query
//! *completions*, so the draw order — and therefore every sampled page —
//! depends on how fast the cluster serves queries, which depends on the
//! controller driving it. Two sweep cells that differ only in controller
//! or MRC variant would regenerate (and re-pay for) different traces.
//!
//! [`generate_schedule`] removes that coupling: it rolls the entire
//! arrival process forward *open-loop* — per-tick load targets, per-client
//! think/stagger clocks, and every page access — into a
//! [`GeneratedSchedule`] that depends only on its [`ScheduleConfig`] and
//! the workload spec. The cluster driver replays it query by query
//! (`Simulation::add_replayed_app`), so cells sharing a (seed, workload,
//! cluster-size) key replay one cached schedule byte-for-byte while the
//! controller under test varies freely. Replayed cells are also
//! *scientifically paired*: every controller variant faces the identical
//! offered load, not merely a statistically equivalent one.
//!
//! Generation is deliberately self-contained rather than reusing the
//! driver's closed-loop streams: the schedule must be reproducible from
//! its config alone (content-addressed caching depends on it), so all
//! randomness derives from [`ScheduleConfig::seed`] via fixed stream ids.

use crate::client::ClientConfig;
use crate::load::LoadFunction;
use crate::spec::WorkloadSpec;
use odlb_sim::{SimDuration, SimRng, SimTime};
use odlb_storage::PageId;

/// RNG stream id for the per-tick noisy load targets.
const LOAD_STREAM: u64 = 1;
/// RNG stream base for per-client clocks: client `c` uses `3_000 + c`.
const CLIENT_STREAM_BASE: u64 = 3_000;

/// Everything the open-loop generator needs besides the workload spec.
/// Two equal configs (plus equal specs) produce byte-identical schedules.
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    /// Root seed; load noise and every client clock derive from it.
    pub seed: u64,
    /// Schedule horizon: queries are generated for `[0, horizon)`.
    pub horizon: SimDuration,
    /// Offered load in clients, sampled at every tick.
    pub load: LoadFunction,
    /// Think-time and load-noise behaviour.
    pub client: ClientConfig,
    /// How often the active-client population tracks the load function
    /// (the driver's `load_update_interval`).
    pub tick: SimDuration,
}

/// One pregenerated query: when it arrives, which class it is, and where
/// its page accesses live in the schedule's flat page store.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledQuery {
    /// Arrival time.
    pub at: SimTime,
    /// Class index into the workload spec.
    pub class: u32,
    /// First page in [`GeneratedSchedule::pages`].
    pub page_start: u32,
    /// Number of pages.
    pub page_len: u32,
    /// Lock-prefix length (first pattern component) for write classes.
    pub lock_prefix: u32,
}

/// A complete arrival-and-page-access schedule, sorted by arrival time.
/// Pages are stored flat (one `Vec` for the whole schedule) so a cached
/// schedule is two allocations, not one per query.
#[derive(Clone, Debug, Default)]
pub struct GeneratedSchedule {
    /// Queries in arrival order (ties keep client-index order).
    pub queries: Vec<ScheduledQuery>,
    /// Flat page store; each query owns `page_start..page_start+page_len`.
    pub pages: Vec<PageId>,
}

impl GeneratedSchedule {
    /// Number of queries in the schedule.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the schedule holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The page accesses of query `i`.
    pub fn pages_of(&self, i: usize) -> &[PageId] {
        let q = &self.queries[i];
        &self.pages[q.page_start as usize..(q.page_start + q.page_len) as usize]
    }
}

/// Rolls the arrival process forward open-loop. The population follows
/// the same shape as the closed-loop driver — noisy per-tick targets,
/// arrival stagger within a tick, exponential think times, client `c`
/// active while `c < target` — but each client runs on its own derived
/// stream, so the result depends only on `(spec, cfg)` and never on
/// service times.
pub fn generate_schedule(spec: &WorkloadSpec, cfg: &ScheduleConfig) -> GeneratedSchedule {
    let root = SimRng::new(cfg.seed);
    let tick_us = cfg.tick.as_micros().max(1);
    let horizon_us = cfg.horizon.as_micros();
    let ticks = horizon_us.div_ceil(tick_us) as usize;

    // Per-tick targets, drawn in tick order from a dedicated stream (the
    // noise sequence must not depend on how many clients exist).
    let mut load_rng = root.split(LOAD_STREAM);
    let mut targets = Vec::with_capacity(ticks);
    for k in 0..ticks {
        let t = SimTime::from_micros(k as u64 * tick_us);
        targets.push(
            cfg.load
                .noisy_clients_at(t, cfg.client.load_noise, &mut load_rng),
        );
    }
    let max_clients = targets.iter().copied().max().unwrap_or(0);

    let mut out = GeneratedSchedule::default();
    let think_mean = cfg.client.think_time_mean.as_secs_f64();
    for c in 0..max_clients {
        let mut rng = root.split(CLIENT_STREAM_BASE + c as u64);
        // The client's next issue time, `None` while it is inactive.
        let mut next: Option<u64> = None;
        for (k, &target) in targets.iter().enumerate() {
            let window_start = k as u64 * tick_us;
            let window_end = (window_start + tick_us).min(horizon_us);
            if c >= target {
                // Below the population line this tick: the client
                // departs and will re-stagger when readmitted.
                next = None;
                continue;
            }
            let mut at = next.unwrap_or_else(|| window_start + rng.below(tick_us));
            while at < window_end {
                let class = spec.sample_class(&mut rng);
                let page_start = out.pages.len() as u32;
                let prefix = spec.classes[class]
                    .pattern
                    .generate_with_prefix_into(&mut rng, &mut out.pages);
                out.queries.push(ScheduledQuery {
                    at: SimTime::from_micros(at),
                    class: class as u32,
                    page_start,
                    page_len: out.pages.len() as u32 - page_start,
                    lock_prefix: prefix as u32,
                });
                let think = SimDuration::from_secs_f64(rng.exponential(think_mean));
                at += think.as_micros().max(1);
            }
            next = Some(at);
        }
    }
    // Stable by-time sort: queries were pushed client-by-client in time
    // order, so ties resolve to ascending client index — deterministic.
    out.queries.sort_by_key(|q| q.at);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcw::{tpcw_workload, TpcwConfig};

    fn cfg(seed: u64, clients: usize) -> ScheduleConfig {
        ScheduleConfig {
            seed,
            horizon: SimDuration::from_secs(20),
            load: LoadFunction::Constant(clients),
            client: ClientConfig::default(),
            tick: SimDuration::from_secs(2),
        }
    }

    #[test]
    fn schedules_are_reproducible_from_config() {
        let spec = tpcw_workload(TpcwConfig::default());
        let a = generate_schedule(&spec, &cfg(7, 12));
        let b = generate_schedule(&spec, &cfg(7, 12));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.pages, b.pages);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.class, y.class);
            assert_eq!(x.page_start, y.page_start);
            assert_eq!(x.page_len, y.page_len);
            assert_eq!(x.lock_prefix, y.lock_prefix);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let spec = tpcw_workload(TpcwConfig::default());
        let a = generate_schedule(&spec, &cfg(7, 12));
        let b = generate_schedule(&spec, &cfg(8, 12));
        assert_ne!(a.pages, b.pages, "seed must drive the page stream");
    }

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let spec = tpcw_workload(TpcwConfig::default());
        let c = cfg(3, 10);
        let s = generate_schedule(&spec, &c);
        assert!(!s.is_empty());
        let horizon = SimTime::from_micros(c.horizon.as_micros());
        let mut last = SimTime::ZERO;
        for q in &s.queries {
            assert!(q.at >= last, "arrivals sorted");
            assert!(q.at < horizon, "no arrival beyond the horizon");
            last = q.at;
        }
    }

    #[test]
    fn page_ranges_tile_the_flat_store() {
        let spec = tpcw_workload(TpcwConfig::default());
        let s = generate_schedule(&spec, &cfg(5, 8));
        let mut covered = 0usize;
        for i in 0..s.len() {
            let q = &s.queries[i];
            assert!(q.page_len > 0, "every class touches at least one page");
            assert!(!s.pages_of(i).is_empty());
            covered += q.page_len as usize;
        }
        assert_eq!(covered, s.pages.len(), "ranges tile the store exactly");
    }

    #[test]
    fn load_scales_query_count() {
        let spec = tpcw_workload(TpcwConfig::default());
        let small = generate_schedule(&spec, &cfg(11, 4)).len();
        let large = generate_schedule(&spec, &cfg(11, 40)).len();
        assert!(
            large > small * 5,
            "10x clients must yield roughly 10x queries ({small} -> {large})"
        );
    }

    #[test]
    fn think_rate_matches_closed_loop_magnitude() {
        // ~clients × horizon / think-mean arrivals for an open loop.
        let spec = tpcw_workload(TpcwConfig::default());
        let c = cfg(13, 20);
        let s = generate_schedule(&spec, &c);
        let expect = 20.0 * c.horizon.as_secs_f64() / 0.7;
        let got = s.len() as f64;
        assert!(
            got > expect * 0.6 && got < expect * 1.4,
            "arrival volume {got} vs open-loop expectation {expect}"
        );
    }
}
