//! Synthetic single-resource workloads for controlled experiments.
//!
//! The TPC-W/RUBiS models exercise every resource at once; ablations and
//! unit scenarios often need a workload that is bottlenecked on exactly
//! one resource. [`cpu_bound_workload`] keeps its whole footprint inside a
//! small hot set (no steady-state I/O) and puts its weight in CPU time, so
//! overload manifests purely as CPU saturation — the clean trigger for the
//! paper's reactive provisioning path (Fig. 3). [`io_bound_workload`]
//! does the opposite: tiny CPU, uncacheable uniform reads.

use crate::pattern::AccessPattern;
use crate::spec::{QueryClassSpec, WorkloadSpec};
use odlb_metrics::AppId;
use odlb_sim::SimDuration;
use odlb_storage::SpaceId;

/// A cache-resident, CPU-heavy workload: three read classes and one light
/// write class, all confined to `hot_pages` pages of one table.
pub fn cpu_bound_workload(app: AppId, hot_pages: u64, cpu_millis: u64) -> WorkloadSpec {
    let space = SpaceId(40 + app.0);
    let hot = |count: u32| AccessPattern::HotSet {
        space,
        hot_pages,
        count,
    };
    let ms = SimDuration::from_millis;
    WorkloadSpec {
        name: "cpu-bound".into(),
        app,
        classes: vec![
            QueryClassSpec {
                name: "Compute",
                sql: "SELECT SUM(v) FROM t WHERE k = 1",
                weight: 5.0,
                pattern: hot(4),
                cpu_base: ms(cpu_millis),
                cpu_per_page: SimDuration::from_micros(20),
                is_write: false,
            },
            QueryClassSpec {
                name: "ComputeHeavy",
                sql: "SELECT COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 2",
                weight: 2.0,
                pattern: hot(8),
                cpu_base: ms(cpu_millis * 3),
                cpu_per_page: SimDuration::from_micros(20),
                is_write: false,
            },
            QueryClassSpec {
                name: "Point",
                sql: "SELECT v FROM t WHERE id = 3",
                weight: 2.0,
                pattern: hot(1),
                cpu_base: SimDuration::from_micros(200),
                cpu_per_page: SimDuration::from_micros(10),
                is_write: false,
            },
            QueryClassSpec {
                name: "Update",
                sql: "UPDATE t SET v = 4 WHERE id = 5",
                weight: 1.0,
                pattern: hot(2),
                cpu_base: SimDuration::from_micros(300),
                cpu_per_page: SimDuration::from_micros(10),
                is_write: true,
            },
        ],
    }
}

/// An uncacheable, I/O-heavy workload: uniform reads over a table far
/// larger than any pool, negligible CPU.
pub fn io_bound_workload(app: AppId, table_pages: u64, reads_per_query: u32) -> WorkloadSpec {
    let space = SpaceId(60 + app.0);
    WorkloadSpec {
        name: "io-bound".into(),
        app,
        classes: vec![
            QueryClassSpec {
                name: "ColdRead",
                sql: "SELECT * FROM big WHERE id = 1",
                weight: 9.0,
                pattern: AccessPattern::UniformLookup {
                    space,
                    table_pages,
                    count: reads_per_query,
                },
                cpu_base: SimDuration::from_micros(200),
                cpu_per_page: SimDuration::from_micros(5),
                is_write: false,
            },
            QueryClassSpec {
                name: "ColdWrite",
                sql: "UPDATE big SET v = 2 WHERE id = 3",
                weight: 1.0,
                pattern: AccessPattern::UniformLookup {
                    space,
                    table_pages,
                    count: 1,
                },
                cpu_base: SimDuration::from_micros(200),
                cpu_per_page: SimDuration::from_micros(5),
                is_write: true,
            },
        ],
    }
}

/// A workload with a write hotspot: most classes are light cache-resident
/// reads, plus one write class whose update target is a single hot page
/// (an auction counter, a sequence row). Raising its rate or execution
/// time serialises the writers — the lock-contention anomaly the paper's
/// §7 proposes detecting with the same outlier machinery.
pub fn hotspot_write_workload(app: AppId, write_ms: u64) -> WorkloadSpec {
    let space = SpaceId(80 + app.0);
    let ms = SimDuration::from_millis;
    // A population of light read classes (IQR detection needs one; real
    // applications have 10+ classes) around the two write classes.
    let read = |name: &'static str, sql: &'static str, count: u32, base_us: u64| QueryClassSpec {
        name,
        sql,
        weight: 2.0,
        pattern: AccessPattern::HotSet {
            space,
            hot_pages: 256,
            count,
        },
        cpu_base: SimDuration::from_micros(base_us),
        cpu_per_page: SimDuration::from_micros(10),
        is_write: false,
    };
    WorkloadSpec {
        name: "hotspot-write".into(),
        app,
        classes: vec![
            read("Read", "SELECT v FROM t WHERE id = 1", 3, 300),
            read(
                "ReadJoin",
                "SELECT * FROM t, u WHERE t.id = u.t_id AND t.id = 2",
                5,
                500,
            ),
            read(
                "ReadRange",
                "SELECT * FROM t WHERE k BETWEEN 1 AND 2",
                8,
                450,
            ),
            read("ReadAgg", "SELECT COUNT(*) FROM t WHERE g = 3", 6, 600),
            read("ReadPoint", "SELECT n FROM counters WHERE id = 4", 1, 200),
            read(
                "ReadTop",
                "SELECT * FROM t ORDER BY v DESC LIMIT 10",
                4,
                400,
            ),
            read("ReadUser", "SELECT * FROM u WHERE id = 5", 2, 250),
            QueryClassSpec {
                name: "CounterUpdate",
                sql: "UPDATE counters SET n = n + 1 WHERE id = 1",
                weight: 3.0,
                // Composite: the single-page update target first (it is
                // what gets locked), then a couple of reads.
                pattern: AccessPattern::Composite(vec![
                    AccessPattern::HotSet {
                        space,
                        hot_pages: 1,
                        count: 1,
                    },
                    AccessPattern::HotSet {
                        space,
                        hot_pages: 256,
                        count: 2,
                    },
                ]),
                cpu_base: ms(write_ms),
                cpu_per_page: SimDuration::from_micros(10),
                is_write: true,
            },
            QueryClassSpec {
                name: "WideUpdate",
                sql: "UPDATE t SET v = 2 WHERE id = 7",
                weight: 1.0,
                pattern: AccessPattern::Composite(vec![
                    AccessPattern::UniformLookup {
                        space,
                        table_pages: 4_096,
                        count: 1,
                    },
                    AccessPattern::HotSet {
                        space,
                        hot_pages: 256,
                        count: 1,
                    },
                ]),
                cpu_base: SimDuration::from_micros(400),
                cpu_per_page: SimDuration::from_micros(10),
                is_write: true,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_sim::SimRng;

    #[test]
    fn cpu_bound_stays_in_hot_set() {
        let w = cpu_bound_workload(AppId(3), 64, 5);
        let mut rng = SimRng::new(1);
        for _ in 0..500 {
            for page in w.sample_query(&mut rng).pages {
                assert!(page.page_no < 64);
            }
        }
    }

    #[test]
    fn cpu_bound_demand_is_dominated_by_base() {
        let w = cpu_bound_workload(AppId(3), 64, 5);
        let mut rng = SimRng::new(2);
        let q = w.query_of_class(0, &mut rng);
        assert!(q.cpu_demand() >= SimDuration::from_millis(5));
        assert!(q.pages.len() <= 8);
    }

    #[test]
    fn io_bound_spreads_over_table() {
        let w = io_bound_workload(AppId(4), 100_000, 8);
        let mut rng = SimRng::new(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            for page in w.sample_query(&mut rng).pages {
                distinct.insert(page.page_no);
            }
        }
        assert!(distinct.len() > 1_000, "essentially uncacheable");
    }

    #[test]
    fn hotspot_write_locks_one_page() {
        let w = hotspot_write_workload(AppId(5), 5);
        let mut rng = SimRng::new(9);
        let idx = w.class_index_by_name("CounterUpdate").unwrap();
        for _ in 0..50 {
            let q = w.query_of_class(idx, &mut rng);
            assert_eq!(q.locked_pages().len(), 1, "locks exactly the counter");
            assert_eq!(q.locked_pages()[0].page_no, 0);
        }
    }

    #[test]
    fn apps_get_disjoint_spaces() {
        let a = cpu_bound_workload(AppId(1), 10, 1);
        let b = cpu_bound_workload(AppId(2), 10, 1);
        let mut rng = SimRng::new(4);
        let pa = a.sample_query(&mut rng).pages[0].space;
        let pb = b.sample_query(&mut rng).pages[0].space;
        assert_ne!(pa, pb);
    }
}
