//! The closed-loop client session emulator.
//!
//! Each active client repeats: sample an interaction from the mix → wait
//! for its completion → think (exponentially distributed). The number of
//! active clients tracks a [`LoadFunction`] with multiplicative noise, and
//! session lengths are randomised — the paper's emulator "randomly varies
//! the session time and thinking time of clients".

use crate::load::LoadFunction;
use odlb_sim::{SimDuration, SimRng, SimTime};

/// Client-behaviour parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Mean think time between interactions.
    pub think_time_mean: SimDuration,
    /// Relative noise on the load function (0.1 = ±10%).
    pub load_noise: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            // TPC-W specifies 7 s mean think time; scaled down to keep
            // simulated query rates high relative to wall-clock cost.
            think_time_mean: SimDuration::from_millis(700),
            load_noise: 0.1,
        }
    }
}

/// Tracks how many client sessions should be active and samples their
/// behaviour. The simulation driver owns the actual per-client state (who
/// is thinking vs. waiting); this type centralises the stochastic choices
/// so they stay deterministic per seed.
#[derive(Clone, Debug)]
pub struct ClientPool {
    config: ClientConfig,
    load: LoadFunction,
    rng: SimRng,
}

impl ClientPool {
    /// Creates a pool following `load` with behaviour `config`.
    pub fn new(config: ClientConfig, load: LoadFunction, rng: SimRng) -> Self {
        ClientPool { config, load, rng }
    }

    /// The target number of active clients at `t` (noisy).
    pub fn target_clients(&mut self, t: SimTime) -> usize {
        let noise = self.config.load_noise;
        self.load.noisy_clients_at(t, noise, &mut self.rng)
    }

    /// The deterministic (noise-free) load at `t`, for plotting Fig. 3(a).
    pub fn nominal_clients(&self, t: SimTime) -> usize {
        self.load.clients_at(t)
    }

    /// Samples one think-time.
    pub fn next_think(&mut self) -> SimDuration {
        let secs = self
            .rng
            .exponential(self.config.think_time_mean.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }

    /// The behaviour configuration.
    pub fn config(&self) -> ClientConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(load: LoadFunction) -> ClientPool {
        ClientPool::new(ClientConfig::default(), load, SimRng::new(11))
    }

    #[test]
    fn targets_track_load() {
        let mut p = pool(LoadFunction::Constant(100));
        for _ in 0..100 {
            let n = p.target_clients(SimTime::from_secs(1));
            assert!((90..=110).contains(&n));
        }
        assert_eq!(p.nominal_clients(SimTime::from_secs(1)), 100);
    }

    #[test]
    fn think_times_have_configured_mean() {
        let mut p = pool(LoadFunction::Constant(1));
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.next_think().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.7).abs() < 0.02, "mean think {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = pool(LoadFunction::Constant(10));
        let mut b = pool(LoadFunction::Constant(10));
        for _ in 0..50 {
            assert_eq!(a.next_think(), b.next_think());
            assert_eq!(
                a.target_clients(SimTime::ZERO),
                b.target_clients(SimTime::ZERO)
            );
        }
    }
}
