//! The TPC-W model: an on-line bookstore under the shopping mix.
//!
//! 14 query classes over the TPC-W schema. The paper's database is ~4 GB
//! (100K items, 2.8M customers); the model scales page counts down ~6× for
//! simulation speed while keeping the *relative* footprints, so the pool
//! (8192 pages = 128 MB) is still much smaller than the database and the
//! paper's working-set ratios hold:
//!
//! * **BestSeller** (class index 8, matching the paper's "#8"): with the
//!   `O_DATE` index, an index range scan over recent orders plus skewed
//!   order-line/item lookups — a ~7k-page working set (paper Fig. 5:
//!   acceptable memory 6982 pages). With the index dropped
//!   ([`TpcwConfig::odate_index`] = false), the plan degenerates into a
//!   sequential scan of `ORDER_LINE` — read-ahead storms, pool pollution,
//!   and a *flatter* MRC whose acceptable memory is smaller (paper: 3695).
//! * **NewProducts** (class index 9, the paper's "#9"): recency scan over
//!   the newest items.
//!
//! The shopping mix is ~20% writes (TPC-W's "most representative
//! e-commerce workload").

use crate::pattern::AccessPattern;
use crate::spec::{QueryClassSpec, WorkloadSpec};
use odlb_metrics::AppId;
use odlb_sim::SimDuration;

/// TPC-W tablespaces (distinct from RUBiS's so both can share one engine).
pub mod spaces {
    use odlb_storage::SpaceId;
    /// The `item` table (+ its indexes).
    pub const ITEM: SpaceId = SpaceId(0);
    /// The `customer` table.
    pub const CUSTOMER: SpaceId = SpaceId(1);
    /// The `orders` table, recency-ordered.
    pub const ORDERS: SpaceId = SpaceId(2);
    /// The `order_line` table.
    pub const ORDER_LINE: SpaceId = SpaceId(3);
    /// The `author` table.
    pub const AUTHOR: SpaceId = SpaceId(4);
    /// The `address` table.
    pub const ADDRESS: SpaceId = SpaceId(5);
    /// The `cc_xacts` payment table.
    pub const CC_XACTS: SpaceId = SpaceId(6);
    /// The `shopping_cart` tables.
    pub const CART: SpaceId = SpaceId(7);
}

/// Table sizes in pages (scaled-down 4 GB database).
pub mod sizing {
    /// `item` pages.
    pub const ITEM_PAGES: u64 = 3_000;
    /// `customer` pages.
    pub const CUSTOMER_PAGES: u64 = 6_000;
    /// `orders` pages.
    pub const ORDERS_PAGES: u64 = 6_000;
    /// `order_line` pages.
    pub const ORDER_LINE_PAGES: u64 = 16_000;
    /// `author` pages.
    pub const AUTHOR_PAGES: u64 = 1_000;
    /// `address` pages.
    pub const ADDRESS_PAGES: u64 = 2_000;
    /// `cc_xacts` pages.
    pub const CC_XACTS_PAGES: u64 = 3_000;
    /// shopping cart pages.
    pub const CART_PAGES: u64 = 500;
}

/// Class index of BestSeller (the paper's query #8).
pub const BESTSELLER: usize = 8;
/// Class index of NewProducts (the paper's query #9).
pub const NEW_PRODUCTS: usize = 9;

/// The three standard TPC-W transaction mixes. The paper uses the
/// shopping mix ("considered the most representative e-commerce workload
/// by the TPC"); the others are provided for sensitivity studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TpcwMix {
    /// ~5% writes: almost pure browsing.
    Browsing,
    /// ~20% writes: the paper's configuration.
    #[default]
    Shopping,
    /// ~50% writes: checkout-dominated.
    Ordering,
}

/// TPC-W configuration knobs.
#[derive(Clone, Copy, Debug)]
pub struct TpcwConfig {
    /// Application identity in the cluster.
    pub app: AppId,
    /// Whether the `O_DATE` index exists (§5.3 drops it to inject a
    /// localized access-pattern change).
    pub odate_index: bool,
    /// Which transaction mix to run.
    pub mix: TpcwMix,
}

impl Default for TpcwConfig {
    fn default() -> Self {
        TpcwConfig {
            app: AppId(0),
            odate_index: true,
            mix: TpcwMix::Shopping,
        }
    }
}

/// The BestSeller plan: index range scan when the `O_DATE` index exists,
/// an `ORDER_LINE` sequential scan when it was dropped. Public so the
/// Fig. 4 harness can swap the plan mid-run.
pub fn bestseller_pattern(odate_index: bool) -> AccessPattern {
    use sizing::*;
    use spaces::*;
    if odate_index {
        // Index range scan over recent orders, then order-line and item
        // lookups for the top sellers: a large but cacheable working set.
        AccessPattern::Composite(vec![
            // Calibrated against Fig. 5: acceptable memory ≈ 6850 pages
            // under a 5% threshold (paper: 6982).
            AccessPattern::RecencyScan {
                space: ORDERS,
                table_pages: ORDERS_PAGES,
                scan_pages: 450,
                recency: 1.5,
                window_pages: 5_000,
            },
            AccessPattern::ZipfLookup {
                space: ORDER_LINE,
                table_pages: ORDER_LINE_PAGES,
                exponent: 0.85,
                count: 180,
            },
            AccessPattern::ZipfLookup {
                space: ITEM,
                table_pages: ITEM_PAGES,
                exponent: 1.0,
                count: 50,
            },
        ])
    } else {
        // No O_DATE index: the plan falls back to scanning order_line.
        // Successive executions continue the scan around the whole table
        // (16k pages ≫ the 8192-page pool) — an LRU-hostile stream whose
        // per-class MRC is nearly flat (the paper's "longer tail …
        // flatter curve", quota 3695 ≪ 6982) and whose read-ahead floods
        // evict everyone else from a shared pool.
        AccessPattern::Composite(vec![
            AccessPattern::CyclicScan {
                space: ORDER_LINE,
                table_pages: ORDER_LINE_PAGES,
                scan_pages: 4_000,
                cursor: std::cell::Cell::new(0),
            },
            AccessPattern::ZipfLookup {
                space: ITEM,
                table_pages: ITEM_PAGES,
                exponent: 1.0,
                count: 50,
            },
        ])
    }
}

/// Builds the TPC-W workload under the shopping mix.
pub fn tpcw_workload(config: TpcwConfig) -> WorkloadSpec {
    use sizing::*;
    use spaces::*;
    let us = SimDuration::from_micros;
    let classes = vec![
        QueryClassSpec {
            name: "Home",
            sql: "SELECT c_fname FROM customer WHERE c_id = 1; SELECT i_id FROM item WHERE i_subject = 'BEST'",
            weight: 14.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::HotSet { space: ITEM, hot_pages: 200, count: 4 },
                AccessPattern::ZipfLookup { space: CUSTOMER, table_pages: CUSTOMER_PAGES, exponent: 1.1, count: 2 },
            ]),
            cpu_base: us(300),
            cpu_per_page: us(15),
            is_write: false,
        },
        QueryClassSpec {
            name: "ProductDetail",
            sql: "SELECT * FROM item, author WHERE item.i_a_id = author.a_id AND i_id = 7",
            weight: 15.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::ZipfLookup { space: ITEM, table_pages: ITEM_PAGES, exponent: 1.0, count: 3 },
                AccessPattern::ZipfLookup { space: AUTHOR, table_pages: AUTHOR_PAGES, exponent: 0.9, count: 1 },
            ]),
            cpu_base: us(250),
            cpu_per_page: us(15),
            is_write: false,
        },
        QueryClassSpec {
            name: "SearchByAuthor",
            sql: "SELECT * FROM item, author WHERE a_lname = 'X' AND item.i_a_id = author.a_id",
            weight: 6.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::ZipfLookup { space: AUTHOR, table_pages: AUTHOR_PAGES, exponent: 0.9, count: 6 },
                AccessPattern::ZipfLookup { space: ITEM, table_pages: ITEM_PAGES, exponent: 1.0, count: 8 },
            ]),
            cpu_base: us(500),
            cpu_per_page: us(18),
            is_write: false,
        },
        QueryClassSpec {
            name: "SearchByTitle",
            sql: "SELECT * FROM item WHERE i_title LIKE 'T%'",
            weight: 6.0,
            pattern: AccessPattern::ZipfLookup { space: ITEM, table_pages: ITEM_PAGES, exponent: 0.9, count: 12 },
            cpu_base: us(500),
            cpu_per_page: us(18),
            is_write: false,
        },
        QueryClassSpec {
            name: "SearchBySubject",
            sql: "SELECT * FROM item WHERE i_subject = 'HISTORY' ORDER BY i_pub_date DESC",
            weight: 5.0,
            pattern: AccessPattern::ZipfLookup { space: ITEM, table_pages: ITEM_PAGES, exponent: 0.8, count: 16 },
            cpu_base: us(550),
            cpu_per_page: us(18),
            is_write: false,
        },
        QueryClassSpec {
            name: "ShoppingCart",
            sql: "UPDATE shopping_cart_line SET scl_qty = 2 WHERE scl_sc_id = 5",
            weight: 10.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::HotSet { space: CART, hot_pages: CART_PAGES, count: 3 },
                AccessPattern::ZipfLookup { space: ITEM, table_pages: ITEM_PAGES, exponent: 1.0, count: 4 },
            ]),
            cpu_base: us(350),
            cpu_per_page: us(15),
            is_write: true,
        },
        QueryClassSpec {
            name: "CustomerRegistration",
            sql: "INSERT INTO customer (c_id, c_uname) VALUES (1, 'u')",
            weight: 2.0,
            pattern: AccessPattern::UniformLookup { space: CUSTOMER, table_pages: CUSTOMER_PAGES, count: 3 },
            cpu_base: us(400),
            cpu_per_page: us(15),
            is_write: true,
        },
        QueryClassSpec {
            name: "BuyRequest",
            sql: "SELECT * FROM customer, address WHERE c_id = 3 AND c_addr_id = addr_id",
            weight: 5.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::HotSet { space: CART, hot_pages: CART_PAGES, count: 4 },
                AccessPattern::ZipfLookup { space: CUSTOMER, table_pages: CUSTOMER_PAGES, exponent: 1.0, count: 3 },
                AccessPattern::ZipfLookup { space: ADDRESS, table_pages: ADDRESS_PAGES, exponent: 1.0, count: 2 },
            ]),
            cpu_base: us(400),
            cpu_per_page: us(15),
            is_write: true,
        },
        QueryClassSpec {
            name: "BestSeller",
            sql: "SELECT i_id FROM orders, order_line, item WHERE o_id = ol_o_id AND ol_i_id = i_id AND o_date > 5 GROUP BY i_id ORDER BY COUNT(*) DESC",
            weight: 4.0,
            pattern: bestseller_pattern(config.odate_index),
            cpu_base: us(2_000),
            cpu_per_page: us(20),
            is_write: false,
        },
        QueryClassSpec {
            name: "NewProducts",
            sql: "SELECT * FROM item, author WHERE i_a_id = a_id AND i_subject = 'ART' ORDER BY i_pub_date DESC",
            weight: 9.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::RecencyScan {
                    space: ITEM,
                    table_pages: ITEM_PAGES,
                    scan_pages: 150,
                    recency: 2.0,
                    window_pages: 600,
                },
                AccessPattern::ZipfLookup { space: AUTHOR, table_pages: AUTHOR_PAGES, exponent: 0.9, count: 20 },
            ]),
            cpu_base: us(1_000),
            cpu_per_page: us(18),
            is_write: false,
        },
        QueryClassSpec {
            name: "OrderInquiry",
            sql: "SELECT * FROM customer WHERE c_uname = 'u' AND c_passwd = 'p'",
            weight: 2.0,
            pattern: AccessPattern::ZipfLookup { space: CUSTOMER, table_pages: CUSTOMER_PAGES, exponent: 1.0, count: 2 },
            cpu_base: us(250),
            cpu_per_page: us(15),
            is_write: false,
        },
        QueryClassSpec {
            name: "OrderDisplay",
            sql: "SELECT * FROM orders, order_line WHERE o_id = ol_o_id AND o_c_id = 9 ORDER BY o_date DESC",
            weight: 3.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::RecencyScan {
                    space: ORDERS,
                    table_pages: ORDERS_PAGES,
                    scan_pages: 20,
                    recency: 2.0,
                    window_pages: 1_000,
                },
                AccessPattern::UniformLookup { space: ORDER_LINE, table_pages: ORDER_LINE_PAGES, count: 8 },
            ]),
            cpu_base: us(450),
            cpu_per_page: us(15),
            is_write: false,
        },
        QueryClassSpec {
            name: "AdminUpdate",
            sql: "UPDATE item SET i_cost = 1, i_image = 'i' WHERE i_id = 2",
            weight: 2.0,
            pattern: AccessPattern::ZipfLookup { space: ITEM, table_pages: ITEM_PAGES, exponent: 1.0, count: 3 },
            cpu_base: us(400),
            cpu_per_page: us(15),
            is_write: true,
        },
        QueryClassSpec {
            name: "BuyConfirm",
            sql: "INSERT INTO cc_xacts (cx_o_id, cx_type) VALUES (4, 'VISA')",
            weight: 4.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::HotSet { space: CC_XACTS, hot_pages: 200, count: 3 },
                AccessPattern::HotSet { space: CART, hot_pages: CART_PAGES, count: 2 },
            ]),
            cpu_base: us(500),
            cpu_per_page: us(15),
            is_write: true,
        },
    ];
    let mut spec = WorkloadSpec {
        name: match config.mix {
            TpcwMix::Browsing => "TPC-W (browsing)".into(),
            TpcwMix::Shopping => "TPC-W".into(),
            TpcwMix::Ordering => "TPC-W (ordering)".into(),
        },
        app: config.app,
        classes,
    };
    // The class set is identical across mixes; only weights shift.
    let write_scale = match config.mix {
        TpcwMix::Browsing => 0.2,
        TpcwMix::Shopping => 1.0,
        TpcwMix::Ordering => 4.0,
    };
    for class in &mut spec.classes {
        if class.is_write {
            class.weight *= write_scale;
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_mrc::MattsonTracker;
    use odlb_sim::SimRng;

    #[test]
    fn fourteen_classes_with_paper_numbering() {
        let w = tpcw_workload(TpcwConfig::default());
        assert_eq!(w.classes.len(), 14);
        assert_eq!(w.classes[BESTSELLER].name, "BestSeller");
        assert_eq!(w.classes[NEW_PRODUCTS].name, "NewProducts");
    }

    #[test]
    fn shopping_mix_is_about_twenty_percent_writes() {
        let w = tpcw_workload(TpcwConfig::default());
        let frac = w.write_fraction();
        assert!((0.15..=0.28).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn mixes_order_by_write_fraction() {
        let frac = |mix| {
            tpcw_workload(TpcwConfig {
                mix,
                ..Default::default()
            })
            .write_fraction()
        };
        let browsing = frac(TpcwMix::Browsing);
        let shopping = frac(TpcwMix::Shopping);
        let ordering = frac(TpcwMix::Ordering);
        assert!(browsing < shopping && shopping < ordering);
        assert!(browsing < 0.10, "browsing ~5% writes, got {browsing}");
        assert!(ordering > 0.40, "ordering ~50% writes, got {ordering}");
    }

    /// Computes a class's MRC parameters from a synthetic execution trace,
    /// the way the controller would from its access window.
    fn class_mrc(w: &WorkloadSpec, idx: usize, queries: usize, cap: usize) -> odlb_mrc::MrcParams {
        let mut rng = SimRng::new(77);
        let mut tracker = MattsonTracker::new(cap);
        for _ in 0..queries {
            for page in w.query_of_class(idx, &mut rng).pages {
                tracker.access(page);
            }
        }
        tracker.curve().params(cap, 0.05)
    }

    #[test]
    fn bestseller_with_index_has_large_cacheable_working_set() {
        // Fig. 5: acceptable memory ≈ 6982 pages within an 8192-page pool.
        let w = tpcw_workload(TpcwConfig::default());
        let params = class_mrc(&w, BESTSELLER, 60, 8192);
        assert!(
            (4_500..=8_192).contains(&params.acceptable_memory_needed),
            "acceptable {} should be large but under the pool size",
            params.acceptable_memory_needed
        );
        assert!(
            params.acceptable_miss_ratio < 0.35,
            "cacheable: acceptable miss ratio {}",
            params.acceptable_miss_ratio
        );
    }

    #[test]
    fn bestseller_without_index_has_flatter_mrc() {
        // §5.3: "The new BestSeller query class has a flatter MRC curve,
        // and thus the memory quota that it needs to meet its acceptable
        // miss ratios is [smaller] than the original."
        let with = class_mrc(&tpcw_workload(TpcwConfig::default()), BESTSELLER, 60, 8192);
        let without = class_mrc(
            &tpcw_workload(TpcwConfig {
                odate_index: false,
                ..Default::default()
            }),
            BESTSELLER,
            60,
            8192,
        );
        assert!(
            without.acceptable_memory_needed < with.acceptable_memory_needed,
            "no-index acceptable {} must be below indexed {}",
            without.acceptable_memory_needed,
            with.acceptable_memory_needed
        );
    }

    #[test]
    fn dropping_index_multiplies_pages_per_query() {
        let with = tpcw_workload(TpcwConfig::default()).classes[BESTSELLER]
            .pattern
            .pages_per_query();
        let without = tpcw_workload(TpcwConfig {
            odate_index: false,
            ..Default::default()
        })
        .classes[BESTSELLER]
            .pattern
            .pages_per_query();
        assert!(without > with * 5, "scan blow-up: {with} -> {without}");
    }

    #[test]
    fn non_bestseller_classes_are_light() {
        let w = tpcw_workload(TpcwConfig::default());
        for (i, c) in w.classes.iter().enumerate() {
            if i != BESTSELLER && i != NEW_PRODUCTS {
                assert!(
                    c.pattern.pages_per_query() <= 50,
                    "{} touches {} pages",
                    c.name,
                    c.pattern.pages_per_query()
                );
            }
        }
    }
}
