//! # odlb-workload — the TPC-W and RUBiS workload models
//!
//! The paper evaluates on two industry-standard dynamic-content benchmarks:
//! TPC-W (an on-line bookstore; shopping mix, 20% writes, ~4 GB database)
//! and RUBiS (an eBay-style auction site; bidding mix, 15% writes). Neither
//! benchmark kit nor its MySQL schema is usable here, so this crate models
//! them at the level the paper's mechanisms observe: *per-query-class page
//! access patterns over the tables each interaction touches*, plus the
//! transaction mix, CPU demands and write flags.
//!
//! What matters for reproducing the evaluation is the **relative footprint
//! and locality structure across classes** — BestSeller's ~7k-page working
//! set (Fig. 5), its degeneration into a scan when the `O_DATE` index is
//! dropped (Fig. 4, Table 1), SearchItemsByRegion's dominant footprint and
//! I/O share (Fig. 6, Tables 2–3) — all of which are explicit, calibrated
//! parameters of the models here.
//!
//! * [`pattern`] — reusable page-access-pattern generators (Zipf lookups,
//!   recency-skewed range scans, sequential scans, hot sets, composites).
//! * [`spec`] — a workload = an application + a weighted list of query
//!   class specs; sampling yields executable
//!   [`QuerySpec`](odlb_engine::QuerySpec)s.
//! * [`tpcw`] — the 14-class TPC-W shopping-mix model with the
//!   `O_DATE`-index knob.
//! * [`rubis`] — the 11-class RUBiS bidding-mix model.
//! * [`synthetic`] — single-resource workloads for controlled scenarios
//!   (pure CPU-bound, pure I/O-bound).
//! * [`load`] — offered-load functions (constant, step, the paper's
//!   sinusoid with noise).
//! * [`client`] — the closed-loop client session emulator.
//! * [`schedule`] — pregenerated open-loop arrival schedules for
//!   parameter-sweep cells that must share one workload trace.

pub mod client;
pub mod load;
pub mod pattern;
pub mod rubis;
pub mod schedule;
pub mod spec;
pub mod synthetic;
pub mod tpcw;

pub use client::{ClientConfig, ClientPool};
pub use load::LoadFunction;
pub use pattern::AccessPattern;
pub use schedule::{generate_schedule, GeneratedSchedule, ScheduleConfig, ScheduledQuery};
pub use spec::{QueryClassSpec, WorkloadSpec};
