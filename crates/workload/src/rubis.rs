//! The RUBiS model: an eBay-style auction site under the bidding mix.
//!
//! 11 query classes. The load-bearing calibration target is
//! **SearchItemsByRegion** (the paper's problem class in Tables 2–3 and
//! Fig. 6): a region×category listing whose scans range over almost the
//! whole items table — acceptable memory ≈ 7.9k pages (paper: 7906), so it
//! *cannot* co-locate with TPC-W's BestSeller in one 8192-page pool, and
//! it contributes the large majority of the application's I/O (paper: 87%
//! of I/O accesses).
//!
//! The bidding mix is ~15% writes ("the most representative of an auction
//! site workload").

use crate::pattern::AccessPattern;
use crate::spec::{QueryClassSpec, WorkloadSpec};
use odlb_metrics::AppId;
use odlb_sim::SimDuration;

/// RUBiS tablespaces (offset so TPC-W and RUBiS can share one engine).
pub mod spaces {
    use odlb_storage::SpaceId;
    /// Active auction items.
    pub const ITEMS: SpaceId = SpaceId(16);
    /// Registered users.
    pub const USERS: SpaceId = SpaceId(17);
    /// Bids.
    pub const BIDS: SpaceId = SpaceId(18);
    /// User comments.
    pub const COMMENTS: SpaceId = SpaceId(19);
    /// Categories (small, hot).
    pub const CATEGORIES: SpaceId = SpaceId(20);
    /// Regions (small, hot).
    pub const REGIONS: SpaceId = SpaceId(21);
}

/// Table sizes in pages.
pub mod sizing {
    /// `items` pages.
    pub const ITEMS_PAGES: u64 = 9_000;
    /// `users` pages.
    pub const USERS_PAGES: u64 = 6_000;
    /// `bids` pages.
    pub const BIDS_PAGES: u64 = 8_000;
    /// `comments` pages.
    pub const COMMENTS_PAGES: u64 = 2_000;
    /// `categories` pages (RUBiS has 20 categories).
    pub const CATEGORIES_PAGES: u64 = 20;
    /// `regions` pages (RUBiS has 62 regions).
    pub const REGIONS_PAGES: u64 = 62;
}

/// Class index of SearchItemsByRegion, the paper's problem class.
pub const SEARCH_ITEMS_BY_REGION: usize = 3;

/// RUBiS configuration knobs.
#[derive(Clone, Copy, Debug)]
pub struct RubisConfig {
    /// Application identity in the cluster.
    pub app: AppId,
    /// When false, SearchItemsByRegion is excluded from the mix — the
    /// paper's "RUBiS-1" configuration after the class is re-placed or
    /// removed (Tables 2 and 3).
    pub with_search_items_by_region: bool,
}

impl Default for RubisConfig {
    fn default() -> Self {
        RubisConfig {
            app: AppId(1),
            with_search_items_by_region: true,
        }
    }
}

/// Builds the RUBiS workload under the bidding mix.
pub fn rubis_workload(config: RubisConfig) -> WorkloadSpec {
    use sizing::*;
    use spaces::*;
    let us = SimDuration::from_micros;
    let mut classes = vec![
        QueryClassSpec {
            name: "BrowseCategories",
            sql: "SELECT * FROM categories",
            weight: 8.0,
            pattern: AccessPattern::HotSet { space: CATEGORIES, hot_pages: CATEGORIES_PAGES, count: 2 },
            cpu_base: us(200),
            cpu_per_page: us(12),
            is_write: false,
        },
        QueryClassSpec {
            name: "BrowseRegions",
            sql: "SELECT * FROM regions",
            weight: 6.0,
            pattern: AccessPattern::HotSet { space: REGIONS, hot_pages: REGIONS_PAGES, count: 2 },
            cpu_base: us(200),
            cpu_per_page: us(12),
            is_write: false,
        },
        QueryClassSpec {
            name: "SearchItemsByCategory",
            sql: "SELECT * FROM items WHERE category = 5 AND end_date >= 1 ORDER BY end_date ASC",
            weight: 12.0,
            pattern: AccessPattern::ZipfLookup { space: ITEMS, table_pages: ITEMS_PAGES, exponent: 1.0, count: 15 },
            cpu_base: us(600),
            cpu_per_page: us(15),
            is_write: false,
        },
        QueryClassSpec {
            name: "SearchItemsByRegion",
            sql: "SELECT * FROM items, users WHERE items.seller = users.id AND users.region = 3 AND category = 5",
            weight: 10.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::HotSet { space: REGIONS, hot_pages: REGIONS_PAGES, count: 2 },
                // Region-restricted listings have no covering index: each
                // execution walks a long contiguous stretch of the items
                // table at a near-uniform position, so the class's working
                // set approaches the whole table.
                AccessPattern::RecencyScan {
                    space: ITEMS,
                    table_pages: ITEMS_PAGES,
                    scan_pages: 450,
                    recency: 0.9,
                    window_pages: 8_200,
                },
            ]),
            cpu_base: us(1_500),
            cpu_per_page: us(18),
            is_write: false,
        },
        QueryClassSpec {
            name: "ViewItem",
            sql: "SELECT * FROM items WHERE id = 9",
            weight: 18.0,
            pattern: AccessPattern::ZipfLookup { space: ITEMS, table_pages: ITEMS_PAGES, exponent: 1.1, count: 3 },
            cpu_base: us(250),
            cpu_per_page: us(12),
            is_write: false,
        },
        QueryClassSpec {
            name: "ViewUserInfo",
            sql: "SELECT * FROM users, comments WHERE users.id = 4 AND comments.to_user_id = users.id",
            weight: 8.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::ZipfLookup { space: USERS, table_pages: USERS_PAGES, exponent: 1.0, count: 2 },
                AccessPattern::ZipfLookup { space: COMMENTS, table_pages: COMMENTS_PAGES, exponent: 0.9, count: 3 },
            ]),
            cpu_base: us(300),
            cpu_per_page: us(12),
            is_write: false,
        },
        QueryClassSpec {
            name: "ViewBidHistory",
            sql: "SELECT * FROM bids, users WHERE bids.item_id = 2 AND bids.user_id = users.id ORDER BY bids.date DESC",
            weight: 8.0,
            pattern: AccessPattern::ZipfLookup { space: BIDS, table_pages: BIDS_PAGES, exponent: 1.0, count: 6 },
            cpu_base: us(400),
            cpu_per_page: us(14),
            is_write: false,
        },
        QueryClassSpec {
            name: "AboutMe",
            sql: "SELECT * FROM users, bids, items WHERE users.id = 1 AND bids.user_id = 1 AND bids.item_id = items.id",
            weight: 5.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::ZipfLookup { space: USERS, table_pages: USERS_PAGES, exponent: 1.0, count: 4 },
                AccessPattern::ZipfLookup { space: BIDS, table_pages: BIDS_PAGES, exponent: 1.0, count: 5 },
            ]),
            cpu_base: us(500),
            cpu_per_page: us(14),
            is_write: false,
        },
        QueryClassSpec {
            name: "PlaceBid",
            sql: "INSERT INTO bids (user_id, item_id, bid) VALUES (1, 2, 3)",
            weight: 9.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::ZipfLookup { space: ITEMS, table_pages: ITEMS_PAGES, exponent: 1.1, count: 2 },
                AccessPattern::HotSet { space: BIDS, hot_pages: 300, count: 3 },
            ]),
            cpu_base: us(400),
            cpu_per_page: us(14),
            is_write: true,
        },
        QueryClassSpec {
            name: "RegisterItem",
            sql: "INSERT INTO items (name, seller, category) VALUES ('x', 1, 2)",
            weight: 3.0,
            pattern: AccessPattern::HotSet { space: ITEMS, hot_pages: 300, count: 3 },
            cpu_base: us(450),
            cpu_per_page: us(14),
            is_write: true,
        },
        QueryClassSpec {
            name: "BuyNow",
            sql: "UPDATE items SET quantity = 0 WHERE id = 8",
            weight: 3.0,
            pattern: AccessPattern::Composite(vec![
                AccessPattern::ZipfLookup { space: ITEMS, table_pages: ITEMS_PAGES, exponent: 1.1, count: 2 },
                AccessPattern::HotSet { space: USERS, hot_pages: 200, count: 2 },
            ]),
            cpu_base: us(400),
            cpu_per_page: us(14),
            is_write: true,
        },
    ];
    if !config.with_search_items_by_region {
        classes[SEARCH_ITEMS_BY_REGION].weight = 0.0;
    }
    WorkloadSpec {
        name: if config.with_search_items_by_region {
            "RUBiS".into()
        } else {
            "RUBiS-1".into()
        },
        app: config.app,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_mrc::MattsonTracker;
    use odlb_sim::SimRng;
    use odlb_storage::SpaceId;

    #[test]
    fn eleven_classes_and_mix() {
        let w = rubis_workload(RubisConfig::default());
        assert_eq!(w.classes.len(), 11);
        assert_eq!(
            w.classes[SEARCH_ITEMS_BY_REGION].name,
            "SearchItemsByRegion"
        );
        let frac = w.write_fraction();
        assert!((0.10..=0.20).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn search_items_by_region_mrc_spans_most_of_items_table() {
        // Fig. 6: acceptable memory ≈ 7906 pages — too big to share an
        // 8192-page pool with anything that matters.
        let w = rubis_workload(RubisConfig::default());
        let mut rng = SimRng::new(101);
        let mut tracker = MattsonTracker::new(10_000);
        for _ in 0..200 {
            for page in w.query_of_class(SEARCH_ITEMS_BY_REGION, &mut rng).pages {
                tracker.access(page);
            }
        }
        let params = tracker.curve().params(10_000, 0.05);
        assert!(
            (6_500..=9_500).contains(&params.acceptable_memory_needed),
            "acceptable memory {}",
            params.acceptable_memory_needed
        );
    }

    #[test]
    fn search_items_by_region_dominates_page_traffic() {
        // §5.5: SearchItemsByRegion contributes "a large majority (87%)"
        // of the I/O. Page traffic share in the mix is the driver.
        let w = rubis_workload(RubisConfig::default());
        let total_weighted: f64 = w
            .classes
            .iter()
            .map(|c| c.weight * c.pattern.pages_per_query() as f64)
            .sum();
        let heavy = &w.classes[SEARCH_ITEMS_BY_REGION];
        let share = heavy.weight * heavy.pattern.pages_per_query() as f64 / total_weighted;
        assert!(share > 0.75, "page-traffic share {share:.2}");
    }

    #[test]
    fn excluded_class_never_sampled() {
        let w = rubis_workload(RubisConfig {
            with_search_items_by_region: false,
            ..Default::default()
        });
        assert_eq!(w.name, "RUBiS-1");
        let mut rng = SimRng::new(5);
        for _ in 0..5_000 {
            let q = w.sample_query(&mut rng);
            assert_ne!(
                q.class.template as usize, SEARCH_ITEMS_BY_REGION,
                "weight 0 class must never be drawn"
            );
        }
    }

    #[test]
    fn spaces_disjoint_from_tpcw() {
        let tpcw = crate::tpcw::tpcw_workload(crate::tpcw::TpcwConfig::default());
        let rubis = rubis_workload(RubisConfig::default());
        let mut rng = SimRng::new(9);
        let mut tpcw_spaces: Vec<SpaceId> = Vec::new();
        for _ in 0..200 {
            for p in tpcw.sample_query(&mut rng).pages {
                tpcw_spaces.push(p.space);
            }
        }
        for _ in 0..200 {
            for p in rubis.sample_query(&mut rng).pages {
                assert!(
                    !tpcw_spaces.contains(&p.space),
                    "RUBiS space {:?} collides with TPC-W",
                    p.space
                );
            }
        }
    }
}
