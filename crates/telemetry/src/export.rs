//! Exposition formats: Prometheus text exposition for the final snapshot,
//! CSV for the per-interval time series — plus the validators the CI
//! smoke check and the `promcheck` binary run against real output.
//!
//! Both renderers iterate `BTreeMap`s and format integers wherever the
//! source value is an integer, so output is byte-identical across
//! same-seed runs and platforms.

use crate::registry::{FamilySample, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a float for exposition: integers without a fraction, others
/// through the shortest round-trip `Display` (deterministic per bit
/// pattern). Non-finite values clamp to 0 so every sample stays
/// parseable.
fn render_value(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // odlb-lint: allow(D03) — this IS the shared exposition formatter; shortest-roundtrip Display is deterministic per bit pattern
        format!("{v}")
    }
}

/// Renders the registry's current state in the Prometheus text exposition
/// format (version 0.0.4): `# HELP` and `# TYPE` per family, histograms
/// as cumulative `_bucket{le=...}` series plus `_sum`, `_count` and the
/// `_saturated` overflow flag (0/1).
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    registry.for_each_family(|name, help, kind, series| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {}", kind.label());
        for (labels, sample) in series {
            let braced = |extra: &str| -> String {
                match (labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{labels}}}"),
                    (false, false) => format!("{{{labels},{extra}}}"),
                }
            };
            match sample {
                FamilySample::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", braced(""));
                }
                FamilySample::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {}", braced(""), render_value(v));
                }
                FamilySample::Histogram(h) => h.with(|h| {
                    for (le, cum) in h.cumulative_buckets() {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            braced(&format!("le=\"{le}\""))
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{} {}", braced("le=\"+Inf\""), h.count());
                    let _ = writeln!(out, "{name}_sum{} {}", braced(""), h.sum());
                    let _ = writeln!(out, "{name}_count{} {}", braced(""), h.count());
                    // 1 once the sum has overflowed u64 (the `_sum` above
                    // is pinned at the ceiling and the mean is floored) —
                    // always emitted so dashboards can alert on it.
                    let _ = writeln!(
                        out,
                        "{name}_saturated{} {}",
                        braced(""),
                        h.saturated() as u64
                    );
                }),
            }
        }
    });
    out
}

/// Converts the canonical `key="value",key="value"` label rendering into
/// the CSV form `key=value;key=value`. This is a pure format conversion,
/// not sanitization: the registry rejects `"`, `,` and `;` in label
/// values at registration time (see `registry::render_labels`), so pair
/// boundaries are unambiguous and two distinct label sets can never
/// alias to one CSV key.
fn csv_labels(labels: &str) -> String {
    labels
        .split(',')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            pair.replacen("=\"", "=", 1)
                .trim_end_matches('"')
                .to_string()
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Renders the interval snapshots as a long-format CSV time series:
/// `time_s,seq,metric,labels,value`. `seq` is the 0-based interval
/// sequence number, identical to the `seq` of the `interval_closed`
/// trace event of the same interval — join the two streams on it.
/// Labels are `key=value` pairs joined with `;`.
pub fn render_csv(registry: &MetricsRegistry) -> String {
    let mut out = String::from("time_s,seq,metric,labels,value\n");
    for snap in registry.snapshots() {
        let time_s = snap.at_us as f64 / 1e6;
        for row in &snap.rows {
            let _ = writeln!(
                out,
                "{:.6},{},{},{},{}",
                time_s,
                snap.seq,
                row.name,
                csv_labels(&row.labels),
                render_value(row.value)
            );
        }
    }
    out
}

/// Summary statistics from a successful validation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// `# TYPE` families seen.
    pub families: usize,
    /// Sample lines seen.
    pub samples: usize,
    /// Histogram series fully checked (bucket monotonicity, count match).
    pub histograms: usize,
}

/// Splits `name{labels} value` / `name value` into parts.
fn split_sample(line: &str) -> Option<(&str, &str, &str)> {
    if let Some(open) = line.find('{') {
        let close = line.rfind('}')?;
        let value = line.get(close + 1..)?.trim();
        Some((&line[..open], &line[open + 1..close], value))
    } else {
        let (name, value) = line.split_once(' ')?;
        Some((name, "", value.trim()))
    }
}

/// Strips `le="..."` from a histogram bucket label set, returning the
/// remaining labels (the series key) and the `le` value.
fn split_le(labels: &str) -> Option<(String, String)> {
    let mut rest = Vec::new();
    let mut le = None;
    for pair in labels.split(',').filter(|p| !p.is_empty()) {
        match pair.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
            Some(v) => le = Some(v.to_string()),
            None => rest.push(pair),
        }
    }
    le.map(|le| (rest.join(","), le))
}

/// Validates a Prometheus text exposition: every sample belongs to a
/// declared family (`# TYPE` + `# HELP` first), values parse as finite
/// floats, counters are integral, histogram buckets have strictly
/// increasing `le` bounds with non-decreasing cumulative counts ending in
/// a `+Inf` bucket that equals the series' `_count`.
pub fn validate_prometheus(text: &str) -> Result<ExpositionStats, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    let mut stats = ExpositionStats::default();
    // (family, series labels) -> ordered (le, cumulative count).
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut inf_counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (no, line) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", no + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default();
            helped.insert(name.to_string(), true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().unwrap_or_default();
            if !["counter", "gauge", "histogram"].contains(&kind) {
                return Err(err(format!("unknown type '{kind}'")));
            }
            if !helped.contains_key(&name) {
                return Err(err(format!("TYPE for '{name}' without HELP")));
            }
            types.insert(name, kind.to_string());
            stats.families += 1;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, labels, value) =
            split_sample(line).ok_or_else(|| err(format!("unparseable sample '{line}'")))?;
        let value: f64 = value
            .parse()
            .map_err(|_| err(format!("unparseable value in '{line}'")))?;
        if !value.is_finite() {
            return Err(err(format!("non-finite value in '{line}'")));
        }
        // Resolve the family: exact match, else a histogram suffix.
        let family = if types.contains_key(name) {
            name.to_string()
        } else {
            let base = ["_bucket", "_sum", "_count", "_saturated"]
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .ok_or_else(|| err(format!("sample '{name}' has no TYPE line")))?;
            if types.get(base).map(String::as_str) != Some("histogram") {
                return Err(err(format!("sample '{name}' has no TYPE line")));
            }
            base.to_string()
        };
        stats.samples += 1;
        match types[&family].as_str() {
            "counter" if value < 0.0 || value != value.trunc() => {
                // odlb-lint: allow(D03) — validator error message, not an exported artifact
                return Err(err(format!("counter '{name}' has non-count value {value}")));
            }
            "histogram" => {
                if name.ends_with("_bucket") {
                    let (series, le) = split_le(labels)
                        .ok_or_else(|| err(format!("bucket without le in '{line}'")))?;
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse()
                            .map_err(|_| err(format!("unparseable le '{le}'")))?
                    };
                    if le.is_infinite() {
                        inf_counts.insert((family.clone(), series), value);
                    } else {
                        buckets
                            .entry((family.clone(), series))
                            .or_default()
                            .push((le, value));
                    }
                } else if name.ends_with("_count") {
                    hist_counts.insert((family.clone(), labels.to_string()), value);
                } else if name.ends_with("_saturated") && value != 0.0 && value != 1.0 {
                    // odlb-lint: allow(D03) — validator error message, not an exported artifact
                    return Err(err(format!(
                        "saturation flag '{name}' must be 0 or 1, got {value}"
                    )));
                }
            }
            _ => {}
        }
    }

    for (key @ (family, series), seq) in &buckets {
        for w in seq.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "{family}{{{series}}}: le bounds not increasing ({} then {})",
                    w[0].0, w[1].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "{family}{{{series}}}: bucket counts decrease ({} then {})",
                    w[0].1, w[1].1
                ));
            }
        }
        let inf = inf_counts
            .get(key)
            .ok_or_else(|| format!("{family}{{{series}}}: missing +Inf bucket"))?;
        if let Some(&(_, last)) = seq.last() {
            if last > *inf {
                return Err(format!("{family}{{{series}}}: +Inf below last bucket"));
            }
        }
    }
    for (key @ (family, series), inf) in &inf_counts {
        let count = hist_counts
            .get(key)
            .ok_or_else(|| format!("{family}{{{series}}}: missing _count"))?;
        if count != inf {
            return Err(format!(
                "{family}{{{series}}}: _count {count} != +Inf bucket {inf}"
            ));
        }
    }
    stats.histograms = inf_counts.len();
    Ok(stats)
}

/// Validates the CSV time series: the header, five fields per row,
/// non-decreasing time, a non-decreasing integral interval `seq`,
/// parseable finite values, and monotone counters (`*_total`, `*_count`,
/// `*_sum` series must never decrease over time).
pub fn validate_csv(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("time_s,seq,metric,labels,value") => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let mut last_time = f64::NEG_INFINITY;
    let mut last_seq = 0u64;
    let mut monotone: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut rows = 0usize;
    for (no, line) in lines.enumerate() {
        let err = |msg: String| format!("row {}: {msg}", no + 1);
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(err(format!("expected 5 fields, got {}", fields.len())));
        }
        let time: f64 = fields[0]
            .parse()
            .map_err(|_| err(format!("unparseable time '{}'", fields[0])))?;
        if time < last_time {
            return Err(err("time went backwards".to_string()));
        }
        last_time = time;
        let seq: u64 = fields[1]
            .parse()
            .map_err(|_| err(format!("unparseable seq '{}'", fields[1])))?;
        if rows > 0 && seq < last_seq {
            return Err(err(format!("seq went backwards: {last_seq} -> {seq}")));
        }
        last_seq = seq;
        let value: f64 = fields[4]
            .parse()
            .map_err(|_| err(format!("unparseable value '{}'", fields[4])))?;
        if !value.is_finite() {
            return Err(err("non-finite value".to_string()));
        }
        let metric = fields[2];
        if metric.ends_with("_total") || metric.ends_with("_count") || metric.ends_with("_sum") {
            let key = (metric.to_string(), fields[3].to_string());
            if let Some(prev) = monotone.get(&key) {
                if value < *prev {
                    // odlb-lint: allow(D03) — validator error message, not an exported artifact
                    return Err(err(format!(
                        "counter {metric}{{{}}} decreased: {prev} -> {value}",
                        fields[3]
                    )));
                }
            }
            monotone.insert(key, value);
        }
        rows += 1;
    }
    Ok(rows)
}

/// Shape summary of a validated folded-stacks dump.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldedStats {
    /// Unique stack paths (= lines).
    pub lines: usize,
    /// Deepest stack (frames on the longest path).
    pub max_depth: usize,
}

/// Validates a folded-stacks dump (the `inferno` / `flamegraph.pl`
/// collapsed format): one `frame;frame;… <count>` line per unique
/// stack, frame names non-empty without `;` or whitespace, counts
/// unsigned integers, and lines strictly sorted by stack path (the
/// order [`crate::SpanProfiler::folded_sim`] emits) — so duplicates are
/// impossible and two dumps are comparable with a byte diff.
pub fn validate_folded(text: &str) -> Result<FoldedStats, String> {
    if text.is_empty() {
        return Err("empty folded dump (no spans recorded)".to_string());
    }
    let mut stats = FoldedStats::default();
    let mut prev: Option<Vec<&str>> = None;
    for (no, line) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", no + 1);
        let (path, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(format!("expected '<stack> <count>', got '{line}'")))?;
        value
            .parse::<u64>()
            .map_err(|_| err(format!("unparseable count '{value}'")))?;
        let frames: Vec<&str> = path.split(';').collect();
        for frame in &frames {
            if frame.is_empty() {
                return Err(err(format!("empty frame in stack '{path}'")));
            }
            if frame.chars().any(|c| c.is_whitespace() || c == ';') {
                return Err(err(format!("bad frame '{frame}' in stack '{path}'")));
            }
        }
        if let Some(prev) = &prev {
            if *prev >= frames {
                return Err(err(format!(
                    "stacks not strictly sorted: '{}' then '{path}'",
                    prev.join(";")
                )));
            }
        }
        stats.lines += 1;
        stats.max_depth = stats.max_depth.max(frames.len());
        prev = Some(frames);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter(
            "odlb_queries_total",
            "Queries executed.",
            &[("app", "app0")],
        );
        c.add(42);
        let g = reg.gauge(
            "odlb_queue_depth",
            "Outstanding queries.",
            &[("instance", "inst0")],
        );
        g.set(3.0);
        let h = reg.histogram(
            "odlb_query_latency_us",
            "Per-query latency (microseconds).",
            &[("class", "app0#8"), ("instance", "inst0")],
        );
        for v in [120u64, 130, 5_000, 5_000, 90_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn exposition_round_trips_through_validator() {
        let reg = sample_registry();
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE odlb_queries_total counter"));
        assert!(text.contains("odlb_queries_total{app=\"app0\"} 42"));
        assert!(text.contains("# TYPE odlb_query_latency_us histogram"));
        assert!(text.contains("le=\"+Inf\"} 5"));
        let stats = validate_prometheus(&text).expect("valid exposition");
        assert_eq!(stats.families, 3);
        assert_eq!(stats.histograms, 1);
        assert!(stats.samples >= 5);
    }

    #[test]
    fn validator_rejects_missing_type() {
        assert!(validate_prometheus("orphan_metric 3\n").is_err());
    }

    #[test]
    fn validator_rejects_decreasing_buckets() {
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        let err = validate_prometheus(bad).unwrap_err();
        assert!(err.contains("decrease"), "{err}");
    }

    #[test]
    fn validator_rejects_count_mismatch() {
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        let err = validate_prometheus(bad).unwrap_err();
        assert!(err.contains("_count"), "{err}");
    }

    #[test]
    fn csv_round_trips_through_validator() {
        let mut reg = sample_registry();
        reg.snapshot(10_000_000, 0);
        reg.counter(
            "odlb_queries_total",
            "Queries executed.",
            &[("app", "app0")],
        )
        .add(8);
        reg.snapshot(20_000_000, 1);
        let csv = render_csv(&reg);
        assert!(csv.starts_with("time_s,seq,metric,labels,value\n"));
        assert!(csv.contains("10.000000,0,odlb_queries_total,app=app0,42"));
        assert!(csv.contains("20.000000,1,odlb_queries_total,app=app0,50"));
        // Multi-label series keep every pair, `;`-joined.
        assert!(csv.contains("odlb_query_latency_us_count,class=app0#8;instance=inst0"));
        let rows = validate_csv(&csv).expect("valid csv");
        assert_eq!(rows, 2 * (1 + 1 + 7));
    }

    /// Regression for the silent-saturation bug: a histogram whose sum
    /// overflowed must say so in both expositions (pre-fix there was no
    /// flag at all, so this sample line did not exist).
    #[test]
    fn saturation_flag_reaches_both_expositions() {
        let mut reg = sample_registry();
        let text = render_prometheus(&reg);
        assert!(
            text.contains("odlb_query_latency_us_saturated{class=\"app0#8\",instance=\"inst0\"} 0"),
            "healthy histogram exposes a 0 flag:\n{text}"
        );
        validate_prometheus(&text).expect("0 flag is valid");
        let h = reg.histogram(
            "odlb_query_latency_us",
            "Per-query latency (microseconds).",
            &[("class", "app0#8"), ("instance", "inst0")],
        );
        h.record(u64::MAX);
        h.record(u64::MAX);
        let text = render_prometheus(&reg);
        assert!(
            text.contains("odlb_query_latency_us_saturated{class=\"app0#8\",instance=\"inst0\"} 1"),
            "saturated histogram raises the flag:\n{text}"
        );
        validate_prometheus(&text).expect("1 flag is valid");
        reg.snapshot(10_000_000, 0);
        let csv = render_csv(&reg);
        assert!(
            csv.contains("odlb_query_latency_us_saturated,class=app0#8;instance=inst0,1"),
            "flag lands in the CSV time series:\n{csv}"
        );
        validate_csv(&csv).expect("csv with flag is valid");
    }

    #[test]
    fn validator_rejects_non_boolean_saturation_flag() {
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 1\nh_sum 9\nh_count 1\nh_saturated 3\n";
        let err = validate_prometheus(bad).unwrap_err();
        assert!(err.contains("0 or 1"), "{err}");
    }

    #[test]
    fn csv_validator_rejects_shrinking_counter() {
        let bad = "time_s,seq,metric,labels,value\n1.0,0,x_total,,5\n2.0,1,x_total,,4\n";
        let err = validate_csv(bad).unwrap_err();
        assert!(err.contains("decreased"), "{err}");
    }

    #[test]
    fn csv_validator_rejects_backwards_seq() {
        let bad = "time_s,seq,metric,labels,value\n1.0,1,x,,5\n2.0,0,x,,6\n";
        let err = validate_csv(bad).unwrap_err();
        assert!(err.contains("seq went backwards"), "{err}");
    }

    #[test]
    fn csv_labels_is_a_pure_format_conversion() {
        assert_eq!(csv_labels(""), "");
        assert_eq!(csv_labels("app=\"app0\""), "app=app0");
        assert_eq!(
            csv_labels("class=\"app0#8\",instance=\"inst0\""),
            "class=app0#8;instance=inst0"
        );
    }

    #[test]
    fn non_finite_values_render_as_zero() {
        assert_eq!(render_value(f64::NAN), "0");
        assert_eq!(render_value(f64::INFINITY), "0");
        assert_eq!(render_value(2.0), "2");
        assert_eq!(render_value(0.25), "0.25");
    }

    #[test]
    fn folded_validator_accepts_profiler_output() {
        let shared = crate::SpanProfiler::shared();
        let opt = Some(shared.clone());
        crate::profile_span(&opt, "experiments", || {
            crate::profile_span(&opt, "fig3", || {
                crate::profile_span(&opt, "controller", || {
                    crate::profile_span(&opt, "mrc_update", || ());
                });
            });
        });
        let p = shared.borrow();
        let sim = validate_folded(&p.folded_sim()).expect("valid sim dump");
        assert_eq!(sim.lines, 4);
        assert_eq!(sim.max_depth, 4);
        let wall = validate_folded(&p.folded_wall()).expect("valid wall dump");
        assert_eq!(wall, sim);
    }

    #[test]
    fn folded_validator_rejects_malformed_dumps() {
        for (bad, what) in [
            ("", "empty"),
            ("a;b\n", "expected"),
            ("a;b notanumber\n", "unparseable count"),
            ("a;;b 3\n", "empty frame"),
            ("b 1\na 2\n", "not strictly sorted"),
            ("a 1\na 2\n", "not strictly sorted"),
            ("a;b c 3\n", "bad frame"),
        ] {
            let err = validate_folded(bad).unwrap_err();
            assert!(err.contains(what), "{bad:?}: {err}");
        }
    }

    #[test]
    fn folded_order_is_by_frames_not_raw_bytes() {
        // `["a","b"] < ["a!"]` as frame vectors even though the raw
        // lines compare the other way ('!' < ';'): the validator must
        // follow the profiler's BTreeMap path order.
        let good = "a;b 1\na! 2\n";
        validate_folded(good).expect("frame order");
        let bad = "a! 2\na;b 1\n";
        assert!(validate_folded(bad).is_err());
    }
}
