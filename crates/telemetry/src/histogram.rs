//! Log-linear (HDR-style) latency histograms with bounded memory, exact
//! count conservation, a guaranteed relative rank error for quantiles and
//! O(buckets) merge.
//!
//! Values are non-negative integers (the workspace records latencies in
//! integer microseconds, matching the simulation clock). The value range
//! is split into powers of two, each power subdivided into `2^p` linear
//! sub-buckets (`p` = [`LogLinearHistogram::grouping_power`]). Values
//! below `2^p` get one bucket each and are therefore exact; larger values
//! land in a bucket whose width is at most `2^-p` of its lower bound, so
//! any quantile estimate is off by at most a factor of `1 + 2^-p` from
//! the exact nearest-rank answer over the same sample.
//!
//! Compared with the exact [`Percentiles`](../../sim/stats) path (clone +
//! sort per query, O(n log n) with unbounded retention), recording here is
//! O(1), memory is bounded by the bucket count regardless of sample size,
//! and two histograms merge by adding bucket counts — which is what makes
//! per-class × per-replica series aggregatable across instances.

use odlb_sim::stats::nearest_rank;

/// Default linear sub-buckets per power of two (`2^7 = 128`), giving a
/// guaranteed relative rank error of `2^-7 < 0.8%`.
pub const DEFAULT_GROUPING_POWER: u32 = 7;

/// A mergeable log-linear histogram over `u64` values.
#[derive(Clone, Debug)]
pub struct LogLinearHistogram {
    /// Linear sub-buckets per octave = `2^grouping_power`.
    grouping_power: u32,
    /// Bucket counts, grown lazily up to the highest observed index.
    buckets: Vec<u64>,
    /// Total recorded values (always the sum of `buckets`).
    count: u64,
    /// Sum of recorded values; pinned at `u64::MAX` once it overflows
    /// (with `saturated` raised, so the collapse is never silent).
    sum: u64,
    /// True once `sum` has overflowed. Sticky until [`Self::reset`];
    /// merging a saturated histogram taints the destination. Surfaced
    /// in the Prometheus/CSV exposition as the `_saturated` sample so a
    /// quietly meaningless mean is visible downstream.
    saturated: bool,
    /// Exact extrema (quantile(0.0) / quantile(1.0) are exact).
    min: u64,
    max: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new(DEFAULT_GROUPING_POWER)
    }
}

impl LogLinearHistogram {
    /// Creates an empty histogram with `2^grouping_power` sub-buckets per
    /// power of two. `grouping_power` must be in `1..=16`.
    pub fn new(grouping_power: u32) -> Self {
        assert!(
            (1..=16).contains(&grouping_power),
            "grouping power out of range"
        );
        LogLinearHistogram {
            grouping_power,
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            saturated: false,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The configured grouping power.
    pub fn grouping_power(&self) -> u32 {
        self.grouping_power
    }

    /// The guaranteed relative rank error: any quantile estimate `e` for
    /// exact nearest-rank answer `x` satisfies `x <= e <= x * (1 + err)`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.grouping_power) as f64
    }

    /// Bucket index of `value`: identity below `2^p`, log-linear above.
    fn index_of(&self, value: u64) -> usize {
        let p = self.grouping_power;
        if value < (1 << p) {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // floor(log2), value >= 2^p
        let shift = exp - p;
        ((shift as usize) << p) + (value >> shift) as usize
    }

    /// Largest value mapping to bucket `index` (the bucket's inclusive
    /// upper bound — the representative quantiles report, so estimates
    /// never undershoot the exact answer).
    fn upper_bound_of(&self, index: usize) -> u64 {
        let p = self.grouping_power;
        if index < (1 << p) {
            return index as u64;
        }
        let shift = (index >> p) as u64 - 1;
        let m = (index - ((shift as usize) << p)) as u64;
        // Widen: for the topmost buckets `(m + 1) << shift` is exactly
        // 2^64 and wrapped to 0 in u64, underflowing the `- 1` (a panic
        // in debug, a bogus u64::MAX-wide bucket in release).
        ((((m as u128 + 1) << shift) - 1).min(u64::MAX as u128)) as u64
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value` in O(1).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        // Checked, not saturating: the old silent saturation let the
        // mean collapse near u64::MAX with no trace.
        match value
            .checked_mul(n)
            .and_then(|add| self.sum.checked_add(add))
        {
            Some(sum) => self.sum = sum,
            None => {
                self.sum = u64::MAX;
                self.saturated = true;
            }
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (`u64::MAX` once saturated — check
    /// [`Self::saturated`] before trusting it or the mean).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True once the sum has overflowed `u64` (here or in a merged-in
    /// histogram). The count and bucket quantiles stay exact; only the
    /// sum and mean are floored.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Exact minimum (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (0 when empty, so gauges render sanely).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by the nearest-rank method over
    /// bucket counts, or `None` when empty. Exact at `q = 0` and `q = 1`
    /// (tracked extrema); elsewhere within [`Self::relative_error`] of the
    /// exact nearest-rank answer.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        let rank = nearest_rank(q, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the tracked extrema: the last bucket's
                // upper bound can overshoot the true maximum.
                return Some(self.upper_bound_of(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one by adding bucket counts —
    /// O(buckets), count-conserving, commutative and associative. Both
    /// histograms must share a grouping power.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        assert_eq!(
            self.grouping_power, other.grouping_power,
            "cannot merge histograms with different grouping powers"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        match self.sum.checked_add(other.sum) {
            Some(sum) => self.sum = sum,
            None => {
                self.sum = u64::MAX;
                self.saturated = true;
            }
        }
        self.saturated |= other.saturated;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty, keeping the bucket allocation.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.saturated = false;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Non-empty buckets as `(inclusive upper bound, cumulative count)`,
    /// upper bounds strictly increasing — exactly the Prometheus
    /// `_bucket{le="..."}` series (the `+Inf` bucket is the total count
    /// and is appended by the exporter).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((self.upper_bound_of(idx), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogLinearHistogram::new(7);
        for v in 0..128 {
            h.record(v);
        }
        assert_eq!(h.count(), 128);
        // Nearest rank: ceil(0.5 * 128) = 64th smallest of 0..=127 is 63.
        assert_eq!(h.quantile(0.5), Some(63));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(127));
    }

    #[test]
    fn index_and_upper_bound_are_consistent() {
        let h = LogLinearHistogram::new(3);
        // Every value maps to a bucket whose upper bound is >= the value
        // and within the advertised relative width.
        let mut prev_idx = 0;
        for v in 0..100_000u64 {
            let idx = h.index_of(v);
            assert!(idx >= prev_idx, "indices must be monotone at v={v}");
            prev_idx = idx;
            let ub = h.upper_bound_of(idx);
            assert!(ub >= v, "upper bound {ub} < value {v}");
            assert!(
                (ub - v) as f64 <= h.relative_error() * v as f64 + 1.0,
                "bucket too wide at v={v}: ub={ub}"
            );
        }
    }

    #[test]
    fn quantile_error_bound_holds() {
        let mut h = LogLinearHistogram::new(7);
        let mut exact: Vec<u64> = (0..5_000).map(|i| (i * i) % 700_001).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = h.quantile(q).unwrap();
            assert!(est >= truth, "q={q}: est {est} < exact {truth}");
            assert!(
                est as f64 <= truth as f64 * (1.0 + h.relative_error()) + 1.0,
                "q={q}: est {est} too far above exact {truth}"
            );
        }
    }

    #[test]
    fn merge_conserves_counts_and_matches_combined() {
        let mut a = LogLinearHistogram::new(7);
        let mut b = LogLinearHistogram::new(7);
        let mut all = LogLinearHistogram::new(7);
        for i in 0..1_000u64 {
            let v = i * 37 % 90_000;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogLinearHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = LogLinearHistogram::new(4);
        for v in [3u64, 3, 900, 17, 17, 17, 1_000_000] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, h.count());
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "upper bounds strictly increase");
            assert!(w[0].1 < w[1].1, "cumulative counts strictly increase");
        }
    }

    #[test]
    fn reset_keeps_capacity_and_zeroes_state() {
        let mut h = LogLinearHistogram::default();
        h.record(1_000_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        h.record(42);
        assert_eq!(h.quantile(1.0), Some(42));
    }

    /// Regression for the float-fragile rank (shared with
    /// `Percentiles`): values below `2^p` are bucketed exactly, so p7 of
    /// 1..=100 must be exactly 7 — the pre-fix `(q * count).ceil()`
    /// computed `7.000000000000001` and picked rank 8.
    #[test]
    fn quantile_rank_is_exact_on_integer_boundaries() {
        let mut h = LogLinearHistogram::new(7);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.07), Some(7));
        assert_eq!(h.quantile(0.55), Some(55));
    }

    /// Regression at the sum boundary: the pre-fix `saturating_add`
    /// collapsed the mean silently; saturation must now raise the sticky
    /// flag while counts and quantiles stay exact.
    #[test]
    fn sum_saturation_raises_the_flag() {
        let mut h = LogLinearHistogram::default();
        h.record(u64::MAX - 10);
        assert!(!h.saturated(), "one large value fits exactly");
        assert_eq!(h.sum(), u64::MAX - 10);
        h.record(11);
        assert!(h.saturated(), "crossing u64::MAX must be flagged");
        assert_eq!(h.sum(), u64::MAX, "sum pins at the ceiling");
        assert_eq!(h.count(), 2, "count stays exact");
        assert_eq!(h.max(), Some(u64::MAX - 10));
        // Sticky until reset.
        h.record(1);
        assert!(h.saturated());
        h.reset();
        assert!(!h.saturated(), "reset clears the flag");
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn record_n_saturates_on_the_multiply() {
        let mut h = LogLinearHistogram::default();
        // value * n overflows even though each fits individually.
        h.record_n(u64::MAX / 2, 3);
        assert!(h.saturated());
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_saturation_taints_and_detects_overflow() {
        // Case 1: merging two unsaturated histograms whose sums overflow
        // together.
        let mut a = LogLinearHistogram::default();
        let mut b = LogLinearHistogram::default();
        a.record(u64::MAX - 5);
        b.record(u64::MAX - 5);
        assert!(!a.saturated() && !b.saturated());
        a.merge(&b);
        assert!(a.saturated(), "merge overflow must be flagged");
        assert_eq!(a.sum(), u64::MAX);
        // Case 2: merging an already-saturated histogram taints even
        // when the checked add itself fits (0 + u64::MAX is exact).
        let mut d = LogLinearHistogram::default();
        d.record(u64::MAX);
        d.record(u64::MAX);
        assert!(d.saturated());
        let mut empty = LogLinearHistogram::default();
        empty.merge(&d);
        assert!(empty.saturated(), "saturation propagates through merge");
        assert_eq!(empty.sum(), u64::MAX);
    }

    /// Regression: the topmost bucket's upper bound is mathematically
    /// `2^64 - 1`; computing it in u64 wrapped `(m+1) << shift` to zero
    /// and panicked on the `- 1` in debug builds (bogus bound in
    /// release), so any histogram holding a value near `u64::MAX` blew
    /// up on export.
    #[test]
    fn top_bucket_upper_bound_does_not_overflow() {
        let mut h = LogLinearHistogram::default();
        h.record(u64::MAX);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets, vec![(u64::MAX, 1)]);
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = LogLinearHistogram::default();
        let mut b = LogLinearHistogram::default();
        a.record_n(700, 5);
        for _ in 0..5 {
            b.record(700);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }
}
