//! The live observability plane: a zero-dependency HTTP listener that
//! serves the current Prometheus exposition at `GET /metrics`, so a
//! running experiment can be scraped instead of snapshotted to files.
//!
//! Design: the simulation is single-threaded and deterministic; the
//! listener must never feed back into it. The server therefore owns a
//! *published copy* of the exposition behind a `Mutex<String>` — the
//! simulation thread pushes a freshly rendered exposition into it at
//! every interval snapshot (see [`crate::Telemetry::snapshot`]), and
//! the listener thread only ever reads that copy. No lock, socket or
//! wall-clock state is visible to the simulation: attaching a server
//! leaves `.prom`/`.csv` artifacts and golden trace digests
//! byte-identical (pinned by `tests/live_scrape.rs`).
//!
//! This module is the one sanctioned home for threads and wall-clock
//! socket I/O in the telemetry crate: `odlb-lint` exempts
//! `crates/telemetry/src/serve.rs` from D01/D04 the same way it exempts
//! the profiler from D01 (see `odlb_lint::policy_for`), because serving
//! is strictly observation-side.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared between the simulation thread and the listener thread.
struct Shared {
    /// The latest published exposition body.
    body: Mutex<String>,
    /// Completed `GET /metrics` responses since bind.
    scrapes: AtomicU64,
    /// Set by `Drop` to stop the accept loop.
    stop: AtomicBool,
}

/// A tiny single-purpose HTTP/1.1 server bound to `127.0.0.1`.
///
/// Routes: `GET /metrics` returns the last published exposition with
/// `Content-Type: text/plain; version=0.0.4`; everything else is 404.
/// One request per connection (`Connection: close`), which is all a
/// Prometheus-style scraper needs.
pub struct MetricsServer {
    shared: Arc<Shared>,
    port: u16,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (0 = ephemeral) and starts the listener
    /// thread. The served body is empty until [`MetricsServer::publish`].
    pub fn bind(port: u16) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        let shared = Arc::new(Shared {
            body: Mutex::new(String::new()),
            scrapes: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("odlb-metrics-serve".to_string())
            .spawn(move || accept_loop(listener, thread_shared))?;
        Ok(MetricsServer {
            shared,
            port,
            thread: Some(thread),
        })
    }

    /// The bound port (useful with `bind(0)`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Replaces the served exposition body.
    pub fn publish(&self, body: String) {
        if let Ok(mut b) = self.shared.body.lock() {
            *b = body;
        }
    }

    /// Completed `GET /metrics` responses since bind.
    pub fn scrape_count(&self) -> u64 {
        self.shared.scrapes.load(Ordering::SeqCst)
    }

    /// Blocks until at least `n` scrapes have completed or `timeout`
    /// elapses; returns whether the target was reached. Lets a run hold
    /// its exposition live just long enough for an external scraper
    /// (the CI smoke test) without sleeping a fixed worst-case delay.
    pub fn await_scrapes(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.scrape_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => handle_connection(stream, &shared),
            Err(_) => continue,
        }
    }
}

/// Reads one request (bounded, with a read timeout so a stalled client
/// cannot wedge the listener) and answers it.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
                    break;
                }
            }
            // Timeout or reset: answer whatever arrived.
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&req);
    let request_line = request.lines().next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let path = path.split('?').next().unwrap_or_default();

    if method == "GET" && path == "/metrics" {
        let body = shared.body.lock().map(|b| b.clone()).unwrap_or_default();
        let ok = write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &body,
        );
        if ok {
            shared.scrapes.fetch_add(1, Ordering::SeqCst);
        }
    } else {
        write_response(&mut stream, "404 Not Found", "text/plain", "not found\n");
    }
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> bool {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes()).is_ok()
        && stream.write_all(body.as_bytes()).is_ok()
        && stream.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(port: u16, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("split response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_published_body_on_metrics() {
        let server = MetricsServer::bind(0).expect("bind ephemeral");
        assert_ne!(server.port(), 0);
        server.publish("# HELP x y\n# TYPE x counter\nx 1\n".to_string());
        let (head, body) = request(server.port(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert_eq!(body, "# HELP x y\n# TYPE x counter\nx 1\n");
        assert_eq!(server.scrape_count(), 1);
    }

    #[test]
    fn publish_replaces_the_body() {
        let server = MetricsServer::bind(0).expect("bind");
        server.publish("first\n".to_string());
        server.publish("second\n".to_string());
        let (_, body) = request(server.port(), "/metrics");
        assert_eq!(body, "second\n");
    }

    #[test]
    fn unknown_paths_are_404_and_not_counted() {
        let server = MetricsServer::bind(0).expect("bind");
        let (head, _) = request(server.port(), "/other");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_eq!(server.scrape_count(), 0);
    }

    #[test]
    fn await_scrapes_times_out_and_succeeds() {
        let server = MetricsServer::bind(0).expect("bind");
        assert!(!server.await_scrapes(1, Duration::from_millis(50)));
        server.publish(String::new());
        let _ = request(server.port(), "/metrics");
        assert!(server.await_scrapes(1, Duration::from_secs(5)));
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let server = MetricsServer::bind(0).expect("bind");
        let port = server.port();
        drop(server);
        // The port is released: a fresh bind to it succeeds (or the
        // connect below fails) — either way nothing is listening.
        let rebound = TcpListener::bind(("127.0.0.1", port));
        assert!(rebound.is_ok(), "listener thread must release the port");
    }
}
