//! The metrics registry: named, labelled counters, gauges and histograms
//! with interval snapshotting.
//!
//! Ordering is deterministic everywhere (`BTreeMap` over names and
//! rendered label sets), so two same-seed runs export byte-identical
//! Prometheus and CSV artifacts. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap `Rc` clones emission sites cache, so the hot
//! path never repeats the name lookup.

use crate::histogram::LogLinearHistogram;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// What a metric family measures (drives the exposition `# TYPE` line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log-linear latency distribution.
    Histogram,
}

impl FamilyKind {
    /// The exposition-format type keyword.
    pub fn label(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// A counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Sets the cumulative total from a source that already accumulates
    /// (per-domain I/O counters, pool counters). Must be monotone.
    pub fn set_total(&self, total: u64) {
        debug_assert!(total >= self.0.get(), "counter must not decrease");
        self.0.set(total.max(self.0.get()));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A histogram handle. Cloning shares the underlying histogram.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Rc<RefCell<LogLinearHistogram>>);

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Reads through to the underlying histogram.
    pub fn with<R>(&self, f: impl FnOnce(&LogLinearHistogram) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Replaces the underlying histogram wholesale. Used by series that
    /// are *derived* rather than recorded — the cluster driver rebuilds
    /// its merged per-class histogram from the per-replica ones at every
    /// interval close, which keeps the series cumulative (and therefore
    /// monotone) because its inputs are.
    pub fn replace(&self, h: LogLinearHistogram) {
        *self.0.borrow_mut() = h;
    }
}

/// One labelled series inside a family.
struct Series {
    /// Rendered `key="value"` pairs, sorted by key (the BTreeMap key).
    labels: String,
    value: SeriesValue,
}

enum SeriesValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One metric family: a help string, a kind, and labelled series.
struct Family {
    help: String,
    kind: FamilyKind,
    series: BTreeMap<String, Series>,
}

/// A point-in-time export row (also the CSV row shape).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleRow {
    /// Sample name (family name plus any histogram suffix, e.g. `_p95`).
    pub name: String,
    /// Rendered label pairs (`key="value",key="value"`), possibly empty.
    pub labels: String,
    /// The value.
    pub value: f64,
}

/// One interval snapshot: every series' value at an interval boundary.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Snapshot time in simulation microseconds.
    pub at_us: u64,
    /// 0-based interval sequence number — the same value the cluster
    /// driver stamps on its `interval_closed` trace event, so every CSV
    /// row-group joins to the decision trace of the same interval.
    pub seq: u64,
    /// All rows, deterministically ordered.
    pub rows: Vec<SampleRow>,
}

/// The registry: every metric family plus the interval snapshot log.
#[derive(Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
    snapshots: Vec<Snapshot>,
}

/// Characters that would corrupt an exposition or alias two label sets
/// in the CSV rendering: quotes and backslashes break the Prometheus
/// quoting, newlines break line-oriented formats, and `,`/`;`/`=` are
/// the separators of both rendered forms.
const FORBIDDEN_LABEL_CHARS: [char; 6] = ['"', '\\', '\n', ',', ';', '='];

/// Renders a label set canonically: sorted by key, `key="value"` joined
/// with commas.
///
/// Validation happens here, once, at series registration: keys must be
/// `[A-Za-z0-9_]+` and values must not contain any
/// [`FORBIDDEN_LABEL_CHARS`]. Registering an illegal label panics
/// immediately instead of silently rewriting the value at export time —
/// a rewrite could alias two distinct label sets into one exported key
/// (e.g. `a,b` and `a;b` both becoming `a;b` in the CSV).
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    pairs
        .iter()
        .map(|(k, v)| {
            assert!(
                !k.is_empty() && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "metric label key {k:?} must match [A-Za-z0-9_]+"
            );
            assert!(
                !v.contains(FORBIDDEN_LABEL_CHARS),
                "metric label value {v:?} contains a forbidden character \
                 (one of \" \\ newline , ; =)"
            );
            format!("{k}=\"{v}\"")
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: FamilyKind) -> &mut Family {
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert_eq!(
            fam.kind, kind,
            "metric family '{name}' registered with two kinds"
        );
        fam
    }

    /// Gets or creates a counter series.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let key = render_labels(labels);
        let fam = self.family(name, help, FamilyKind::Counter);
        let series = fam.series.entry(key.clone()).or_insert_with(|| Series {
            labels: key,
            value: SeriesValue::Counter(Counter::default()),
        });
        match &series.value {
            SeriesValue::Counter(c) => c.clone(),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = render_labels(labels);
        let fam = self.family(name, help, FamilyKind::Gauge);
        let series = fam.series.entry(key.clone()).or_insert_with(|| Series {
            labels: key,
            value: SeriesValue::Gauge(Gauge::default()),
        });
        match &series.value {
            SeriesValue::Gauge(g) => g.clone(),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Gets or creates a histogram series.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = render_labels(labels);
        let fam = self.family(name, help, FamilyKind::Histogram);
        let series = fam.series.entry(key.clone()).or_insert_with(|| Series {
            labels: key,
            value: SeriesValue::Histogram(Histogram::default()),
        });
        match &series.value {
            SeriesValue::Histogram(h) => h.clone(),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Number of registered series across all families.
    pub fn series_count(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// Current values of every series as deterministic export rows.
    /// Histograms expand into `_count`, `_sum`, `_saturated` (0/1 sum
    /// overflow flag), `_p50`, `_p95`, `_p99` and `_max` rows (the
    /// summary columns a time series needs; the full bucket layout only
    /// appears in the Prometheus exposition).
    pub fn sample_rows(&self) -> Vec<SampleRow> {
        let mut rows = Vec::new();
        for (name, fam) in &self.families {
            for series in fam.series.values() {
                let labels = series.labels.clone();
                match &series.value {
                    SeriesValue::Counter(c) => rows.push(SampleRow {
                        name: name.clone(),
                        labels,
                        value: c.get() as f64,
                    }),
                    SeriesValue::Gauge(g) => rows.push(SampleRow {
                        name: name.clone(),
                        labels,
                        value: g.get(),
                    }),
                    SeriesValue::Histogram(h) => h.with(|h| {
                        let q = |q: f64| h.quantile(q).unwrap_or(0) as f64;
                        for (suffix, value) in [
                            ("_count", h.count() as f64),
                            ("_sum", h.sum() as f64),
                            ("_saturated", h.saturated() as u64 as f64),
                            ("_p50", q(0.50)),
                            ("_p95", q(0.95)),
                            ("_p99", q(0.99)),
                            ("_max", h.max().unwrap_or(0) as f64),
                        ] {
                            rows.push(SampleRow {
                                name: format!("{name}{suffix}"),
                                labels: labels.clone(),
                                value,
                            });
                        }
                    }),
                }
            }
        }
        rows
    }

    /// Records an interval snapshot of every series at `at_us`, stamped
    /// with the interval sequence number `seq` (the driver calls this
    /// once per closed measurement interval with the same `seq` it puts
    /// in the `interval_closed` trace event, so the CSV time series
    /// joins to the controller's decision points).
    pub fn snapshot(&mut self, at_us: u64, seq: u64) {
        let rows = self.sample_rows();
        self.snapshots.push(Snapshot { at_us, seq, rows });
    }

    /// The recorded snapshots.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Iterates families for the exporters: `(name, help, kind, series)`,
    /// series as `(labels, value)` in deterministic order.
    pub(crate) fn for_each_family(
        &self,
        mut f: impl FnMut(&str, &str, FamilyKind, &mut dyn Iterator<Item = (&str, FamilySample)>),
    ) {
        for (name, fam) in &self.families {
            let mut iter = fam.series.values().map(|s| {
                let sample = match &s.value {
                    SeriesValue::Counter(c) => FamilySample::Counter(c.get()),
                    SeriesValue::Gauge(g) => FamilySample::Gauge(g.get()),
                    SeriesValue::Histogram(h) => FamilySample::Histogram(h.clone()),
                };
                (s.labels.as_str(), sample)
            });
            f(name, &fam.help, fam.kind, &mut iter);
        }
    }
}

/// A family sample handed to the exporters.
pub(crate) enum FamilySample {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("odlb_queries_total", "Queries.", &[("app", "app0")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name + labels returns the same series.
        let c2 = reg.counter("odlb_queries_total", "Queries.", &[("app", "app0")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("odlb_depth", "Depth.", &[]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(reg.series_count(), 2);
    }

    #[test]
    fn labels_are_canonically_ordered() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("c", "h", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("c", "h", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "label order must not split the series");
        assert_eq!(reg.series_count(), 1);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_conflicts_are_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }

    #[test]
    fn set_total_is_monotone() {
        let c = Counter::default();
        c.set_total(10);
        c.set_total(15);
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn histogram_rows_expand_summary_columns() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", "Latency.", &[("class", "app0#8")]);
        for v in 1..=100 {
            h.record(v);
        }
        let rows = reg.sample_rows();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "lat_us_count",
                "lat_us_sum",
                "lat_us_saturated",
                "lat_us_p50",
                "lat_us_p95",
                "lat_us_p99",
                "lat_us_max"
            ]
        );
        assert_eq!(rows[0].value, 100.0);
        assert_eq!(rows[2].value, 0.0, "unsaturated flag renders 0");
        assert_eq!(rows[6].value, 100.0);
    }

    #[test]
    fn snapshots_accumulate_in_order() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("n", "h", &[]);
        c.inc();
        reg.snapshot(10_000_000, 0);
        c.inc();
        reg.snapshot(20_000_000, 1);
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].rows[0].value, 1.0);
        assert_eq!(snaps[1].rows[0].value, 2.0);
        assert!(snaps[0].at_us < snaps[1].at_us);
        assert_eq!((snaps[0].seq, snaps[1].seq), (0, 1));
    }

    #[test]
    #[should_panic(expected = "forbidden character")]
    fn label_values_with_separators_are_rejected_at_registration() {
        let mut reg = MetricsRegistry::new();
        // Would previously be silently rewritten to `a;b` at CSV export
        // time, aliasing with a genuine `a;b` label value.
        reg.counter("c", "h", &[("app", "a,b")]);
    }

    #[test]
    #[should_panic(expected = "forbidden character")]
    fn label_values_with_quotes_are_rejected_at_registration() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g", "h", &[("app", "a\"b")]);
    }

    #[test]
    #[should_panic(expected = "[A-Za-z0-9_]+")]
    fn label_keys_are_validated() {
        let mut reg = MetricsRegistry::new();
        reg.counter("c", "h", &[("bad key", "v")]);
    }

    #[test]
    fn histogram_replace_swaps_the_shared_cell() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", "Latency.", &[]);
        h.record(10);
        let mut merged = crate::LogLinearHistogram::default();
        merged.record(10);
        merged.record(20);
        h.replace(merged);
        assert_eq!(h.with(|h| h.count()), 2);
        // The registry sees the replacement through the shared handle.
        assert_eq!(reg.sample_rows()[0].value, 2.0);
    }
}
