//! Runtime telemetry for the ODLB workspace: a metrics registry of
//! counters, gauges and mergeable log-linear latency histograms, two
//! exposition formats (Prometheus text, CSV time series), and a span
//! profiler quantifying controller overhead.
//!
//! The paper's controller steers on per-class, per-replica runtime
//! quantities — latencies, buffer-pool hit ratios, queue depths, disk
//! I/O — and claims its fine-grained instrumentation is cheap. This
//! crate makes both ends checkable: every emission site records into a
//! [`Telemetry`] handle that is a no-op when unattached (same discipline
//! as `Tracer::is_active` in `odlb-trace`), and the [`SpanProfiler`]
//! times each controller phase so the overhead claim is measured, not
//! asserted.
//!
//! Determinism: metric values derive only from simulation state (counts,
//! simulated microseconds), never wall-clock time, and every export
//! iterates `BTreeMap`s — so two same-seed runs produce byte-identical
//! `.prom` and `.csv` artifacts. The [`SpanProfiler`] records nested
//! span stacks in two dimensions: wall-clock timings stay on stderr
//! (flat report + wall folded dump), while the sim-unit folded dump
//! derives only from simulation state and is itself a byte-diffable
//! artifact (see [`validate_folded`]).

mod export;
mod histogram;
mod profiler;
mod registry;
mod serve;

pub use export::{
    render_csv, render_prometheus, validate_csv, validate_folded, validate_prometheus,
    ExpositionStats, FoldedStats,
};
pub use histogram::{LogLinearHistogram, DEFAULT_GROUPING_POWER};
pub use profiler::{
    enter_span, profile_span, span_units, PhaseStats, SharedSpanProfiler, SpanGuard, SpanProfiler,
    SpanStats,
};
pub use registry::{Counter, FamilyKind, Gauge, Histogram, MetricsRegistry, SampleRow, Snapshot};
pub use serve::MetricsServer;

use std::cell::RefCell;
use std::rc::Rc;

/// A cheaply clonable telemetry handle emission sites hold.
///
/// Inactive by default: every emission site guards its work with
/// [`Telemetry::is_active`], so an unattached handle costs one branch on
/// the hot path. Clones share the underlying registry (single-threaded
/// `Rc<RefCell>`, like `Tracer`).
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Option<Rc<RefCell<MetricsRegistry>>>,
    /// Live scrape endpoint: when set, every interval snapshot also
    /// publishes a freshly rendered exposition to the server's read-only
    /// copy. Strictly observation-side — the server never reads the
    /// registry and nothing flows back.
    server: Option<Rc<MetricsServer>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("active", &self.is_active())
            .finish()
    }
}

impl Telemetry {
    /// An inactive handle: all emission is skipped.
    pub fn inactive() -> Self {
        Telemetry::default()
    }

    /// A handle attached to a fresh registry.
    pub fn attached() -> Self {
        Telemetry {
            registry: Some(Rc::new(RefCell::new(MetricsRegistry::new()))),
            server: None,
        }
    }

    /// Attaches a live scrape endpoint: every interval snapshot publishes
    /// the current exposition to `server`, and the current state (possibly
    /// empty) is published immediately so a scrape before the first
    /// interval still gets a valid (if empty) exposition.
    pub fn with_server(mut self, server: Rc<MetricsServer>) -> Self {
        server.publish(self.render_prometheus().unwrap_or_default());
        self.server = Some(server);
        self
    }

    /// Whether a registry is attached. Emission sites check this before
    /// doing any labelling or lookup work.
    pub fn is_active(&self) -> bool {
        self.registry.is_some()
    }

    /// Gets or creates a counter series. `None` when inactive.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        self.registry
            .as_ref()
            .map(|r| r.borrow_mut().counter(name, help, labels))
    }

    /// Gets or creates a gauge series. `None` when inactive.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Option<Gauge> {
        self.registry
            .as_ref()
            .map(|r| r.borrow_mut().gauge(name, help, labels))
    }

    /// Gets or creates a histogram series. `None` when inactive.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        self.registry
            .as_ref()
            .map(|r| r.borrow_mut().histogram(name, help, labels))
    }

    /// Records an interval snapshot at `at_us` simulation microseconds,
    /// stamped with the interval sequence number `seq` (the same value
    /// the driver puts in its `interval_closed` trace event, so CSV rows
    /// join to decision traces). Publishes the refreshed exposition to
    /// the live endpoint, if one is attached. No-op when inactive.
    pub fn snapshot(&self, at_us: u64, seq: u64) {
        if let Some(r) = &self.registry {
            r.borrow_mut().snapshot(at_us, seq);
            if let Some(server) = &self.server {
                server.publish(render_prometheus(&r.borrow()));
            }
        }
    }

    /// Renders the Prometheus text exposition. `None` when inactive.
    pub fn render_prometheus(&self) -> Option<String> {
        self.registry
            .as_ref()
            .map(|r| render_prometheus(&r.borrow()))
    }

    /// Renders the CSV time series. `None` when inactive.
    pub fn render_csv(&self) -> Option<String> {
        self.registry.as_ref().map(|r| render_csv(&r.borrow()))
    }

    /// Reads through to the registry. `None` when inactive.
    pub fn with_registry<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.registry.as_ref().map(|r| f(&r.borrow()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_handle_skips_everything() {
        let t = Telemetry::inactive();
        assert!(!t.is_active());
        assert!(t.counter("c", "h", &[]).is_none());
        assert!(t.gauge("g", "h", &[]).is_none());
        assert!(t.histogram("h", "h", &[]).is_none());
        assert!(t.render_prometheus().is_none());
        assert!(t.render_csv().is_none());
        t.snapshot(0, 0); // must not panic
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::attached();
        let clone = t.clone();
        let c = clone.counter("odlb_events_total", "Events.", &[]).unwrap();
        c.add(3);
        let series = t.with_registry(|r| r.series_count()).unwrap();
        assert_eq!(series, 1);
        let prom = t.render_prometheus().unwrap();
        assert!(prom.contains("odlb_events_total 3"));
    }

    #[test]
    fn attached_exports_validate() {
        let t = Telemetry::attached();
        let h = t
            .histogram("odlb_lat_us", "Latency.", &[("class", "app0#8")])
            .unwrap();
        for v in [100u64, 200, 300_000] {
            h.record(v);
        }
        t.snapshot(10_000_000, 0);
        let prom = t.render_prometheus().unwrap();
        validate_prometheus(&prom).expect("valid exposition");
        let csv = t.render_csv().unwrap();
        validate_csv(&csv).expect("valid csv");
    }

    #[test]
    fn snapshots_publish_to_an_attached_server() {
        let server = Rc::new(MetricsServer::bind(0).expect("bind"));
        let t = Telemetry::attached().with_server(server.clone());
        let c = t.counter("odlb_events_total", "Events.", &[]).unwrap();
        c.add(7);
        t.snapshot(10_000_000, 0);
        // The published copy is exactly the rendered exposition.
        use std::io::{Read as _, Write as _};
        let mut stream =
            std::net::TcpStream::connect(("127.0.0.1", server.port())).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let body = response.split_once("\r\n\r\n").expect("body").1;
        assert_eq!(body, t.render_prometheus().unwrap());
        assert!(body.contains("odlb_events_total 7"));
    }
}
