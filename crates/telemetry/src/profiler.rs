//! A nested span profiler: wall-clock and deterministic sim-unit time
//! per *stack path* (`experiments;fig3;controller;mrc_update`), rendered
//! as an `inferno`-compatible folded-stacks dump and as the flat per-
//! phase overhead report that quantifies the paper's claim that
//! fine-grained instrumentation and control add negligible overhead.
//!
//! Two dimensions are recorded per path:
//!
//! * **wall-clock** (`Instant`-based): real time, *never* part of the
//!   deterministic `.prom`/`.csv` artifacts — the experiments binary
//!   prints the flat report and the wall folded dump to stderr, keeping
//!   stdout byte-identical across runs and job counts.
//! * **sim units**: one unit per span entry plus any explicitly
//!   attributed deterministic quantity ([`SpanProfiler::add_units`],
//!   e.g. simulated service microseconds). Values derive only from
//!   simulation state, so the sim folded dump is byte-identical across
//!   runs and job counts and can be diffed in CI like any artifact.
//!
//! Spans are pushed/popped with the RAII [`SpanGuard`] (see
//! [`enter_span`]); self-time is the span's elapsed time minus the time
//! spent in child spans, so a phase re-entered under itself never
//! double-counts in the flat report.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Accumulated flat timings for one phase name (derived from the span
/// paths; see [`SpanProfiler::phases`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Number of timed invocations.
    pub calls: u64,
    /// Total time across invocations (self-time based: nested
    /// invocations of the same phase are counted once).
    pub total: Duration,
    /// Longest single invocation.
    pub max: Duration,
}

/// Accumulated statistics for one unique stack path.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanStats {
    /// Times this exact path was entered (or bulk-added).
    pub calls: u64,
    /// Inclusive wall time (children included).
    pub wall_total: Duration,
    /// Exclusive wall time (children subtracted) — the folded value.
    pub wall_self: Duration,
    /// Longest single inclusive invocation.
    pub wall_max: Duration,
    /// Deterministic units: one per entry plus explicitly attributed
    /// quantities ([`SpanProfiler::add_units`]). Exclusive by
    /// construction — units land on the innermost open path.
    pub sim_units: u64,
}

/// One open span on the stack.
#[derive(Clone, Debug)]
struct Frame {
    name: &'static str,
    start: Instant,
    /// Wall time spent in already-closed direct children.
    child_wall: Duration,
    /// Units attributed while this span was innermost.
    sim_units: u64,
}

/// Accumulates wall-clock and sim-unit time per stack path.
#[derive(Clone, Debug, Default)]
pub struct SpanProfiler {
    paths: BTreeMap<Vec<&'static str>, SpanStats>,
    stack: Vec<Frame>,
}

/// A shareable profiler handle (single-threaded, like the tracer).
pub type SharedSpanProfiler = Rc<RefCell<SpanProfiler>>;

impl SpanProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// Creates a shareable handle.
    pub fn shared() -> SharedSpanProfiler {
        Rc::new(RefCell::new(SpanProfiler::new()))
    }

    /// Opens a span named `phase` nested under the currently open spans.
    /// Prefer the RAII [`enter_span`] guard, which cannot unbalance the
    /// stack.
    pub fn enter(&mut self, phase: &'static str) {
        self.stack.push(Frame {
            name: phase,
            start: Instant::now(),
            child_wall: Duration::ZERO,
            sim_units: 0,
        });
    }

    /// Closes the innermost open span, recording its stats under the
    /// full stack path and charging its elapsed time to the parent's
    /// child-time.
    pub fn exit(&mut self) {
        let frame = self.stack.pop().expect("exit() without a matching enter()");
        let elapsed = frame.start.elapsed();
        let mut path: Vec<&'static str> = self.stack.iter().map(|f| f.name).collect();
        path.push(frame.name);
        let stats = self.paths.entry(path).or_default();
        stats.calls += 1;
        stats.wall_total += elapsed;
        stats.wall_self += elapsed.saturating_sub(frame.child_wall);
        stats.wall_max = stats.wall_max.max(elapsed);
        stats.sim_units += 1 + frame.sim_units;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_wall += elapsed;
        }
    }

    /// Attributes `units` deterministic sim units (e.g. simulated
    /// service microseconds) to the innermost open span. No-op outside
    /// any span.
    pub fn add_units(&mut self, units: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.sim_units += units;
        }
    }

    /// Number of currently open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Adds one invocation of `phase` that took `elapsed`, as a
    /// root-level (depth-1) path.
    pub fn add(&mut self, phase: &'static str, elapsed: Duration) {
        self.add_n(phase, 1, elapsed, elapsed);
    }

    /// Adds `calls` invocations of `phase` in bulk as a root-level path:
    /// `total` time across them, `max_single` for the longest one. Used
    /// when replaying pre-aggregated timings; each call also counts one
    /// sim unit.
    pub fn add_n(
        &mut self,
        phase: &'static str,
        calls: u64,
        total: Duration,
        max_single: Duration,
    ) {
        let stats = self.paths.entry(vec![phase]).or_default();
        stats.calls += calls;
        stats.wall_total += total;
        stats.wall_self += total;
        stats.wall_max = stats.wall_max.max(max_single);
        stats.sim_units += calls;
    }

    /// Folds another profiler's paths into this one (summing calls,
    /// totals and sim units, keeping the larger max). The parallel
    /// experiment runner gives every figure its own profiler and merges
    /// them — by stack path, so a multi-worker merge renders the same
    /// folded dump as a single-worker run.
    pub fn merge(&mut self, other: &SpanProfiler) {
        for (path, s) in &other.paths {
            let stats = self.paths.entry(path.clone()).or_default();
            stats.calls += s.calls;
            stats.wall_total += s.wall_total;
            stats.wall_self += s.wall_self;
            stats.wall_max = stats.wall_max.max(s.wall_max);
            stats.sim_units += s.sim_units;
        }
    }

    /// Times `f` under a span named `phase` (nested under any open
    /// spans).
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        self.enter(phase);
        let out = f();
        self.exit();
        out
    }

    /// Recorded stack paths and their stats, in path order.
    pub fn span_paths(&self) -> impl Iterator<Item = (&[&'static str], &SpanStats)> {
        self.paths.iter().map(|(p, s)| (p.as_slice(), s))
    }

    /// Flat per-phase view, derived from the paths in name order. A
    /// phase's `total` is the summed *self*-time of every path the name
    /// appears on — so re-entering a phase under itself counts once —
    /// while `calls`/`max` come from the paths ending in the name.
    pub fn phases(&self) -> Vec<(&'static str, PhaseStats)> {
        let mut flat: BTreeMap<&'static str, PhaseStats> = BTreeMap::new();
        for (path, stats) in &self.paths {
            let leaf = *path.last().expect("paths are non-empty");
            {
                let entry = flat.entry(leaf).or_default();
                entry.calls += stats.calls;
                entry.max = entry.max.max(stats.wall_max);
            }
            let mut seen: Vec<&'static str> = Vec::with_capacity(path.len());
            for &name in path {
                if !seen.contains(&name) {
                    seen.push(name);
                    flat.entry(name).or_default().total += stats.wall_self;
                }
            }
        }
        flat.into_iter().collect()
    }

    /// Total profiled wall time: the sum of self-times over all paths
    /// (equivalently, the time spent under root spans — nesting never
    /// double-counts).
    pub fn total(&self) -> Duration {
        self.paths.values().map(|s| s.wall_self).sum()
    }

    /// The wall-clock folded-stacks dump: one `a;b;c <self µs>` line per
    /// unique stack, in path order. Real timings — stderr/opt-in only.
    pub fn folded_wall(&self) -> String {
        self.render_folded(|s| s.wall_self.as_micros() as u64)
    }

    /// The deterministic folded-stacks dump: one `a;b;c <sim units>`
    /// line per unique stack, in path order. Values derive only from
    /// simulation state, so the dump is byte-identical across runs and
    /// job counts.
    pub fn folded_sim(&self) -> String {
        self.render_folded(|s| s.sim_units)
    }

    fn render_folded(&self, value: impl Fn(&SpanStats) -> u64) -> String {
        let mut out = String::new();
        for (path, stats) in &self.paths {
            let _ = writeln!(out, "{} {}", path.join(";"), value(stats));
        }
        out
    }

    /// Renders the overhead report: one line per phase plus the share of
    /// `run_wall` (the whole run's wall time) spent inside spans.
    pub fn report(&self, run_wall: Duration) -> String {
        let mut out = String::from("controller overhead report\n");
        let _ = writeln!(
            out,
            "  {:<18} {:>8} {:>12} {:>12} {:>12}",
            "phase", "calls", "total", "mean", "max"
        );
        for (name, stats) in self.phases() {
            // `Duration / u32` is exact, but `calls` is a u64: a plain
            // `as u32` cast truncates, and calls >= 2^32 would truncate
            // to a divisor of 0 and panic. Past u32::MAX calls the mean
            // is computed in f64 instead (sub-nanosecond error at that
            // scale is far below the report's display precision).
            let mean = if stats.calls == 0 {
                Duration::ZERO
            } else {
                match u32::try_from(stats.calls) {
                    Ok(calls) => stats.total / calls,
                    Err(_) => {
                        Duration::from_secs_f64(stats.total.as_secs_f64() / stats.calls as f64)
                    }
                }
            };
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>12} {:>12} {:>12}",
                name,
                stats.calls,
                format_duration(stats.total),
                format_duration(mean),
                format_duration(stats.max)
            );
        }
        let total = self.total();
        let share = if run_wall.is_zero() {
            0.0
        } else {
            100.0 * total.as_secs_f64() / run_wall.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "  profiled total {} of {} run wall time ({share:.2}%)",
            format_duration(total),
            format_duration(run_wall)
        );
        out
    }
}

/// An RAII span: created by [`enter_span`], closes its span on drop.
/// Guards created in one scope drop in reverse creation order, so the
/// stack always unwinds in push order.
#[derive(Debug)]
pub struct SpanGuard {
    profiler: SharedSpanProfiler,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.profiler.borrow_mut().exit();
    }
}

/// Opens a span named `phase` on an optional shared profiler, returning
/// a guard that closes it on drop. `None` profiler ⇒ `None` guard ⇒ no
/// work at all. The borrow is released before the guard is returned, so
/// spans nest freely.
pub fn enter_span(profiler: &Option<SharedSpanProfiler>, phase: &'static str) -> Option<SpanGuard> {
    profiler.as_ref().map(|p| {
        p.borrow_mut().enter(phase);
        SpanGuard {
            profiler: Rc::clone(p),
        }
    })
}

/// Attributes `units` deterministic sim units to the innermost open span
/// of an optional shared profiler. No-op when `None` or outside a span.
pub fn span_units(profiler: &Option<SharedSpanProfiler>, units: u64) {
    if let Some(p) = profiler {
        p.borrow_mut().add_units(units);
    }
}

/// Times `f` under a span named `phase` on an optional shared profiler.
/// The profiler is only borrowed at entry and exit, never while `f`
/// runs, so timed sections may nest freely.
pub fn profile_span<R>(
    profiler: &Option<SharedSpanProfiler>,
    phase: &'static str,
    f: impl FnOnce() -> R,
) -> R {
    let _guard = enter_span(profiler, phase);
    f()
}

/// Human-readable duration with a stable width-friendly unit.
fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_phase() {
        let mut p = SpanProfiler::new();
        p.add("collection", Duration::from_micros(10));
        p.add("collection", Duration::from_micros(30));
        p.add("outlier_detection", Duration::from_micros(5));
        let stats: BTreeMap<&str, PhaseStats> = p.phases().into_iter().collect();
        assert_eq!(stats["collection"].calls, 2);
        assert_eq!(stats["collection"].total, Duration::from_micros(40));
        assert_eq!(stats["collection"].max, Duration::from_micros(30));
        assert_eq!(stats["outlier_detection"].calls, 1);
        assert_eq!(p.total(), Duration::from_micros(45));
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut p = SpanProfiler::new();
        let out = p.time("mrc_update", || 7);
        assert_eq!(out, 7);
        assert_eq!(p.phases().len(), 1);
    }

    #[test]
    fn profile_span_nests_under_the_open_span() {
        let shared = SpanProfiler::shared();
        let opt = Some(shared.clone());
        let out = profile_span(&opt, "outer", || profile_span(&opt, "inner", || 3));
        assert_eq!(out, 3);
        let p = shared.borrow();
        let paths: Vec<Vec<&str>> = p.span_paths().map(|(path, _)| path.to_vec()).collect();
        assert_eq!(paths, vec![vec!["outer"], vec!["outer", "inner"]]);
        assert_eq!(p.depth(), 0, "both guards dropped");
    }

    #[test]
    fn profile_span_without_profiler_is_transparent() {
        assert_eq!(profile_span(&None, "x", || 11), 11);
    }

    #[test]
    fn self_time_excludes_children_in_flat_report() {
        // Regression (reentrancy): a phase nested under itself used to
        // double-count its elapsed time in the flat report. With
        // self-time accounting the phase total never exceeds the
        // outermost invocation's elapsed time.
        let shared = SpanProfiler::shared();
        let opt = Some(shared.clone());
        let start = Instant::now();
        profile_span(&opt, "collection", || {
            profile_span(&opt, "collection", || std::hint::black_box(fib(24)))
        });
        let outer_elapsed = start.elapsed();
        let p = shared.borrow();
        let stats: BTreeMap<&str, PhaseStats> = p.phases().into_iter().collect();
        assert_eq!(stats["collection"].calls, 2);
        assert!(
            stats["collection"].total <= outer_elapsed,
            "flat total {:?} must not exceed the outer elapsed {:?}",
            stats["collection"].total,
            outer_elapsed
        );
        // The same invariant in path form: self-times partition the
        // outer span's inclusive time.
        let paths: BTreeMap<Vec<&str>, SpanStats> = p
            .span_paths()
            .map(|(path, s)| (path.to_vec(), *s))
            .collect();
        let outer = paths[&vec!["collection"]];
        let inner = paths[&vec!["collection", "collection"]];
        assert_eq!(outer.wall_self + inner.wall_total, outer.wall_total);
    }

    #[test]
    fn add_units_lands_on_the_innermost_span() {
        let mut p = SpanProfiler::new();
        p.add_units(99); // outside any span: dropped
        p.enter("interval");
        p.add_units(10);
        p.enter("engine_execute");
        p.add_units(5);
        p.exit();
        p.add_units(2);
        p.exit();
        let paths: BTreeMap<Vec<&str>, SpanStats> = p
            .span_paths()
            .map(|(path, s)| (path.to_vec(), *s))
            .collect();
        assert_eq!(paths[&vec!["interval"]].sim_units, 13); // 1 + 10 + 2
        assert_eq!(paths[&vec!["interval", "engine_execute"]].sim_units, 6); // 1 + 5
    }

    #[test]
    fn folded_dumps_are_path_sorted_with_self_values() {
        let shared = SpanProfiler::shared();
        let opt = Some(shared.clone());
        profile_span(&opt, "b", || ());
        profile_span(&opt, "a", || {
            span_units(&opt, 4);
            profile_span(&opt, "z", || span_units(&opt, 7));
        });
        let p = shared.borrow();
        let sim = p.folded_sim();
        assert_eq!(sim, "a 5\na;z 8\nb 1\n");
        let wall = p.folded_wall();
        let lines: Vec<&str> = wall.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("a;z "));
        assert!(lines[2].starts_with("b "));
    }

    #[test]
    fn report_mentions_every_phase_and_share() {
        let mut p = SpanProfiler::new();
        p.add("action_selection", Duration::from_millis(1));
        let report = p.report(Duration::from_millis(100));
        assert!(report.contains("action_selection"));
        assert!(report.contains("1.00%"));
    }

    #[test]
    fn report_survives_call_counts_past_u32_max() {
        // Regression: the mean used `stats.total / stats.calls as u32`;
        // with calls >= 2^32 the cast truncated to 0 and the division
        // panicked. Bulk-inject the count, then one more `add` so the
        // overflowing total flows through the normal single-call path.
        let mut p = SpanProfiler::new();
        p.add_n(
            "collection",
            u64::from(u32::MAX),
            Duration::from_secs(8_590),
            Duration::from_micros(10),
        );
        p.add("collection", Duration::from_micros(2));
        let stats: BTreeMap<&str, PhaseStats> = p.phases().into_iter().collect();
        assert_eq!(stats["collection"].calls, u64::from(u32::MAX) + 1);
        let report = p.report(Duration::from_secs(10_000));
        assert!(report.contains("collection"), "{report}");
        // 8590s over 2^32 calls is a hair over a 2us mean.
        assert!(report.contains("2us"), "{report}");
    }

    #[test]
    fn merge_sums_calls_and_keeps_larger_max() {
        let mut a = SpanProfiler::new();
        a.add("collection", Duration::from_micros(10));
        let mut b = SpanProfiler::new();
        b.add("collection", Duration::from_micros(40));
        b.add("action_selection", Duration::from_micros(5));
        a.merge(&b);
        let stats: BTreeMap<&str, PhaseStats> = a.phases().into_iter().collect();
        assert_eq!(stats["collection"].calls, 2);
        assert_eq!(stats["collection"].total, Duration::from_micros(50));
        assert_eq!(stats["collection"].max, Duration::from_micros(40));
        assert_eq!(stats["action_selection"].calls, 1);
    }

    #[test]
    fn merge_is_by_stack_path() {
        let mut a = SpanProfiler::new();
        a.enter("suite");
        a.time("fig3", || ());
        a.exit();
        let mut b = SpanProfiler::new();
        b.enter("suite");
        b.add_units(3);
        b.time("fig4", || ());
        b.exit();
        a.merge(&b);
        assert_eq!(a.folded_sim(), "suite 5\nsuite;fig3 1\nsuite;fig4 1\n");
    }

    #[test]
    fn report_handles_zero_wall_time() {
        let p = SpanProfiler::new();
        let report = p.report(Duration::ZERO);
        assert!(report.contains("0.00%"));
    }

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
}
