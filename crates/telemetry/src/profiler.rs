//! A span profiler for controller overhead: wall-clock time per named
//! phase (collection, outlier detection, MRC update, action selection),
//! rendered as a per-run report that quantifies the paper's claim that
//! fine-grained instrumentation and control add negligible overhead.
//!
//! Timings are real wall-clock durations and therefore *never* enter the
//! deterministic `.prom`/`.csv` artifacts — the experiments binary
//! prints the report to stderr, keeping stdout byte-identical across
//! runs and job counts.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Accumulated timings for one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Number of timed invocations.
    pub calls: u64,
    /// Total time across invocations.
    pub total: Duration,
    /// Longest single invocation.
    pub max: Duration,
}

/// Accumulates wall-clock time per named phase.
#[derive(Clone, Debug, Default)]
pub struct SpanProfiler {
    phases: BTreeMap<&'static str, PhaseStats>,
}

/// A shareable profiler handle (single-threaded, like the tracer).
pub type SharedSpanProfiler = Rc<RefCell<SpanProfiler>>;

impl SpanProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// Creates a shareable handle.
    pub fn shared() -> SharedSpanProfiler {
        Rc::new(RefCell::new(SpanProfiler::new()))
    }

    /// Adds one invocation of `phase` that took `elapsed`.
    pub fn add(&mut self, phase: &'static str, elapsed: Duration) {
        self.add_n(phase, 1, elapsed, elapsed);
    }

    /// Adds `calls` invocations of `phase` in bulk: `total` time across
    /// them, `max_single` for the longest one. Used when merging
    /// profilers or replaying pre-aggregated timings.
    pub fn add_n(
        &mut self,
        phase: &'static str,
        calls: u64,
        total: Duration,
        max_single: Duration,
    ) {
        let stats = self.phases.entry(phase).or_default();
        stats.calls += calls;
        stats.total += total;
        stats.max = stats.max.max(max_single);
    }

    /// Folds another profiler's phases into this one (summing calls and
    /// totals, keeping the larger max). The parallel experiment runner
    /// gives every figure its own profiler and merges them into the one
    /// suite-level overhead report.
    pub fn merge(&mut self, other: &SpanProfiler) {
        for (phase, stats) in other.phases() {
            self.add_n(phase, stats.calls, stats.total, stats.max);
        }
    }

    /// Times `f` under `phase`.
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Recorded phases in name order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, &PhaseStats)> {
        self.phases.iter().map(|(name, stats)| (*name, stats))
    }

    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.phases.values().map(|s| s.total).sum()
    }

    /// Renders the overhead report: one line per phase plus the share of
    /// `run_wall` (the whole run's wall time) spent inside controller
    /// phases.
    pub fn report(&self, run_wall: Duration) -> String {
        let mut out = String::from("controller overhead report\n");
        let _ = writeln!(
            out,
            "  {:<18} {:>8} {:>12} {:>12} {:>12}",
            "phase", "calls", "total", "mean", "max"
        );
        for (name, stats) in &self.phases {
            // `Duration / u32` is exact, but `calls` is a u64: a plain
            // `as u32` cast truncates, and calls >= 2^32 would truncate
            // to a divisor of 0 and panic. Past u32::MAX calls the mean
            // is computed in f64 instead (sub-nanosecond error at that
            // scale is far below the report's display precision).
            let mean = if stats.calls == 0 {
                Duration::ZERO
            } else {
                match u32::try_from(stats.calls) {
                    Ok(calls) => stats.total / calls,
                    Err(_) => {
                        Duration::from_secs_f64(stats.total.as_secs_f64() / stats.calls as f64)
                    }
                }
            };
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>12} {:>12} {:>12}",
                name,
                stats.calls,
                format_duration(stats.total),
                format_duration(mean),
                format_duration(stats.max)
            );
        }
        let total = self.total();
        let share = if run_wall.is_zero() {
            0.0
        } else {
            100.0 * total.as_secs_f64() / run_wall.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "  controller total {} of {} run wall time ({share:.2}%)",
            format_duration(total),
            format_duration(run_wall)
        );
        out
    }
}

/// Times `f` under `phase` on an optional shared profiler. The borrow is
/// taken only *after* `f` returns, so timed sections may nest freely.
pub fn profile_span<R>(
    profiler: &Option<SharedSpanProfiler>,
    phase: &'static str,
    f: impl FnOnce() -> R,
) -> R {
    match profiler {
        Some(p) => {
            let start = Instant::now();
            let out = f();
            p.borrow_mut().add(phase, start.elapsed());
            out
        }
        None => f(),
    }
}

/// Human-readable duration with a stable width-friendly unit.
fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_phase() {
        let mut p = SpanProfiler::new();
        p.add("collection", Duration::from_micros(10));
        p.add("collection", Duration::from_micros(30));
        p.add("outlier_detection", Duration::from_micros(5));
        let stats: BTreeMap<&str, PhaseStats> = p.phases().map(|(n, s)| (n, *s)).collect();
        assert_eq!(stats["collection"].calls, 2);
        assert_eq!(stats["collection"].total, Duration::from_micros(40));
        assert_eq!(stats["collection"].max, Duration::from_micros(30));
        assert_eq!(stats["outlier_detection"].calls, 1);
        assert_eq!(p.total(), Duration::from_micros(45));
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut p = SpanProfiler::new();
        let out = p.time("mrc_update", || 7);
        assert_eq!(out, 7);
        assert_eq!(p.phases().count(), 1);
    }

    #[test]
    fn profile_span_nests_without_panicking() {
        let shared = SpanProfiler::shared();
        let opt = Some(shared.clone());
        let out = profile_span(&opt, "outer", || profile_span(&opt, "inner", || 3));
        assert_eq!(out, 3);
        assert_eq!(shared.borrow().phases().count(), 2);
    }

    #[test]
    fn profile_span_without_profiler_is_transparent() {
        assert_eq!(profile_span(&None, "x", || 11), 11);
    }

    #[test]
    fn report_mentions_every_phase_and_share() {
        let mut p = SpanProfiler::new();
        p.add("action_selection", Duration::from_millis(1));
        let report = p.report(Duration::from_millis(100));
        assert!(report.contains("action_selection"));
        assert!(report.contains("1.00%"));
    }

    #[test]
    fn report_survives_call_counts_past_u32_max() {
        // Regression: the mean used `stats.total / stats.calls as u32`;
        // with calls >= 2^32 the cast truncated to 0 and the division
        // panicked. Bulk-inject the count, then one more `add` so the
        // overflowing total flows through the normal single-call path.
        let mut p = SpanProfiler::new();
        p.add_n(
            "collection",
            u64::from(u32::MAX),
            Duration::from_secs(8_590),
            Duration::from_micros(10),
        );
        p.add("collection", Duration::from_micros(2));
        let stats: BTreeMap<&str, PhaseStats> = p.phases().map(|(n, s)| (n, *s)).collect();
        assert_eq!(stats["collection"].calls, u64::from(u32::MAX) + 1);
        let report = p.report(Duration::from_secs(10_000));
        assert!(report.contains("collection"), "{report}");
        // 8590s over 2^32 calls is a hair over a 2us mean.
        assert!(report.contains("2us"), "{report}");
    }

    #[test]
    fn merge_sums_calls_and_keeps_larger_max() {
        let mut a = SpanProfiler::new();
        a.add("collection", Duration::from_micros(10));
        let mut b = SpanProfiler::new();
        b.add("collection", Duration::from_micros(40));
        b.add("action_selection", Duration::from_micros(5));
        a.merge(&b);
        let stats: BTreeMap<&str, PhaseStats> = a.phases().map(|(n, s)| (n, *s)).collect();
        assert_eq!(stats["collection"].calls, 2);
        assert_eq!(stats["collection"].total, Duration::from_micros(50));
        assert_eq!(stats["collection"].max, Duration::from_micros(40));
        assert_eq!(stats["action_selection"].calls, 1);
    }

    #[test]
    fn report_handles_zero_wall_time() {
        let p = SpanProfiler::new();
        let report = p.report(Duration::ZERO);
        assert!(report.contains("0.00%"));
    }
}
