//! Arbitrary sweep-matrix generation for property tests.
//!
//! [`arbitrary_matrix`] produces a random-but-tiny matrix in the TOML
//! subset `odlb_bench::sweep::parse_matrix` accepts, together with the
//! cell and workload-key counts the generated axes imply, so property
//! tests over the sweep jobserver (interrupt/resume parity, memoization
//! byte-parity, `--jobs` independence) can assert exact expansion
//! arithmetic without re-deriving it from the text. Cell counts are
//! capped (≤ 8) so every property case stays test-suite cheap; axis
//! values are drawn without duplicates, so `expected_cells` is exact.

use crate::Gen;

/// Workload mixes the generator may reference (mirrors
/// `odlb_bench::sweep::WORKLOADS`; "tpcw"/"rubis" are excluded here only
/// because their generation cost would dominate property-test time).
const WORKLOADS: [&str; 1] = ["zipf"];

/// Controller variants the generator may reference (mirrors
/// `odlb_bench::sweep::CONTROLLERS`).
const CONTROLLERS: [&str; 4] = ["selective", "cpu-only", "coarse", "vm-migration"];

/// MRC-mode spellings the generator may reference.
const MRC: [&str; 4] = ["exact", "bucketed", "sampled:0.1", "sampled:0.5"];

/// A generated matrix plus the arithmetic its axes imply.
#[derive(Clone, Debug)]
pub struct ArbitraryMatrix {
    /// The matrix text, parseable by `odlb_bench::sweep::parse_matrix`.
    pub toml: String,
    /// Cells the matrix expands to (product of distinct axis lengths).
    pub expected_cells: usize,
    /// Distinct workload keys — (seed, workload) pairs here, since the
    /// generator keeps one `clients`/`replicas` value per matrix — i.e.
    /// the number of schedules a memoized sweep generates.
    pub expected_keys: usize,
}

/// Draws `n` distinct elements of `pool` in pool order.
fn distinct_subset<'a>(g: &mut Gen, pool: &[&'a str], n: usize) -> Vec<&'a str> {
    let mut picked: Vec<&str> = pool.to_vec();
    while picked.len() > n {
        let drop = g.usize_in(0, picked.len());
        picked.remove(drop);
    }
    picked
}

/// Generates a tiny matrix: 1–2 seeds × 1 replica count × 1 workload ×
/// 1–2 MRC modes × 1–2 controllers, capped at 8 cells, with 2–3
/// intervals and a warmup strictly below them. Quoting, spacing, comment
/// placement and axis order are themselves randomised so the parser's
/// tolerance is exercised alongside the jobserver.
pub fn arbitrary_matrix(g: &mut Gen) -> ArbitraryMatrix {
    let seeds: Vec<u64> = {
        let n = g.usize_in(1, 3);
        let base = g.u64_in(1, 1_000);
        (0..n as u64).map(|i| base + i * 7).collect()
    };
    let n_controllers = g.usize_in(1, 3);
    let controllers = distinct_subset(g, &CONTROLLERS, n_controllers);
    let n_mrc = g.usize_in(1, 3);
    let mrc = distinct_subset(g, &MRC, n_mrc);
    let workloads = distinct_subset(g, &WORKLOADS, 1);
    let intervals = g.usize_in(2, 4);
    let warmup = g.usize_in(0, intervals);
    let clients = g.usize_in(2, 7);

    let mut lines = vec![
        format!("name = \"prop-{}\"", g.u64_in(0, 1_000_000)),
        format!("intervals = {intervals}"),
        format!("warmup = {warmup}"),
        format!("clients = {clients}"),
        format!(
            "seeds = [{}]",
            seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        format!(
            "workloads = [{}]",
            workloads
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        format!(
            "mrc = [{}]",
            mrc.iter()
                .map(|m| format!("\"{m}\""))
                .collect::<Vec<_>>()
                .join(",")
        ),
        format!(
            "controllers = [{}]",
            controllers
                .iter()
                .map(|c| format!("\"{c}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    ];
    // Key order must not matter; neither must comments or blank lines.
    let swap = g.usize_in(1, lines.len());
    lines.swap(0, swap);
    if g.chance(0.5) {
        lines.insert(g.usize_in(0, lines.len()), "# comment line".to_string());
    }
    if g.chance(0.5) {
        lines.push(String::new());
    }

    let expected_cells = seeds.len() * workloads.len() * mrc.len() * controllers.len();
    let expected_keys = seeds.len() * workloads.len();
    assert!(expected_cells <= 8, "generator must stay test-suite cheap");
    ArbitraryMatrix {
        toml: lines.join("\n"),
        expected_cells,
        expected_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{case_seed, check};

    #[test]
    fn matrices_stay_small_and_arithmetic_is_consistent() {
        check("arbitrary_matrix_bounds", 64, |g: &mut Gen| {
            let m = arbitrary_matrix(g);
            assert!(m.expected_cells >= 1 && m.expected_cells <= 8);
            assert!(m.expected_keys >= 1 && m.expected_keys <= m.expected_cells);
            assert_eq!(m.expected_cells % m.expected_keys, 0);
            assert!(m.toml.contains("controllers"));
        });
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = arbitrary_matrix(&mut Gen::from_seed(case_seed("m", 1)));
        let b = arbitrary_matrix(&mut Gen::from_seed(case_seed("m", 1)));
        assert_eq!(a.toml, b.toml);
        assert_eq!(a.expected_cells, b.expected_cells);
    }
}
