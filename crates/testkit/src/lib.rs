//! # odlb-testkit — deterministic randomized property testing
//!
//! A minimal property-test runner over the workspace's own
//! [`odlb_sim::SimRng`], used by the workspace-level property suites.
//! It exists because the build must work fully offline: the usual
//! `proptest` dependency is not available in this environment, and the
//! invariants it guarded are too valuable to drop.
//!
//! Differences from proptest, deliberately accepted:
//!
//! * **No generic shrinking.** On failure the base runner reports the
//!   property name, the failing case index and the case seed; re-running
//!   is fully deterministic, so the failing case can be replayed (and
//!   minimised by hand or committed as an explicit regression test — see
//!   the `*_regression` tests in `tests/`). Trace-valued properties get
//!   real delta-debug shrinking via [`trace::check_traces`], which
//!   operates on the concrete reference stream.
//! * **Derived, not sampled, seeds.** Every case's generator is seeded
//!   from FNV-1a over the property name plus the case index, so cases are
//!   independent, reproducible and stable across runs and platforms.
//!
//! ```
//! use odlb_testkit::{check, Gen};
//!
//! check("addition_commutes", 256, |g: &mut Gen| {
//!     let a = g.u64_in(0, 1 << 20);
//!     let b = g.u64_in(0, 1 << 20);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

pub mod matrix;
pub mod trace;

use odlb_sim::SimRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-case random value source, wrapping the deterministic simulation
/// PRNG with range-oriented helpers shaped like proptest strategies.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Creates a generator from an explicit seed (for replaying a case).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SimRng::new(seed),
        }
    }

    /// A uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.range(lo, hi)
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.range(lo as u64, hi as u64) as u32
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.f64() * (hi - lo)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// Samples an index from explicit (unnormalised) weights — the
    /// equivalent of a weighted `prop_oneof!`.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        self.rng.weighted(weights)
    }

    /// A vector of `len_range`-many values produced by `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// FNV-1a over the property name: the base seed for its case stream.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed used for case `case` of property `name` (exposed so a
/// failing case can be replayed with [`Gen::from_seed`]).
pub fn case_seed(name: &str, case: u64) -> u64 {
    name_seed(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `property` against `cases` independent random cases.
///
/// Set `ODLB_PROP_CASES` to scale the case count globally (e.g. `=10`
/// for a quick smoke run, `=10000` for a soak).
pub fn check(name: &str, cases: u64, property: impl Fn(&mut Gen)) {
    let cases = std::env::var("ODLB_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    for case in 0..cases {
        let seed = case_seed(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut gen = Gen::from_seed(seed);
            property(&mut gen);
        }));
        if let Err(panic) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with Gen::from_seed({seed:#x}))"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut a = Gen::from_seed(case_seed("p", 3));
        let mut b = Gen::from_seed(case_seed("p", 3));
        for _ in 0..100 {
            assert_eq!(a.u64_in(0, 1_000_000), b.u64_in(0, 1_000_000));
        }
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let mut a = Gen::from_seed(case_seed("alpha", 0));
        let mut b = Gen::from_seed(case_seed("beta", 0));
        let same = (0..64)
            .filter(|_| a.u64_in(0, u64::MAX) == b.u64_in(0, u64::MAX))
            .count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(1);
        for _ in 0..10_000 {
            let x = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = g.usize_in(1, 7);
            assert!((1..7).contains(&n));
        }
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut g = Gen::from_seed(2);
        for _ in 0..1_000 {
            let v = g.vec_of(1, 40, |g| g.u32_in(0, 10));
            assert!((1..40).contains(&v.len()));
        }
    }

    #[test]
    fn failing_case_is_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 5, |_g| panic!("boom"));
        }));
        assert!(result.is_err());
    }
}
