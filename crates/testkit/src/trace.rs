//! Deterministic workload-trace generators and a shrinking trace runner.
//!
//! The MRC property suites all need the same thing: reference streams
//! whose *locality structure* spans the families real database pages
//! exhibit — skewed point lookups (Zipf), streaming scans, cyclic
//! re-scans, and working-set shifts. These generators produce them from
//! the testkit's deterministic [`Gen`], so every case is reproducible
//! from its seed.
//!
//! [`check_traces`] adds the piece the base runner deliberately lacks:
//! **shrinking**. When a trace-valued property fails, the runner
//! delta-debugs the concrete failing trace — removing chunks, then
//! simplifying individual keys toward zero — and reports the smallest
//! trace that still fails alongside the original case seed. Shrinking
//! operates on the concrete `Vec<u64>`, never on the generator, so it
//! cannot be confused by seed-dependence.

use crate::{case_seed, Gen};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Upper bound on distinct keys a generated family may use, keeping the
/// Zipf cumulative table and the exact oracle stacks small.
const MAX_KEYS: u64 = 1 << 13;

/// A family of reference streams with a characteristic MRC shape.
#[derive(Clone, Debug)]
pub enum TraceFamily {
    /// Independent Zipf(`exponent`) draws over `keys` keys: a hot head
    /// and a long tail, the classic OLTP point-lookup mix.
    Zipf {
        /// Distinct keys.
        keys: u64,
        /// Skew exponent (1.0 ≈ classic Zipf's law; larger = hotter head).
        exponent: f64,
    },
    /// A streaming sequential scan: mostly first-touch misses, the
    /// pattern that defeats every cache size (the paper's dropped-index
    /// case).
    SequentialScan {
        /// Distinct keys scanned before the stream wraps.
        keys: u64,
    },
    /// A cyclic loop over a fixed working set: every re-access has stack
    /// distance exactly `keys`, the sharpest possible MRC knee.
    Loop {
        /// Working-set size.
        keys: u64,
    },
    /// A phase-shift mix: Zipf draws whose key range jumps to a disjoint
    /// region every `phase_len` references — the working set *moves*,
    /// as after a plan change or a tenant mix shift.
    PhaseShift {
        /// Keys per phase.
        keys: u64,
        /// References between shifts.
        phase_len: usize,
    },
}

impl TraceFamily {
    /// Draws a random family with generated parameters.
    pub fn arbitrary(g: &mut Gen) -> TraceFamily {
        match g.weighted(&[3.0, 1.0, 1.0, 2.0]) {
            0 => TraceFamily::Zipf {
                keys: g.u64_in(16, MAX_KEYS),
                exponent: g.f64_in(0.6, 1.4),
            },
            1 => TraceFamily::SequentialScan {
                keys: g.u64_in(64, MAX_KEYS),
            },
            2 => TraceFamily::Loop {
                keys: g.u64_in(4, 2048),
            },
            _ => TraceFamily::PhaseShift {
                keys: g.u64_in(16, 1024),
                phase_len: g.usize_in(50, 800),
            },
        }
    }

    /// A short stable name for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            TraceFamily::Zipf { .. } => "zipf",
            TraceFamily::SequentialScan { .. } => "sequential-scan",
            TraceFamily::Loop { .. } => "loop",
            TraceFamily::PhaseShift { .. } => "phase-shift",
        }
    }

    /// Generates a `len`-reference trace of this family from `g`.
    pub fn generate(&self, g: &mut Gen, len: usize) -> Vec<u64> {
        match *self {
            TraceFamily::Zipf { keys, exponent } => {
                let zipf = ZipfSampler::new(keys, exponent);
                (0..len).map(|_| zipf.sample(g)).collect()
            }
            TraceFamily::SequentialScan { keys } => {
                (0..len as u64).map(|i| i % keys.max(1)).collect()
            }
            TraceFamily::Loop { keys } => (0..len as u64).map(|i| i % keys.max(1)).collect(),
            TraceFamily::PhaseShift { keys, phase_len } => {
                let zipf = ZipfSampler::new(keys, 1.0);
                (0..len)
                    .map(|i| {
                        let phase = (i / phase_len.max(1)) as u64;
                        phase * keys + zipf.sample(g)
                    })
                    .collect()
            }
        }
    }
}

/// Zipf(`s`) sampler over `0..keys` via inverse CDF on a precomputed
/// cumulative table (`O(keys)` setup, `O(log keys)` per draw).
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the cumulative table for `keys` keys with exponent `s`.
    pub fn new(keys: u64, s: f64) -> Self {
        let keys = keys.clamp(1, MAX_KEYS);
        let mut cum = Vec::with_capacity(keys as usize);
        let mut total = 0.0;
        for i in 1..=keys {
            total += 1.0 / (i as f64).powf(s);
            cum.push(total);
        }
        ZipfSampler { cum }
    }

    /// Draws one key (0-based rank; rank 0 is the hottest).
    pub fn sample(&self, g: &mut Gen) -> u64 {
        let total = *self.cum.last().expect("at least one key");
        let r = g.f64_in(0.0, total);
        self.cum.partition_point(|&c| c < r) as u64
    }
}

/// True when `property` panics on `trace`.
fn fails(property: &impl Fn(&[u64]), trace: &[u64]) -> bool {
    catch_unwind(AssertUnwindSafe(|| property(trace))).is_err()
}

/// Budgeted candidate evaluations per shrink, so pathological properties
/// cannot stall the suite.
const SHRINK_BUDGET: usize = 4_096;

/// Delta-debugs a failing trace to a (locally) minimal one: removes
/// chunks from halves down to single elements, then simplifies surviving
/// keys toward zero. The result still fails `property`.
pub fn shrink_trace(property: impl Fn(&[u64]), trace: &[u64]) -> Vec<u64> {
    let mut current = trace.to_vec();
    let mut budget = SHRINK_BUDGET;

    // Phase 1: chunk removal, coarse to fine.
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < current.len() && budget > 0 {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            budget -= 1;
            if !candidate.is_empty() && fails(&property, &candidate) {
                current = candidate; // keep the cut; retry same offset
            } else {
                start += chunk;
            }
        }
        if chunk == 1 || budget == 0 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Phase 2: binary-search each key down to the smallest value that
    // still fails (so boundary values like "first key >= N" are found
    // exactly, not just halved past).
    let mut i = 0;
    while i < current.len() && budget > 0 {
        let mut lo = 0u64;
        let mut hi = current[i];
        while lo < hi && budget > 0 {
            let mid = lo + (hi - lo) / 2;
            let mut candidate = current.clone();
            candidate[i] = mid;
            budget -= 1;
            if fails(&property, &candidate) {
                hi = mid;
                current = candidate;
            } else {
                lo = mid + 1;
            }
        }
        i += 1;
    }
    current
}

/// Runs `property` against `cases` generated traces (family and length
/// drawn per case), shrinking any failure to a minimal trace before
/// re-raising the panic. The original case seed is reported so the
/// unshrunk case can be replayed with [`Gen::from_seed`].
///
/// Respects `ODLB_PROP_CASES` like [`crate::check`].
pub fn check_traces(name: &str, cases: u64, max_len: usize, property: impl Fn(&[u64])) {
    let cases = std::env::var("ODLB_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = Gen::from_seed(seed);
        let family = TraceFamily::arbitrary(&mut g);
        let len = g.usize_in(1, max_len.max(2));
        let trace = family.generate(&mut g, len);
        let result = catch_unwind(AssertUnwindSafe(|| property(&trace)));
        if let Err(panic) = result {
            let minimal = shrink_trace(&property, &trace);
            eprintln!(
                "trace property '{name}' failed at case {case}/{cases} \
                 (family {}, len {}; replay with Gen::from_seed({seed:#x}))\n\
                 shrunk to {} references: {:?}",
                family.label(),
                trace.len(),
                minimal.len(),
                &minimal[..minimal.len().min(64)],
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for case in 0..8u64 {
            let run = || {
                let mut g = Gen::from_seed(case_seed("gen_det", case));
                let family = TraceFamily::arbitrary(&mut g);
                family.generate(&mut g, 500)
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn zipf_head_is_hot() {
        let mut g = Gen::from_seed(7);
        let zipf = ZipfSampler::new(1000, 1.0);
        let mut head = 0u32;
        for _ in 0..10_000 {
            if zipf.sample(&mut g) < 10 {
                head += 1;
            }
        }
        // Zipf(1.0) over 1000 keys: top-10 carries ~39% of the mass.
        assert!((2_500..=5_500).contains(&head), "head draws: {head}");
    }

    #[test]
    fn loop_family_revisits_its_working_set() {
        let mut g = Gen::from_seed(8);
        let t = TraceFamily::Loop { keys: 16 }.generate(&mut g, 160);
        assert_eq!(t.iter().max(), Some(&15));
        assert_eq!(&t[..16], &t[16..32], "cycle repeats exactly");
    }

    #[test]
    fn phase_shift_moves_the_working_set() {
        let mut g = Gen::from_seed(9);
        let t = TraceFamily::PhaseShift {
            keys: 100,
            phase_len: 50,
        }
        .generate(&mut g, 200);
        assert!(t[..50].iter().all(|&k| k < 100));
        assert!(t[50..100].iter().all(|&k| (100..200).contains(&k)));
        assert!(t[150..].iter().all(|&k| (300..400).contains(&k)));
    }

    #[test]
    fn shrinker_minimises_a_known_failure() {
        // Fails iff the trace contains any key >= 100: the minimal
        // failing trace is a single reference with the smallest key
        // value that still fails, i.e. exactly 100.
        let property = |t: &[u64]| assert!(t.iter().all(|&k| k < 100));
        let trace: Vec<u64> = (0..500)
            .map(|i| if i % 7 == 0 { 150 + i } else { i % 50 })
            .collect();
        let minimal = shrink_trace(property, &trace);
        assert_eq!(minimal, vec![100]);
    }

    #[test]
    fn shrinker_returns_failing_input_unchanged_when_irreducible() {
        let property = |t: &[u64]| assert!(t != [1, 2]);
        let minimal = shrink_trace(property, &[1, 2]);
        assert_eq!(minimal, vec![1, 2]);
        assert!(fails(&property, &minimal));
    }

    #[test]
    fn check_traces_passes_and_reports_failures() {
        check_traces("trivially_true", 16, 400, |t| assert!(t.len() <= 400));
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_traces("always_fails_on_long", 16, 400, |t| assert!(t.is_empty()));
        }));
        assert!(result.is_err());
    }
}
