//! Order statistics: quartiles, interquartile range and Tukey fences.

/// First, second and third quartiles of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quartiles {
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub q2: f64,
    /// 75th percentile.
    pub q3: f64,
}

impl Quartiles {
    /// The interquartile range `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Tukey fences at the given multiplier (1.5 for the inner fence,
    /// 3.0 for the outer fence in the classic rule the paper uses).
    pub fn fences(&self, multiplier: f64) -> Fences {
        let iqr = self.iqr();
        Fences {
            low: self.q1 - multiplier * iqr,
            high: self.q3 + multiplier * iqr,
        }
    }
}

/// A `[low, high]` acceptance band; values outside are outliers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fences {
    /// Lower fence.
    pub low: f64,
    /// Upper fence.
    pub high: f64,
}

impl Fences {
    /// True when `x` lies strictly outside the band.
    pub fn is_outside(&self, x: f64) -> bool {
        x < self.low || x > self.high
    }
}

/// Computes quartiles by the linear-interpolation method (R-7, the common
/// spreadsheet/NumPy default). Returns `None` for an empty sample.
pub fn quartiles(values: &[f64]) -> Option<Quartiles> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN metric values"));
    let q = |p: f64| -> f64 {
        let h = p * (sorted.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
        }
    };
    Some(Quartiles {
        q1: q(0.25),
        q2: q(0.50),
        q3: q(0.75),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_1_to_9() {
        let v: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let q = quartiles(&v).unwrap();
        assert_eq!(q.q1, 3.0);
        assert_eq!(q.q2, 5.0);
        assert_eq!(q.q3, 7.0);
        assert_eq!(q.iqr(), 4.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let q = quartiles(&v).unwrap();
        assert_eq!(q.q1, 1.75);
        assert_eq!(q.q2, 2.5);
        assert_eq!(q.q3, 3.25);
    }

    #[test]
    fn quartiles_are_ordered() {
        let v = [9.0, 1.0, 5.0, 5.0, 2.0, 8.0, 3.0];
        let q = quartiles(&v).unwrap();
        assert!(q.q1 <= q.q2 && q.q2 <= q.q3);
    }

    #[test]
    fn single_value_degenerates() {
        let q = quartiles(&[4.2]).unwrap();
        assert_eq!((q.q1, q.q2, q.q3), (4.2, 4.2, 4.2));
        assert_eq!(q.iqr(), 0.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(quartiles(&[]), None);
    }

    #[test]
    fn fences_and_membership() {
        let q = Quartiles {
            q1: 10.0,
            q2: 15.0,
            q3: 20.0,
        };
        let inner = q.fences(1.5);
        assert_eq!(inner.low, -5.0);
        assert_eq!(inner.high, 35.0);
        assert!(!inner.is_outside(0.0));
        assert!(!inner.is_outside(35.0), "fence is inclusive");
        assert!(inner.is_outside(35.1));
        assert!(inner.is_outside(-5.1));
        let outer = q.fences(3.0);
        assert_eq!(outer.high, 50.0);
    }

    #[test]
    fn constant_sample_has_zero_iqr_fences() {
        let v = [7.0; 12];
        let q = quartiles(&v).unwrap();
        let f = q.fences(1.5);
        assert_eq!((f.low, f.high), (7.0, 7.0));
        assert!(!f.is_outside(7.0), "constant data has no outliers");
        assert!(f.is_outside(7.1));
    }
}
