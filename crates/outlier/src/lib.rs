//! # odlb-outlier — outlier context detection (paper §3.3.1)
//!
//! Upon an application-level SLA violation, the paper pinpoints the
//! fine-grained query contexts most affected by (or causing) the problem:
//!
//! 1. Divide each class's current measured metrics by its last recorded
//!    stable values → deviation ratios.
//! 2. Multiply by the class's *weight* for the metric (its magnitude
//!    normalised to the least magnitude across classes) → the *metric
//!    impact value*. Weighting makes a moderate deviation on a heavyweight
//!    query as visible as a wild deviation on a light one — the two cases
//!    the paper's hypothesis names.
//! 3. Per metric, compute Q1, Q3 and IQR over all classes' impacts. Values
//!    outside the *inner fence* `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are **mild
//!    outliers**; outside the *outer fence* (3·IQR) are **extreme**.
//! 4. Query contexts containing outlier impacts are *outlier contexts*;
//!    those whose outliers are in memory-related counters become the
//!    *problem classes* handed to MRC-based memory diagnosis.
//!
//! [`detect()`] implements the full pipeline; [`quartiles()`] the order
//! statistics; [`top_k_heavyweight`] the paper's fallback when no outlier
//! stands out.

pub mod detect;
pub mod quartiles;

pub use detect::{
    detect, top_k_heavyweight, Direction, OutlierConfig, OutlierFinding, OutlierReport, Severity,
    Weighting,
};
pub use quartiles::{quartiles, Fences, Quartiles};
