//! The outlier-context detection pipeline (paper §3.3.1).

use crate::quartiles::quartiles;
use odlb_metrics::{ClassId, MetricKind, MetricVector, METRIC_KINDS};
use std::collections::BTreeMap;

/// How metric weights are derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weighting {
    /// No weighting: impacts are raw deviation ratios (ablation A2).
    None,
    /// The paper's scheme: each class's metric value normalised to the
    /// least positive value across classes for the same metric, so heavy
    /// classes get proportionally heavy impacts.
    NormalizedToLeast,
}

/// Detection parameters. Defaults follow the classic Tukey rule the paper
/// cites: 1.5·IQR inner fence (mild), 3·IQR outer fence (extreme).
#[derive(Clone, Copy, Debug)]
pub struct OutlierConfig {
    /// Inner-fence multiplier (mild outliers).
    pub inner_multiplier: f64,
    /// Outer-fence multiplier (extreme outliers).
    pub outer_multiplier: f64,
    /// Cap on current/stable deviation ratios; also the ratio assigned to
    /// behaviour with no stable baseline (see
    /// [`MetricVector::ratio_to`]).
    pub ratio_cap: f64,
    /// Weighting scheme.
    pub weighting: Weighting,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            inner_multiplier: 1.5,
            outer_multiplier: 3.0,
            ratio_cap: 100.0,
            weighting: Weighting::NormalizedToLeast,
        }
    }
}

/// Outlier severity: which fence the impact escaped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Outside the inner fence only.
    Mild,
    /// Outside the outer fence.
    Extreme,
}

/// Which side of the fences the impact escaped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Above the upper fence.
    High,
    /// Below the lower fence.
    Low,
}

/// One outlier impact found in a query context.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutlierFinding {
    /// The metric whose impact escaped the fences.
    pub metric: MetricKind,
    /// The weighted impact value.
    pub impact: f64,
    /// The raw current/stable deviation ratio (before weighting).
    pub ratio: f64,
    /// Mild or extreme.
    pub severity: Severity,
    /// High or low side.
    pub direction: Direction,
}

impl OutlierFinding {
    /// True when this finding points in the metric's "worse" direction
    /// (high for latency/misses/…, low for throughput) AND the class
    /// actually deviated from its own baseline. The weighting scheme can
    /// push a *stable* heavyweight class outside the fences (its impact
    /// is dominated by its weight); such a finding locates where load
    /// concentrates but is not evidence of degradation.
    pub fn indicates_degradation(&self) -> bool {
        let direction_bad = match self.direction {
            Direction::High => self.metric.higher_is_worse(),
            Direction::Low => !self.metric.higher_is_worse(),
        };
        let deviated = if self.metric.higher_is_worse() {
            self.ratio > 1.1
        } else {
            self.ratio < 0.9
        };
        direction_bad && deviated
    }
}

/// The result of one detection pass over one server's classes.
#[derive(Clone, Debug, Default)]
pub struct OutlierReport {
    /// Findings per query context, sorted by class for determinism.
    pub findings: BTreeMap<ClassId, Vec<OutlierFinding>>,
    /// Classes with no stable signature (newly scheduled): automatically
    /// problem classes for MRC investigation (§3.3.2).
    pub new_classes: Vec<ClassId>,
    /// All computed impacts, for reporting and the fence ablation.
    /// Ordered so downstream iteration (figures, ablation medians) is
    /// deterministic.
    pub impacts: BTreeMap<(ClassId, MetricKind), f64>,
}

impl OutlierReport {
    /// Query contexts containing at least one outlier impact.
    pub fn outlier_contexts(&self) -> Vec<ClassId> {
        self.findings.keys().copied().collect()
    }

    /// Contexts whose outliers include a *memory-related* counter in the
    /// degradation direction: the problem classes handed to MRC
    /// recomputation.
    pub fn memory_suspects(&self) -> Vec<ClassId> {
        self.findings
            .iter()
            .filter(|(_, fs)| {
                fs.iter()
                    .any(|f| f.metric.is_memory_related() && f.indicates_degradation())
            })
            .map(|(c, _)| *c)
            .collect()
    }

    /// True when detection surfaced nothing (triggering the paper's
    /// top-k-heavyweight fallback).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty() && self.new_classes.is_empty()
    }

    /// Count of findings at the given severity.
    pub fn count_severity(&self, severity: Severity) -> usize {
        self.findings
            .values()
            .flatten()
            .filter(|f| f.severity == severity)
            .count()
    }
}

/// Runs the full detection pipeline over one server's classes.
///
/// `current` holds each class's interval metrics; `stable` returns the
/// class's stable-state metric vector, or `None` for a newly scheduled
/// class (which is then reported in
/// [`OutlierReport::new_classes`] rather than fenced — with no baseline,
/// a deviation ratio is meaningless).
pub fn detect(
    config: &OutlierConfig,
    current: &BTreeMap<ClassId, MetricVector>,
    stable: impl Fn(ClassId) -> Option<MetricVector>,
) -> OutlierReport {
    let mut report = OutlierReport::default();

    // Split classes into baselined and new.
    let mut baselined: Vec<(ClassId, MetricVector, MetricVector)> = Vec::new();
    for (&class, &cur) in current {
        match stable(class) {
            Some(st) => baselined.push((class, cur, st)),
            None => report.new_classes.push(class),
        }
    }
    if baselined.is_empty() {
        return report;
    }

    for metric in METRIC_KINDS {
        // Weights: normalise each class's metric value to the least
        // positive value across classes for that metric.
        let least_positive = baselined
            .iter()
            .map(|(_, cur, _)| cur[metric])
            .filter(|v| *v > 0.0)
            .fold(f64::INFINITY, f64::min);
        let weight = |value: f64| -> f64 {
            match config.weighting {
                Weighting::None => 1.0,
                Weighting::NormalizedToLeast => {
                    if least_positive.is_finite() && value > 0.0 {
                        value / least_positive
                    } else {
                        1.0
                    }
                }
            }
        };

        // Metric impact values.
        let impacts: Vec<(ClassId, f64, f64)> = baselined
            .iter()
            .map(|(class, cur, st)| {
                let ratio = cur.ratio_to(st, config.ratio_cap)[metric];
                (*class, ratio * weight(cur[metric]), ratio)
            })
            .collect();
        for &(class, impact, _) in &impacts {
            report.impacts.insert((class, metric), impact);
        }

        // Fences over this metric's impact distribution.
        let values: Vec<f64> = impacts.iter().map(|&(_, v, _)| v).collect();
        let Some(q) = quartiles(&values) else {
            continue;
        };
        let inner = q.fences(config.inner_multiplier);
        let outer = q.fences(config.outer_multiplier);

        for &(class, impact, ratio) in &impacts {
            if !inner.is_outside(impact) {
                continue;
            }
            let severity = if outer.is_outside(impact) {
                Severity::Extreme
            } else {
                Severity::Mild
            };
            let direction = if impact > inner.high {
                Direction::High
            } else {
                Direction::Low
            };
            report
                .findings
                .entry(class)
                .or_default()
                .push(OutlierFinding {
                    metric,
                    impact,
                    ratio,
                    severity,
                    direction,
                });
        }
    }
    report
}

/// The paper's fallback when no outlier context is found: the top-k
/// heavyweight classes by a (memory) metric, heaviest first.
pub fn top_k_heavyweight(
    current: &BTreeMap<ClassId, MetricVector>,
    metric: MetricKind,
    k: usize,
) -> Vec<ClassId> {
    let mut ranked: Vec<(ClassId, f64)> = current.iter().map(|(&c, v)| (c, v[metric])).collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("no NaN metrics")
            .then(a.0.cmp(&b.0))
    });
    ranked.into_iter().take(k).map(|(c, _)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_metrics::AppId;

    fn class(t: u32) -> ClassId {
        ClassId::new(AppId(0), t)
    }

    /// A metric vector with uniform small values everywhere.
    fn baseline_vector() -> MetricVector {
        MetricVector::from_fn(|k| match k {
            MetricKind::Latency => 0.1,
            MetricKind::Throughput => 10.0,
            MetricKind::BufferMisses => 100.0,
            MetricKind::PageAccesses => 1_000.0,
            MetricKind::IoRequests => 100.0,
            MetricKind::ReadAheads => 5.0,
            MetricKind::LockWaits => 0.5,
        })
    }

    /// `n` classes all currently behaving exactly like their baselines.
    fn quiet_population(n: u32) -> BTreeMap<ClassId, MetricVector> {
        (0..n).map(|t| (class(t), baseline_vector())).collect()
    }

    #[test]
    fn quiet_system_has_no_outliers() {
        let current = quiet_population(12);
        let report = detect(&OutlierConfig::default(), &current, |_| {
            Some(baseline_vector())
        });
        assert!(report.findings.is_empty());
        assert!(report.new_classes.is_empty());
        assert!(report.is_empty());
    }

    #[test]
    fn single_deviant_class_is_flagged() {
        let mut current = quiet_population(12);
        // Class 8 (BestSeller in the paper's numbering) explodes in misses
        // and read-aheads.
        let mut hot = baseline_vector();
        hot[MetricKind::BufferMisses] = 5_000.0;
        hot[MetricKind::ReadAheads] = 500.0;
        current.insert(class(8), hot);
        let report = detect(&OutlierConfig::default(), &current, |_| {
            Some(baseline_vector())
        });
        assert_eq!(report.outlier_contexts(), vec![class(8)]);
        assert_eq!(report.memory_suspects(), vec![class(8)]);
        let findings = &report.findings[&class(8)];
        assert!(findings
            .iter()
            .any(|f| f.metric == MetricKind::BufferMisses && f.severity == Severity::Extreme));
        assert!(findings.iter().all(|f| f.indicates_degradation()));
    }

    #[test]
    fn throughput_collapse_is_a_low_outlier() {
        let mut current = quiet_population(12);
        let mut slow = baseline_vector();
        slow[MetricKind::Throughput] = 0.5;
        current.insert(class(3), slow);
        let report = detect(&OutlierConfig::default(), &current, |_| {
            Some(baseline_vector())
        });
        let findings = &report.findings[&class(3)];
        let f = findings
            .iter()
            .find(|f| f.metric == MetricKind::Throughput)
            .expect("throughput finding");
        assert_eq!(f.direction, Direction::Low);
        assert!(f.indicates_degradation());
        // Throughput is not a memory metric: not a memory suspect.
        assert!(report.memory_suspects().is_empty());
    }

    #[test]
    fn weighting_amplifies_heavyweight_classes() {
        // Two classes deviate by the same ratio (x3 misses), but one is a
        // heavyweight (1000x the misses volume). With weighting, only the
        // heavyweight should escape the fences.
        let mut current = BTreeMap::new();
        for t in 0..10 {
            current.insert(class(t), baseline_vector());
        }
        let mut heavy_stable = baseline_vector();
        heavy_stable[MetricKind::BufferMisses] = 100_000.0;
        let mut heavy_cur = heavy_stable;
        heavy_cur[MetricKind::BufferMisses] = 300_000.0;
        let mut light_cur = baseline_vector();
        light_cur[MetricKind::BufferMisses] = 300.0;
        current.insert(class(20), heavy_cur);
        current.insert(class(21), light_cur);

        let stable = move |c: ClassId| {
            Some(if c == class(20) {
                heavy_stable
            } else {
                baseline_vector()
            })
        };

        let weighted = detect(&OutlierConfig::default(), &current, stable);
        let heavy_findings: Vec<_> = weighted.findings[&class(20)]
            .iter()
            .filter(|f| f.metric == MetricKind::BufferMisses)
            .collect();
        assert!(!heavy_findings.is_empty(), "heavyweight flagged");
        let heavy_impact = weighted.impacts[&(class(20), MetricKind::BufferMisses)];
        let light_impact = weighted.impacts[&(class(21), MetricKind::BufferMisses)];
        assert!(
            heavy_impact > 100.0 * light_impact,
            "weighting separates heavy ({heavy_impact}) from light ({light_impact})"
        );
    }

    #[test]
    fn unweighted_mode_treats_equal_ratios_equally() {
        let mut current = quiet_population(10);
        let mut a = baseline_vector();
        a[MetricKind::BufferMisses] = 300.0;
        current.insert(class(20), a);
        let config = OutlierConfig {
            weighting: Weighting::None,
            ..Default::default()
        };
        let report = detect(&config, &current, |_| Some(baseline_vector()));
        let impact = report.impacts[&(class(20), MetricKind::BufferMisses)];
        assert!((impact - 3.0).abs() < 1e-9, "impact is the raw ratio");
    }

    #[test]
    fn new_class_is_reported_not_fenced() {
        let mut current = quiet_population(8);
        current.insert(class(99), baseline_vector());
        let report = detect(&OutlierConfig::default(), &current, |c| {
            if c == class(99) {
                None
            } else {
                Some(baseline_vector())
            }
        });
        assert_eq!(report.new_classes, vec![class(99)]);
        assert!(!report.findings.contains_key(&class(99)));
    }

    #[test]
    fn all_classes_new_yields_only_new_list() {
        let current = quiet_population(5);
        let report = detect(&OutlierConfig::default(), &current, |_| None);
        assert_eq!(report.new_classes.len(), 5);
        assert!(report.findings.is_empty());
        assert!(!report.is_empty());
    }

    #[test]
    fn zero_iqr_population_flags_only_the_deviant() {
        // Failure injection: identical impacts everywhere except one.
        let mut current = quiet_population(20);
        let mut hot = baseline_vector();
        hot[MetricKind::Latency] = 0.2;
        current.insert(class(5), hot);
        let report = detect(&OutlierConfig::default(), &current, |_| {
            Some(baseline_vector())
        });
        assert_eq!(report.outlier_contexts(), vec![class(5)]);
    }

    #[test]
    fn empty_input_is_empty_report() {
        let current = BTreeMap::new();
        let report = detect(&OutlierConfig::default(), &current, |_| {
            Some(baseline_vector())
        });
        assert!(report.is_empty());
    }

    #[test]
    fn wider_fences_find_fewer_outliers() {
        // A population with natural spread (distinct weights) so the IQR
        // is non-zero and the multiplier actually matters.
        let mut current: BTreeMap<ClassId, MetricVector> = BTreeMap::new();
        for t in 0..12 {
            let mut v = baseline_vector();
            v[MetricKind::BufferMisses] = 50.0 + t as f64 * 10.0;
            current.insert(class(t), v);
        }
        let mut warm = baseline_vector();
        warm[MetricKind::BufferMisses] = 150.0; // 1.5x its stable baseline
        current.insert(class(20), warm);
        // Quiet classes are exactly at their stable baselines (ratio 1);
        // class 20's stable misses were 100 (so its ratio is 1.5).
        let snapshot = current.clone();
        let stable = move |c: ClassId| {
            if c == class(20) {
                Some(baseline_vector())
            } else {
                snapshot.get(&c).copied()
            }
        };
        let tight = OutlierConfig {
            inner_multiplier: 0.1,
            outer_multiplier: 0.2,
            ..Default::default()
        };
        let loose = OutlierConfig {
            inner_multiplier: 10.0,
            outer_multiplier: 20.0,
            ..Default::default()
        };
        let n_tight = detect(&tight, &current, stable.clone()).findings.len();
        let n_loose = detect(&loose, &current, stable).findings.len();
        assert!(n_tight >= n_loose);
        assert_eq!(n_loose, 0);
    }

    #[test]
    fn top_k_heavyweight_ranks_by_metric() {
        let mut current = BTreeMap::new();
        for t in 0..5 {
            let mut v = baseline_vector();
            v[MetricKind::PageAccesses] = (t as f64 + 1.0) * 100.0;
            current.insert(class(t), v);
        }
        let top = top_k_heavyweight(&current, MetricKind::PageAccesses, 2);
        assert_eq!(top, vec![class(4), class(3)]);
        let all = top_k_heavyweight(&current, MetricKind::PageAccesses, 50);
        assert_eq!(all.len(), 5, "k larger than population is fine");
    }

    #[test]
    fn severity_counts() {
        let mut current = quiet_population(12);
        let mut hot = baseline_vector();
        hot[MetricKind::BufferMisses] = 1e6;
        current.insert(class(8), hot);
        let report = detect(&OutlierConfig::default(), &current, |_| {
            Some(baseline_vector())
        });
        assert!(report.count_severity(Severity::Extreme) >= 1);
    }
}
