//! # odlb-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (§5), plus the
//! ablations from DESIGN.md. Each experiment is a library function taking
//! a scale knob, so the integration tests can run miniature versions and
//! the `experiments` binary runs the full-scale ones and prints the same
//! rows/series the paper reports.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::fig3`] | Fig. 3(a)–(c): sinusoid load, machine allocation, latency |
//! | [`experiments::fig4`] | Fig. 4(a)–(d): per-class deviation ratios after the `O_DATE` drop |
//! | [`experiments::fig5`] | Fig. 5: MRC of BestSeller (normal configuration) |
//! | [`experiments::fig6`] | Fig. 6: MRC of RUBiS SearchItemsByRegion |
//! | [`experiments::table1`] | Table 1: shared vs partitioned vs exclusive buffer pool |
//! | [`experiments::table2`] | Table 2: shared-pool memory contention and recovery |
//! | [`experiments::table3`] | Table 3: I/O contention between VM domains |
//! | [`experiments::ablations`] | A1 fences, A2 weights, A3 fine-vs-coarse, A4 threshold, A5 tracker |
//!
//! [`suite`] wraps every figure as a self-contained job returning a
//! [`suite::FigureOutput`], and [`runner`] provides the ordered worker
//! pool that runs those jobs concurrently (`experiments --jobs N`) while
//! committing outputs in canonical sequential order — a parallel run is
//! byte-identical to a sequential one. [`sweep`] builds on the same pool:
//! a resumable parameter-matrix jobserver (`experiments sweep`) with
//! content-addressed cell caching and shared-trace memoization.

pub mod experiments;
pub mod harness;
pub mod runner;
pub mod suite;
pub mod sweep;

pub use experiments::*;
