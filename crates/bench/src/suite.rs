//! The figure-job registry behind the `experiments` binary.
//!
//! Every paper artifact (fig3–fig6, table1–table3, the ablations) is a
//! self-contained job: it owns an isolated simulation — its own
//! `EventQueue`, `SimRng`, tracer, and telemetry registry — and returns
//! a [`FigureOutput`] bundling its buffered stdout block, run digest
//! line, and trace/metrics artifact payloads instead of printing and
//! writing as it goes. [`run_suite`] dispatches the jobs onto the
//! ordered worker pool in [`crate::runner`]: figures may *execute* in
//! any order on any worker, but their outputs *commit* strictly in
//! canonical order, so a `--jobs N` run is byte-identical to a
//! sequential one. Parallelism lives entirely between simulations,
//! never inside one (see DESIGN.md, invariants catalogue).

use crate::experiments::*;
use crate::runner::{run_ordered, Job};
use odlb_telemetry::{SharedSpanProfiler, SpanProfiler, Telemetry};
use odlb_trace::{DigestSink, JsonlSink, Tracer};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One registry entry: the authoritative metadata for a figure/ablation,
/// printed by `experiments --list` and used for every job's banner title.
#[derive(Clone, Copy, Debug)]
pub struct FigureInfo {
    /// Registry name (the CLI selector).
    pub name: &'static str,
    /// Banner title / one-line description.
    pub title: &'static str,
    /// Runs with a tracer attached (prints a run-digest line).
    pub traced: bool,
    /// Counts work units (`elements`) for the bench ledger.
    pub counted: bool,
    /// Included in the `all` selection (extras are CI-scale smoke runs
    /// and the capacity sweep).
    pub in_all: bool,
}

/// The registry, in canonical commit order: the `all` figures first
/// (exactly [`ALL_FIGURES`]' order), then the extras.
pub const REGISTRY: [FigureInfo; 16] = [
    FigureInfo {
        name: "fig5",
        title: "Fig. 5 — MRC of BestSeller (normal configuration); paper: acceptable 6982 pages",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "fig6",
        title: "Fig. 6 — MRC of SearchItemsByRegion; paper: acceptable 7906 pages",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "table1",
        title: "Table 1 — buffer pool management algorithms (index dropped)",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "fig3",
        title: "Fig. 3 — CPU saturation under sinusoid load",
        traced: true,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "fig4",
        title: "Fig. 4 — dropping the O_DATE index",
        traced: true,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "table2",
        title: "Table 2 — memory contention in a shared buffer pool",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "table3",
        title: "Table 3 — I/O contention among VM domains",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "ablation-fences",
        title: "Ablation A1 — fence multiplier sensitivity",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "ablation-weights",
        title: "Ablation A2 — impact weighting",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "ablation-coarse",
        title: "Ablation A3 — fine-grained vs coarse-grained vs CPU-only",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "ablation-mrc-threshold",
        title: "Ablation A4 — MRC acceptability threshold vs BestSeller quota",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "ablation-mrc-approx",
        title: "Ablation A5 — exact Mattson vs bucketed approximation",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "ablation-mrc-sampled",
        title: "Ablation A6 — exact Mattson vs SHARDS-style sampled tracker",
        traced: false,
        counted: false,
        in_all: true,
    },
    FigureInfo {
        name: "fig3-mini",
        title: "Fig. 3 (miniature smoke run) — CPU saturation under sinusoid load",
        traced: true,
        counted: false,
        in_all: false,
    },
    FigureInfo {
        name: "fig-scale",
        title: "fig-scale — event hot-path scaling: 112 replicas, 1M resident sessions",
        traced: true,
        counted: true,
        in_all: false,
    },
    FigureInfo {
        name: "fig-scale-mini",
        title: "fig-scale (miniature smoke run) — event hot-path scaling",
        traced: true,
        counted: true,
        in_all: false,
    },
];

/// Canonical figure order: what `all` runs, and the order outputs are
/// committed in at any job count.
pub const ALL_FIGURES: [&str; 13] = [
    "fig5",
    "fig6",
    "table1",
    "fig3",
    "fig4",
    "table2",
    "table3",
    "ablation-fences",
    "ablation-weights",
    "ablation-coarse",
    "ablation-mrc-threshold",
    "ablation-mrc-approx",
    "ablation-mrc-sampled",
];

/// Selectable figures that `all` does not include: the CI-scale fig3
/// smoke run and the event hot-path scaling sweep (full and CI-scale).
const EXTRA_FIGURES: [&str; 3] = ["fig3-mini", "fig-scale", "fig-scale-mini"];

/// Looks up a registry entry by name.
pub fn figure_info(name: &str) -> Option<&'static FigureInfo> {
    REGISTRY.iter().find(|i| i.name == name)
}

/// Renders the registry table behind `experiments --list`: one line per
/// figure/ablation with its traced/counted flags and description, so
/// sweep matrices and CI selections can be authored against the real
/// registry.
pub fn render_list() -> String {
    let yn = |b: bool| if b { "yes" } else { "-" };
    let mut out = String::from("experiments registry (canonical commit order; extras last):\n\n");
    out.push_str(&format!(
        "{:<24} {:>6} {:>7} {:>5}  description\n",
        "name", "traced", "counted", "all"
    ));
    for info in &REGISTRY {
        out.push_str(&format!(
            "{:<24} {:>6} {:>7} {:>5}  {}\n",
            info.name,
            yn(info.traced),
            yn(info.counted),
            yn(info.in_all),
            info.title
        ));
    }
    out
}

/// Resolves a command-line selector into the figures it runs: `all`
/// expands to [`ALL_FIGURES`], the extra figures (`fig3-mini`,
/// `fig-scale`, `fig-scale-mini` — runs `all` does not include) select
/// themselves, any single figure name selects that figure. Unknown
/// names resolve to `None`.
pub fn resolve(arg: &str) -> Option<Vec<&'static str>> {
    if arg == "all" {
        return Some(ALL_FIGURES.to_vec());
    }
    if let Some(extra) = EXTRA_FIGURES.iter().find(|f| **f == arg) {
        return Some(vec![*extra]);
    }
    ALL_FIGURES.iter().find(|f| **f == arg).map(|f| vec![*f])
}

/// Shared settings for one suite invocation.
#[derive(Clone, Debug, Default)]
pub struct SuiteConfig {
    /// Worker threads; `1` (or a single-figure selection) runs and
    /// commits inline, which is exactly the sequential behaviour.
    pub jobs: usize,
    /// `--trace`: base path for the JSONL event stream, suffixed with
    /// `.<figure>` when more than one figure is selected.
    pub trace_path: Option<String>,
    /// `--metrics`: directory for `<figure>.prom` / `<figure>.csv`.
    pub metrics_dir: Option<String>,
    /// `--serve`: capture each instrumented figure's final exposition so
    /// the caller can publish it to the live endpoint at commit time.
    pub capture_exposition: bool,
    /// `--profile-folded`: attach a span profiler to instrumented figures
    /// even without `--metrics`/`--serve`, so the caller can merge and
    /// dump folded stacks.
    pub profile: bool,
}

/// Everything one figure produces, buffered so the caller can commit it
/// in canonical order regardless of execution order.
#[derive(Debug)]
pub struct FigureOutput {
    /// The figure's registry name (`fig3`, `table1`, …).
    pub name: &'static str,
    /// The complete stdout block, byte-identical to a sequential run.
    pub stdout: String,
    /// Artifact payloads to write at commit time: the trace JSONL and
    /// the `.prom`/`.csv` snapshots, with their destination paths.
    pub files: Vec<(PathBuf, Vec<u8>)>,
    /// The final Prometheus exposition for the live endpoint (only with
    /// [`SuiteConfig::capture_exposition`] on an instrumented figure).
    pub publish: Option<String>,
    /// The figure's controller-phase profile (instrumented figures
    /// only); the caller merges these into one suite-level report.
    pub profile: Option<SpanProfiler>,
    /// Wall-clock time the figure's job took to run.
    pub wall: Duration,
    /// Work units the figure processed (0 when it doesn't count any):
    /// `fig-scale` reports events dispatched, so `elements / wall` is
    /// its events/sec. Kept out of `stdout` — wall-clock-derived values
    /// would break byte-parity across runs.
    pub elements: u64,
}

/// Runs `selection` on up to `cfg.jobs` workers, invoking `commit` once
/// per figure *in selection order* on the calling thread. Each job owns
/// an isolated simulation, so every [`FigureOutput`] — and therefore
/// everything the caller prints or writes — is byte-identical at any
/// job count.
pub fn run_suite(
    selection: &[&'static str],
    cfg: &SuiteConfig,
    mut commit: impl FnMut(FigureOutput),
) {
    let multiple = selection.len() > 1;
    let jobs: Vec<Job<FigureOutput>> = selection
        .iter()
        .map(|name| figure_job(name, cfg, multiple))
        .collect();
    run_ordered(jobs, cfg.jobs.max(1), move |_, out| commit(out));
}

/// The three-line figure banner, exactly as the sequential runner
/// printed it.
fn banner(title: &str) -> String {
    let bar = "=".repeat(78);
    format!("{bar}\n{title}\n{bar}\n")
}

/// A figure with no tracer or telemetry: banner plus rendered body.
fn plain(
    name: &'static str,
    title: &'static str,
    body: impl FnOnce() -> String + Send + 'static,
) -> Job<FigureOutput> {
    Box::new(move || {
        let start = Instant::now();
        let body = body();
        FigureOutput {
            name,
            stdout: format!("{}{body}\n", banner(title)),
            files: Vec::new(),
            publish: None,
            profile: None,
            wall: start.elapsed(),
            elements: 0,
        }
    })
}

/// A controller-driven figure: runs with a digest (always), a buffered
/// JSONL sink (with `--trace`), and attached telemetry plus a profiler
/// (with `--metrics`/`--serve`), reproducing the sequential runner's
/// stdout block byte for byte.
fn traced(
    name: &'static str,
    title: &'static str,
    cfg: &SuiteConfig,
    multiple: bool,
    run: impl FnOnce(Tracer, Telemetry, Option<SharedSpanProfiler>) -> String + Send + 'static,
) -> Job<FigureOutput> {
    traced_counted(name, title, cfg, multiple, move |t, tel, p| {
        (run(t, tel, p), 0)
    })
}

/// [`traced`] for figures that also count work units: the closure
/// returns `(body, elements)` and the element count rides on the
/// [`FigureOutput`] so the caller can derive a throughput benchmark.
fn traced_counted(
    name: &'static str,
    title: &'static str,
    cfg: &SuiteConfig,
    multiple: bool,
    run: impl FnOnce(Tracer, Telemetry, Option<SharedSpanProfiler>) -> (String, u64) + Send + 'static,
) -> Job<FigureOutput> {
    let trace_path = cfg.trace_path.as_ref().map(|p| {
        if multiple {
            format!("{p}.{name}")
        } else {
            p.clone()
        }
    });
    let metrics_dir = cfg.metrics_dir.clone();
    let capture = cfg.capture_exposition;
    let profile = cfg.profile;
    Box::new(move || {
        let tracer = Tracer::new();
        let jsonl = trace_path
            .as_ref()
            .map(|_| tracer.attach(JsonlSink::new(Vec::new())));
        let digest = tracer.attach(DigestSink::new());
        let telemetry = if metrics_dir.is_some() || capture {
            Telemetry::attached()
        } else {
            Telemetry::inactive()
        };
        let profiler = (telemetry.is_active() || profile).then(SpanProfiler::shared);
        // Root spans: every path in the folded dumps starts
        // `experiments;<figure>;…`, so multi-figure merges stay
        // attributable per figure.
        let _suite = odlb_telemetry::enter_span(&profiler, "experiments");
        let _figure = odlb_telemetry::enter_span(&profiler, name);
        let start = Instant::now();
        let (body, elements) = run(tracer, telemetry.clone(), profiler.clone());
        let wall = start.elapsed();
        // Close the roots before snapshotting: spans record on exit.
        drop(_figure);
        drop(_suite);

        let mut stdout = format!("{}{body}\n", banner(title));
        {
            let d = digest.borrow();
            stdout.push_str(&format!(
                "{name} run digest: {:#018x} ({} events)\n\n",
                d.digest(),
                d.events()
            ));
        }
        let mut files = Vec::new();
        if let (Some(path), Some(sink)) = (trace_path, jsonl) {
            files.push((PathBuf::from(path), sink.borrow().writer().clone()));
        }
        let publish = if capture {
            telemetry.render_prometheus()
        } else {
            None
        };
        if let Some(dir) = metrics_dir {
            let prom_path = Path::new(&dir).join(format!("{name}.prom"));
            let csv_path = Path::new(&dir).join(format!("{name}.csv"));
            let prom = telemetry.render_prometheus().unwrap_or_default();
            let csv = telemetry.render_csv().unwrap_or_default();
            stdout.push_str(&format!(
                "metrics: wrote {} and {}\n",
                prom_path.display(),
                csv_path.display()
            ));
            files.push((prom_path, prom.into_bytes()));
            files.push((csv_path, csv.into_bytes()));
        }
        let profile = profiler.map(|p| p.borrow().clone());
        FigureOutput {
            name,
            stdout,
            files,
            publish,
            profile,
            wall,
            elements,
        }
    })
}

/// Builds the job for one registry name; titles come from [`REGISTRY`],
/// the same metadata `--list` prints. Callers resolve names through
/// [`resolve`] first; an unknown name here is a programming error.
fn figure_job(name: &'static str, cfg: &SuiteConfig, multiple: bool) -> Job<FigureOutput> {
    let title = figure_info(name)
        .unwrap_or_else(|| panic!("figure '{name}' missing from REGISTRY"))
        .title;
    match name {
        "fig5" => plain(name, title, fig5::figure),
        "fig6" => plain(name, title, fig6::figure),
        "table1" => plain(name, title, table1::figure),
        "fig3" => traced(name, title, cfg, multiple, |t, tel, p| {
            fig3::render(&fig3::figure_instrumented(t, tel, p))
        }),
        "fig3-mini" => traced(name, title, cfg, multiple, |t, tel, p| {
            fig3::render(&fig3::figure_mini_instrumented(t, tel, p))
        }),
        "fig-scale" => traced_counted(name, title, cfg, multiple, |t, tel, p| {
            let r = scale::figure_instrumented(t, tel, p);
            (scale::render(&r), r.total_events())
        }),
        "fig-scale-mini" => traced_counted(name, title, cfg, multiple, |t, tel, p| {
            let r = scale::figure_mini_instrumented(t, tel, p);
            (scale::render(&r), r.total_events())
        }),
        "fig4" => traced(name, title, cfg, multiple, |t, tel, p| {
            fig4::render(&fig4::figure_instrumented(t, tel, p))
        }),
        "table2" => plain(name, title, table2::figure),
        "table3" => plain(name, title, table3::figure),
        "ablation-fences" => plain(name, title, ablations::figure_fences),
        "ablation-weights" => plain(name, title, ablations::figure_weights),
        "ablation-coarse" => plain(name, title, ablations::figure_coarse),
        "ablation-mrc-threshold" => plain(name, title, ablations::figure_threshold),
        "ablation-mrc-approx" => plain(name, title, ablations::figure_tracker),
        "ablation-mrc-sampled" => plain(name, title, sampled::figure),
        other => panic!("unknown figure '{other}' (resolve() admits selections)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_expands_all_in_canonical_order() {
        let all = resolve("all").unwrap();
        assert_eq!(all, ALL_FIGURES.to_vec());
    }

    #[test]
    fn registry_matches_selection_tables_exactly() {
        // REGISTRY is ALL_FIGURES then EXTRA_FIGURES, in order, with
        // in_all flags matching — the `--list` output and the CLI
        // selectors can never drift apart.
        let names: Vec<&str> = REGISTRY.iter().map(|i| i.name).collect();
        let expected: Vec<&str> = ALL_FIGURES.into_iter().chain(EXTRA_FIGURES).collect();
        assert_eq!(names, expected);
        for info in &REGISTRY {
            assert_eq!(
                info.in_all,
                ALL_FIGURES.contains(&info.name),
                "{}",
                info.name
            );
            assert!(
                !info.counted || info.traced,
                "{}: counted figures run through traced_counted",
                info.name
            );
            assert!(!info.title.is_empty());
        }
    }

    #[test]
    fn render_list_covers_every_registry_row() {
        let list = render_list();
        for info in &REGISTRY {
            assert!(
                list.lines().any(|l| l.starts_with(info.name)),
                "{} row missing",
                info.name
            );
            assert!(list.contains(info.title), "{} title missing", info.name);
        }
    }

    #[test]
    fn resolve_accepts_every_registry_name_and_mini() {
        for name in ALL_FIGURES {
            assert_eq!(resolve(name).unwrap(), vec![name]);
        }
        for name in EXTRA_FIGURES {
            assert_eq!(resolve(name).unwrap(), vec![name]);
        }
        assert!(resolve("fig7").is_none());
        assert!(resolve("").is_none());
    }

    #[test]
    fn plain_figure_output_has_banner_and_trailing_blank() {
        let cfg = SuiteConfig {
            jobs: 1,
            ..Default::default()
        };
        let mut outputs = Vec::new();
        run_suite(&["ablation-mrc-threshold"], &cfg, |o| outputs.push(o));
        assert_eq!(outputs.len(), 1);
        let out = &outputs[0];
        assert_eq!(out.name, "ablation-mrc-threshold");
        assert!(out.stdout.starts_with(&"=".repeat(78)));
        assert!(out.stdout.contains("Ablation A4"));
        assert!(out.stdout.ends_with("\n\n"));
        assert!(out.files.is_empty());
        assert!(out.profile.is_none());
    }

    #[test]
    fn traced_figure_buffers_trace_and_metrics_payloads() {
        let cfg = SuiteConfig {
            jobs: 1,
            trace_path: Some("trace.jsonl".to_string()),
            metrics_dir: Some("metrics".to_string()),
            capture_exposition: false,
            profile: false,
        };
        let mut outputs = Vec::new();
        run_suite(&["fig3-mini"], &cfg, |o| outputs.push(o));
        let out = outputs.pop().unwrap();
        assert!(out.stdout.contains("fig3-mini run digest: 0x"));
        assert!(out.stdout.contains("metrics: wrote"));
        // Single-figure selection: the trace path is not suffixed.
        let paths: Vec<String> = out
            .files
            .iter()
            .map(|(p, _)| p.display().to_string())
            .collect();
        assert_eq!(paths[0], "trace.jsonl");
        assert!(paths.contains(&format!(
            "metrics{}fig3-mini.prom",
            std::path::MAIN_SEPARATOR
        )));
        let (_, jsonl) = &out.files[0];
        assert!(!jsonl.is_empty(), "trace JSONL payload must be buffered");
        assert!(out.profile.is_some());
        assert!(out.publish.is_none());
    }
}
