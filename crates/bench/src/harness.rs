//! Minimal micro-benchmark harness for the `benches/` targets.
//!
//! The usual `criterion` dependency is not available offline, so each
//! bench target (already `harness = false`) drives this instead: adaptive
//! iteration-count timing with a warm-up pass, reporting mean/min wall
//! time per iteration and derived element throughput. No statistics
//! beyond that — these benches guard order-of-magnitude regressions and
//! the relative ranking of implementations (e.g. exact Mattson vs the
//! bucketed approximation), not microsecond deltas.
//!
//! A runner built with [`Bench::named`] additionally writes
//! `BENCH_<target>.json` into the working directory when it is dropped:
//! one record per benchmark with mean/min ns per op, so runs can be
//! diffed mechanically across commits.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target cumulative measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Iteration-count cap, so very slow benches still terminate promptly.
const MAX_ITERS: u32 = 1_000;

/// One measured benchmark, kept for the JSON report.
#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    mean_ns: u128,
    min_ns: u128,
    iters: u32,
    elements: u64,
}

/// One bench target's runner: takes an optional substring filter from the
/// command line (cargo passes extra args through) and times every
/// matching benchmark.
pub struct Bench {
    filter: Option<String>,
    target: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::from_args()
    }
}

impl Bench {
    /// Builds the runner from `std::env::args`, taking the first
    /// non-flag argument as a name filter (`--bench` and friends that
    /// cargo forwards are ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            target: None,
            results: Vec::new(),
        }
    }

    /// [`Bench::from_args`] plus a target name: on drop the runner
    /// writes `BENCH_<target>.json` with every measured benchmark.
    pub fn named(target: &str) -> Self {
        let mut bench = Bench::from_args();
        bench.target = Some(target.to_string());
        bench
    }

    /// A runner that only records externally measured wall times: no CLI
    /// filter, no adaptive iteration. The experiments suite uses this to
    /// log per-figure and total wall clock into `BENCH_<target>.json`
    /// (written on drop, like [`Bench::named`]).
    pub fn collector(target: &str) -> Self {
        Bench {
            filter: None,
            target: Some(target.to_string()),
            results: Vec::new(),
        }
    }

    /// Records one externally measured wall time as a single-iteration
    /// result (mean = min = `wall`). Nothing is printed: wall times are
    /// nondeterministic and must not perturb deterministic stdout.
    pub fn record_wall(&mut self, name: &str, wall: Duration) {
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: wall.as_nanos(),
            min_ns: wall.as_nanos(),
            iters: 1,
            elements: 0,
        });
    }

    /// Times `f`, printing mean and min per-iteration wall time.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_elements(name, 0, f);
    }

    /// Like [`Bench::bench`], additionally reporting `elements / mean
    /// iteration time` as a throughput (for per-item benches).
    pub fn bench_elements<R>(&mut self, name: &str, elements: u64, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: one untimed run (fills caches, resolves lazy init) and
        // a first estimate of the per-iteration cost.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / estimate.as_nanos()).clamp(1, MAX_ITERS as u128) as u32;

        let mut min = Duration::MAX;
        let total_start = Instant::now();
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            min = min.min(t.elapsed());
        }
        let mean = total_start.elapsed() / iters;
        let mut line = format!(
            "{name:<40} {:>12} mean  {:>12} min  ({iters} iters)",
            format_duration(mean),
            format_duration(min),
        );
        if elements > 0 && mean.as_nanos() > 0 {
            let rate = elements as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {:.2e} elems/s", rate));
        }
        println!("{line}");
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            iters,
            elements,
        });
    }

    /// The JSON report for the measured benchmarks (what a named runner
    /// writes on drop).
    pub fn json_report(&self) -> String {
        let target = self.target.as_deref().unwrap_or("bench");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", escape_json(target)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"min_ns_per_op\": {}, \
                 \"iters\": {}, \"elements\": {}}}{}\n",
                escape_json(&r.name),
                r.mean_ns,
                r.min_ns,
                r.iters,
                r.elements,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        let Some(target) = &self.target else { return };
        let path = format!("BENCH_{target}.json");
        if let Err(e) = std::fs::write(&path, self.json_report()) {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("wrote {path} ({} benchmarks)", self.results.len());
        }
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_filter() {
        let mut b = Bench {
            filter: Some("match".to_string()),
            target: None,
            results: Vec::new(),
        };
        let mut matched = 0u32;
        let mut filtered = 0u32;
        b.bench("matching_name", || matched += 1);
        b.bench("other", || filtered += 1);
        assert!(matched > 0, "matching bench must run");
        assert_eq!(filtered, 0, "non-matching bench must be skipped");
    }

    #[test]
    fn json_report_lists_measured_benches() {
        let mut b = Bench {
            filter: None,
            target: Some("unit_test".to_string()),
            results: Vec::new(),
        };
        b.bench("alpha", || 1 + 1);
        b.bench_elements("beta", 10, || 2 + 2);
        let json = b.json_report();
        assert!(json.contains("\"target\": \"unit_test\""));
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"name\": \"beta\""));
        assert!(json.contains("\"ns_per_op\""));
        // Keep the drop from writing a file during tests.
        b.target = None;
    }

    #[test]
    fn collector_records_wall_times_without_timing() {
        let mut b = Bench::collector("unit_test");
        b.record_wall("jobs=1/fig5", Duration::from_millis(12));
        b.record_wall("jobs=1/total", Duration::from_millis(30));
        let json = b.json_report();
        assert!(json.contains("\"target\": \"unit_test\""));
        assert!(json.contains("\"name\": \"jobs=1/fig5\", \"ns_per_op\": 12000000"));
        assert!(json.contains("\"name\": \"jobs=1/total\", \"ns_per_op\": 30000000"));
        assert!(json.contains("\"iters\": 1"));
        // Keep the drop from writing a file during tests.
        b.target = None;
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(40)), "40.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
