//! Minimal micro-benchmark harness for the `benches/` targets.
//!
//! The usual `criterion` dependency is not available offline, so each
//! bench target (already `harness = false`) drives this instead: adaptive
//! iteration-count timing with a warm-up pass, reporting mean/min wall
//! time per iteration and derived element throughput. No statistics
//! beyond that — these benches guard order-of-magnitude regressions and
//! the relative ranking of implementations (e.g. exact Mattson vs the
//! bucketed approximation), not microsecond deltas.
//!
//! A runner built with [`Bench::named`] additionally writes
//! `BENCH_<target>.json` into the working directory when it is dropped:
//! one record per benchmark with mean/min ns per op, so runs can be
//! diffed mechanically across commits.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target cumulative measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Iteration-count cap, so very slow benches still terminate promptly.
const MAX_ITERS: u32 = 1_000;

/// One measured benchmark, kept for the JSON report.
#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    mean_ns: u128,
    min_ns: u128,
    iters: u32,
    elements: u64,
}

/// One bench target's runner: takes an optional substring filter from the
/// command line (cargo passes extra args through) and times every
/// matching benchmark.
pub struct Bench {
    filter: Option<String>,
    target: Option<String>,
    merge: bool,
    results: Vec<BenchResult>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::from_args()
    }
}

impl Bench {
    /// Builds the runner from `std::env::args`, taking the first
    /// non-flag argument as a name filter (`--bench` and friends that
    /// cargo forwards are ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            target: None,
            merge: false,
            results: Vec::new(),
        }
    }

    /// [`Bench::from_args`] plus a target name: on drop the runner
    /// writes `BENCH_<target>.json` with every measured benchmark.
    pub fn named(target: &str) -> Self {
        let mut bench = Bench::from_args();
        bench.target = Some(target.to_string());
        bench
    }

    /// Like [`Bench::named`], but on drop the runner *merges* into an
    /// existing `BENCH_<target>.json` instead of overwriting it:
    /// records this run did not re-measure are preserved in file order,
    /// re-measured names are replaced, new names are appended. This
    /// lets a bench target add records to a report another binary owns
    /// (e.g. `benches/mrc.rs` adding tracker micro-benches to
    /// `BENCH_experiments.json` next to the figure wall-clocks).
    pub fn merged(target: &str) -> Self {
        let mut bench = Bench::named(target);
        bench.merge = true;
        bench
    }

    /// A runner that only records externally measured wall times: no CLI
    /// filter, no adaptive iteration. The experiments suite uses this to
    /// log per-figure and total wall clock into `BENCH_<target>.json`
    /// (written on drop, like [`Bench::named`]).
    pub fn collector(target: &str) -> Self {
        Bench {
            filter: None,
            target: Some(target.to_string()),
            merge: false,
            results: Vec::new(),
        }
    }

    /// Mean ns/op of an already-measured benchmark in this run, for
    /// derived records (e.g. a speedup ratio between two benches).
    pub fn mean_ns_of(&self, name: &str) -> Option<u128> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
    }

    /// Minimum per-iteration time of an already-recorded benchmark, by
    /// name. The min is the noise-robust statistic: derived ratios (the
    /// eventqueue speedup gate) use it so a background-load hiccup on
    /// one side cannot skew the comparison.
    pub fn min_ns_of(&self, name: &str) -> Option<u128> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
    }

    /// Records one externally measured wall time as a single-iteration
    /// result (mean = min = `wall`). Nothing is printed: wall times are
    /// nondeterministic and must not perturb deterministic stdout.
    pub fn record_wall(&mut self, name: &str, wall: Duration) {
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: wall.as_nanos(),
            min_ns: wall.as_nanos(),
            iters: 1,
            elements: 0,
        });
    }

    /// [`Bench::record_wall`] with a work-unit count: the record carries
    /// `elements`, so `elements / ns_per_op` reads back as a throughput
    /// (the experiments suite logs fig-scale's events/sec this way).
    pub fn record_wall_elements(&mut self, name: &str, wall: Duration, elements: u64) {
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: wall.as_nanos(),
            min_ns: wall.as_nanos(),
            iters: 1,
            elements,
        });
    }

    /// Times `f`, printing mean and min per-iteration wall time.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_elements(name, 0, f);
    }

    /// Like [`Bench::bench`], additionally reporting `elements / mean
    /// iteration time` as a throughput (for per-item benches).
    pub fn bench_elements<R>(&mut self, name: &str, elements: u64, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: one untimed run (fills caches, resolves lazy init) and
        // a first estimate of the per-iteration cost.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / estimate.as_nanos()).clamp(1, MAX_ITERS as u128) as u32;

        let mut min = Duration::MAX;
        let total_start = Instant::now();
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            min = min.min(t.elapsed());
        }
        let mean = total_start.elapsed() / iters;
        let mut line = format!(
            "{name:<40} {:>12} mean  {:>12} min  ({iters} iters)",
            format_duration(mean),
            format_duration(min),
        );
        if elements > 0 && mean.as_nanos() > 0 {
            let rate = elements as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {:.2e} elems/s", rate));
        }
        println!("{line}");
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            iters,
            elements,
        });
    }

    /// The JSON report for the measured benchmarks (what a named runner
    /// writes on drop).
    pub fn json_report(&self) -> String {
        let target = self.target.as_deref().unwrap_or("bench");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", escape_json(target)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"min_ns_per_op\": {}, \
                 \"iters\": {}, \"elements\": {}}}{}\n",
                escape_json(&r.name),
                r.mean_ns,
                r.min_ns,
                r.iters,
                r.elements,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        let Some(target) = &self.target else { return };
        let path = format!("BENCH_{target}.json");
        if self.merge {
            if let Ok(existing) = std::fs::read_to_string(&path) {
                let kept: Vec<BenchResult> = parse_report_results(&existing)
                    .into_iter()
                    .filter(|old| !self.results.iter().any(|new| new.name == old.name))
                    .collect();
                self.results.splice(0..0, kept);
            }
        }
        if let Err(e) = std::fs::write(&path, self.json_report()) {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("wrote {path} ({} benchmarks)", self.results.len());
        }
    }
}

/// Parses the result records out of a report previously written by
/// [`Bench::json_report`]. This is a shape-specific reader, not a JSON
/// parser: each record is one line, fields in fixed order, which is
/// exactly what `json_report` emits. Unrecognisable lines are skipped,
/// so a hand-edited file degrades to "treat as absent" rather than an
/// error.
fn parse_report_results(json: &str) -> Vec<BenchResult> {
    fn field_u128(line: &str, key: &str) -> Option<u128> {
        let tag = format!("\"{key}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    json.lines()
        .filter_map(|line| {
            let line = line.trim();
            let name = line
                .strip_prefix("{\"name\": \"")?
                .split("\", \"ns_per_op\"")
                .next()?
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
            Some(BenchResult {
                name,
                mean_ns: field_u128(line, "ns_per_op")?,
                min_ns: field_u128(line, "min_ns_per_op")?,
                iters: field_u128(line, "iters")? as u32,
                elements: field_u128(line, "elements")? as u64,
            })
        })
        .collect()
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_filter() {
        let mut b = Bench {
            filter: Some("match".to_string()),
            target: None,
            merge: false,
            results: Vec::new(),
        };
        let mut matched = 0u32;
        let mut filtered = 0u32;
        b.bench("matching_name", || matched += 1);
        b.bench("other", || filtered += 1);
        assert!(matched > 0, "matching bench must run");
        assert_eq!(filtered, 0, "non-matching bench must be skipped");
    }

    #[test]
    fn json_report_lists_measured_benches() {
        let mut b = Bench {
            filter: None,
            target: Some("unit_test".to_string()),
            merge: false,
            results: Vec::new(),
        };
        b.bench("alpha", || 1 + 1);
        b.bench_elements("beta", 10, || 2 + 2);
        let json = b.json_report();
        assert!(json.contains("\"target\": \"unit_test\""));
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"name\": \"beta\""));
        assert!(json.contains("\"ns_per_op\""));
        // Keep the drop from writing a file during tests.
        b.target = None;
    }

    #[test]
    fn collector_records_wall_times_without_timing() {
        let mut b = Bench::collector("unit_test");
        b.record_wall("jobs=1/fig5", Duration::from_millis(12));
        b.record_wall("jobs=1/total", Duration::from_millis(30));
        let json = b.json_report();
        assert!(json.contains("\"target\": \"unit_test\""));
        assert!(json.contains("\"name\": \"jobs=1/fig5\", \"ns_per_op\": 12000000"));
        assert!(json.contains("\"name\": \"jobs=1/total\", \"ns_per_op\": 30000000"));
        assert!(json.contains("\"iters\": 1"));
        // Keep the drop from writing a file during tests.
        b.target = None;
    }

    #[test]
    fn report_round_trips_through_the_merge_parser() {
        let mut b = Bench::collector("unit_test");
        b.record_wall("jobs=1/fig5", Duration::from_millis(12));
        b.record_wall("mrc_tracker/exact/wide", Duration::from_nanos(987));
        let parsed = parse_report_results(&b.json_report());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "jobs=1/fig5");
        assert_eq!(parsed[0].mean_ns, 12_000_000);
        assert_eq!(parsed[1].name, "mrc_tracker/exact/wide");
        assert_eq!(parsed[1].mean_ns, 987);
        assert_eq!(parsed[1].iters, 1);
        b.target = None;
    }

    #[test]
    fn merge_preserves_foreign_records_and_replaces_same_names() {
        let mut owner = Bench::collector("unit_test");
        owner.record_wall("jobs=1/total", Duration::from_millis(30));
        owner.record_wall("shared_name", Duration::from_millis(1));
        let existing = owner.json_report();
        owner.target = None;

        let mut merger = Bench::collector("unit_test");
        merger.merge = true;
        merger.record_wall("shared_name", Duration::from_millis(2));
        merger.record_wall("new_name", Duration::from_millis(3));
        // Simulate the drop-time merge without touching the filesystem.
        let kept: Vec<BenchResult> = parse_report_results(&existing)
            .into_iter()
            .filter(|old| !merger.results.iter().any(|new| new.name == old.name))
            .collect();
        merger.results.splice(0..0, kept);
        let merged = merger.json_report();
        merger.target = None;

        let names: Vec<String> = parse_report_results(&merged)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["jobs=1/total", "shared_name", "new_name"]);
        assert!(merged.contains("\"name\": \"shared_name\", \"ns_per_op\": 2000000"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(40)), "40.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
