//! A zero-dependency worker pool that runs independent jobs in parallel
//! but *commits* their results in submission order.
//!
//! The experiments suite reproduces every paper artifact from isolated
//! simulations — each with its own `EventQueue`, `SimRng`, tracer and
//! telemetry registry — so figures can execute concurrently without any
//! shared mutable state. What must stay sequential is the *output*:
//! stdout blocks, trace files, metric snapshots and run digests are
//! committed strictly in job order, so a parallel run is byte-identical
//! to a sequential one. Parallelism lives entirely *between*
//! simulations, never inside one (see DESIGN.md, invariants catalogue).
//!
//! This module is the workspace's second sanctioned home for threads
//! (after the scrape listener in `crates/telemetry/src/serve.rs`):
//! `odlb-lint` exempts it from D04 because worker threads never touch a
//! running simulation — a job owns its entire simulation from
//! construction to result, and only plain `Send` data crosses back.
//! The sanction is pinned by `policy_exemptions_match_the_issue` in
//! `crates/lint/src/lib.rs`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A boxed job: runs on some worker thread, returns a `Send` result.
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `jobs` on up to `threads` workers, invoking `commit` exactly
/// once per job, *in job order*, on the calling thread.
///
/// With `threads <= 1` (or fewer than two jobs) no thread is spawned:
/// each job runs and commits inline, which is exactly the sequential
/// behaviour. Otherwise workers claim jobs from a shared index and the
/// calling thread commits each result as soon as it — and everything
/// before it — is done, so commit `k` never waits on job `k+1`.
///
/// A panicking job does not wedge the pool: the panic is captured,
/// later jobs still run, and the panic is resumed on the calling thread
/// when the failed job's turn to commit arrives.
pub fn run_ordered<T: Send>(jobs: Vec<Job<T>>, threads: usize, mut commit: impl FnMut(usize, T)) {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        for (index, job) in jobs.into_iter().enumerate() {
            commit(index, job());
        }
        return;
    }

    // Each slot holds one claimable job; workers take the next index
    // from `next` and leave the finished result (or captured panic) in
    // `done`, waking the committer.
    let slots: Vec<Mutex<Option<Job<T>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<Option<std::thread::Result<T>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let ready = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    return;
                }
                let job = slots[index]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each job index is claimed exactly once");
                let result = catch_unwind(AssertUnwindSafe(job));
                let mut done = done.lock().unwrap_or_else(|e| e.into_inner());
                done[index] = Some(result);
                ready.notify_all();
            });
        }

        // Commit in canonical order on this thread while workers run.
        let mut guard = done.lock().unwrap_or_else(|e| e.into_inner());
        for index in 0..n {
            loop {
                if let Some(result) = guard[index].take() {
                    drop(guard);
                    match result {
                        Ok(value) => commit(index, value),
                        Err(panic) => resume_unwind(panic),
                    }
                    guard = done.lock().unwrap_or_else(|e| e.into_inner());
                    break;
                }
                guard = ready.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn job(value: u32) -> Job<u32> {
        Box::new(move || value)
    }

    #[test]
    fn commits_in_order_sequentially() {
        let mut seen = Vec::new();
        run_ordered((0..5u32).map(job).collect(), 1, |i, v| seen.push((i, v)));
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn commits_in_order_with_adversarial_durations() {
        // Earlier jobs sleep longer than later ones, so completion order
        // is (roughly) the reverse of submission order — commits must
        // still arrive strictly in submission order.
        let sleeps_ms = [40u64, 25, 10, 5, 0, 0, 15, 0];
        let jobs: Vec<Job<usize>> = sleeps_ms
            .iter()
            .enumerate()
            .map(|(i, &ms)| {
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(ms));
                    i
                }) as Job<usize>
            })
            .collect();
        let mut committed = Vec::new();
        run_ordered(jobs, 4, |index, value| {
            assert_eq!(index, value);
            committed.push(index);
        });
        assert_eq!(committed, (0..sleeps_ms.len()).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: std::sync::Arc<Vec<AtomicUsize>> =
            std::sync::Arc::new((0..32).map(|_| AtomicUsize::new(0)).collect());
        let jobs: Vec<Job<()>> = (0..32)
            .map(|i| {
                let counters = std::sync::Arc::clone(&counters);
                Box::new(move || {
                    counters[i].fetch_add(1, Ordering::SeqCst);
                }) as Job<()>
            })
            .collect();
        let mut commits = 0;
        run_ordered(jobs, 3, |_, ()| commits += 1);
        assert_eq!(commits, 32);
        for c in counters.iter() {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let mut seen = Vec::new();
        run_ordered(vec![job(7), job(9)], 16, |i, v| seen.push((i, v)));
        assert_eq!(seen, vec![(0, 7), (1, 9)]);
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        run_ordered(Vec::<Job<u32>>::new(), 4, |_, _| {
            panic!("nothing to commit")
        });
    }

    #[test]
    fn late_panic_does_not_block_earlier_commits() {
        // Job 2 panics; jobs 0 and 1 must still commit first, then the
        // panic resumes on the committing thread.
        let committed = Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<u32>> = vec![
                job(0),
                job(1),
                Box::new(|| panic!("job 2 exploded")),
                job(3),
            ];
            run_ordered(jobs, 4, |i, _| {
                committed.lock().unwrap().push(i);
            });
        }));
        assert!(result.is_err(), "the job panic must propagate");
        assert_eq!(*committed.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn commit_streams_before_later_jobs_finish() {
        // Job 0 finishes immediately; job 1 blocks until job 0 has been
        // committed. If the pool waited for *all* jobs before committing
        // any, this would deadlock (bounded here by the gate's timeout).
        static GATE: AtomicBool = AtomicBool::new(false);
        let jobs: Vec<Job<u32>> = vec![
            Box::new(|| 0),
            Box::new(|| {
                let mut spins = 0u64;
                while !GATE.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                    spins += 1;
                    assert!(spins < 5_000, "job 0 was never committed");
                }
                1
            }),
        ];
        let mut seen = Vec::new();
        run_ordered(jobs, 2, |i, v| {
            if i == 0 {
                GATE.store(true, Ordering::SeqCst);
            }
            seen.push((i, v));
        });
        assert_eq!(seen, vec![(0, 0), (1, 1)]);
    }
}
