//! Table 1 — hit ratio of different buffer pool management algorithms.
//!
//! The paper's own methodology: "We use a simulator of buffer pool
//! management driven by traces of page accesses per query class." Under
//! the index-dropped configuration it compares, for BestSeller and for
//! all other TPC-W queries, the hit ratio when:
//!
//! * **Shared** — everyone shares the 8192-page pool.
//! * **Partitioned** — BestSeller is confined to a quota derived from its
//!   recomputed MRC (paper: 3695 pages); the rest share the remainder.
//! * **Exclusive** — each side gets the whole pool to itself (the ideal,
//!   equivalent to isolating BestSeller on a separate replica).
//!
//! Read-ahead is part of the replay, as in InnoDB: the index-less
//! BestSeller is a linear scan whose pages are prefetched ahead of the
//! accesses, so *its own* hit ratio stays high (~95%) in every
//! configuration — the paper's seemingly paradoxical first row. The harm
//! is the prefetched pages flooding the shared pool and evicting
//! everyone else's working set; a quota confines that flood, which is why
//! the non-BestSeller row improves sharply under partitioning while
//! BestSeller barely moves.

use odlb_bufferpool::PartitionedPool;
use odlb_metrics::ClassId;
use odlb_mrc::MattsonTracker;
use odlb_sim::SimRng;
use odlb_storage::{PageId, ReadAheadDetector, EXTENT_PAGES};
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig, BESTSELLER};

/// The table's measurements.
#[derive(Clone, Copy, Debug)]
pub struct Table1Result {
    /// BestSeller hit ratio under shared / partitioned / exclusive.
    pub bestseller: [f64; 3],
    /// Non-BestSeller hit ratio under shared / partitioned / exclusive.
    pub rest: [f64; 3],
    /// The quota (pages) the partitioned configuration granted BestSeller.
    pub quota_pages: usize,
}

/// Configuration labels, in column order.
pub const CONFIGS: [&str; 3] = ["Shared Buffer", "Partitioned Buffer", "Exclusive Buffer"];

const POOL_PAGES: usize = 8192;

/// Runs the trace-driven comparison over `queries` sampled TPC-W queries
/// (index dropped). A fifth of the trace warms each pool before counting.
pub fn run(queries: usize) -> Table1Result {
    let workload = tpcw_workload(TpcwConfig {
        odate_index: false,
        ..Default::default()
    });
    let bs_class = workload.class_id(BESTSELLER);

    // Collect the trace once so every configuration replays identical
    // accesses (the paper's trace-driven methodology).
    let mut rng = SimRng::new(1_2007);
    let trace: Vec<(ClassId, Vec<PageId>)> = (0..queries)
        .map(|_| {
            let q = workload.sample_query(&mut rng);
            (q.class, q.pages)
        })
        .collect();
    let warmup = queries / 5;

    // The quota is what the controller would grant: the acceptable memory
    // of the recomputed (index-less) BestSeller curve.
    let mut tracker = MattsonTracker::new(POOL_PAGES);
    for (class, pages) in &trace {
        if *class == bs_class {
            for &p in pages {
                tracker.access(p);
            }
        }
    }
    // Same floor the controller applies: a flat-MRC scan still needs room
    // for its in-flight read-ahead extents (acceptable memory alone can
    // degenerate to a single page).
    let quota_pages = tracker
        .curve()
        .params(POOL_PAGES, 0.05)
        .acceptable_memory_needed
        .clamp(512, POOL_PAGES - 1);

    // Replays the trace through a pool with InnoDB-style read-ahead:
    // sequential runs trigger prefetch of the next extent, installed on
    // behalf of (and, under a quota, into the partition of) the class.
    let hit_ratios = |pool: &mut PartitionedPool, filter: &dyn Fn(ClassId) -> bool| -> (f64, f64) {
        let mut readahead = ReadAheadDetector::default();
        for (i, (class, pages)) in trace.iter().enumerate() {
            if i == warmup {
                pool.reset_counters();
            }
            if !filter(*class) {
                continue;
            }
            for &p in pages {
                pool.access(*class, p);
                if let Some(start) = readahead.observe(class.as_u64(), p) {
                    pool.prefetch(*class, (0..EXTENT_PAGES).map(|k| start.offset(k)));
                }
            }
        }
        let bs = pool.class_counters(bs_class);
        let mut rest_hits = 0;
        let mut rest_accesses = 0;
        for i in 0..workload.classes.len() {
            let c = workload.class_id(i);
            if c != bs_class {
                let counters = pool.class_counters(c);
                rest_hits += counters.hits;
                rest_accesses += counters.accesses;
            }
        }
        let rest_ratio = if rest_accesses == 0 {
            f64::NAN
        } else {
            rest_hits as f64 / rest_accesses as f64
        };
        (bs.hit_ratio(), rest_ratio)
    };

    // Shared.
    let mut shared = PartitionedPool::new(POOL_PAGES);
    let (bs_shared, rest_shared) = hit_ratios(&mut shared, &|_| true);

    // Partitioned: BestSeller gets its quota.
    let mut partitioned = PartitionedPool::new(POOL_PAGES);
    partitioned
        .set_quota(bs_class, quota_pages)
        .expect("quota fits");
    let (bs_part, rest_part) = hit_ratios(&mut partitioned, &|_| true);

    // Exclusive: each side alone in the full pool.
    let mut bs_only = PartitionedPool::new(POOL_PAGES);
    let (bs_excl, _) = hit_ratios(&mut bs_only, &|c| c == bs_class);
    let mut rest_only = PartitionedPool::new(POOL_PAGES);
    let (_, rest_excl) = hit_ratios(&mut rest_only, &|c| c != bs_class);

    Table1Result {
        bestseller: [bs_shared, bs_part, bs_excl],
        rest: [rest_shared, rest_part, rest_excl],
        quota_pages,
    }
}

/// Renders the table in the paper's layout.
/// The paper-scale run as a self-contained figure job: returns the
/// rendered table the experiments suite prints.
pub fn figure() -> String {
    render(&run(3_000))
}

pub fn render(r: &Table1Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1: Hit Ratio of Different Buffer Pool Management Algorithms\n\
         (BestSeller quota in partitioned configuration: {} pages)\n\n",
        r.quota_pages
    ));
    out.push_str(&format!(
        "{:<16}{:>16}{:>20}{:>18}\n",
        "Hit Ratio (%)", CONFIGS[0], CONFIGS[1], CONFIGS[2]
    ));
    out.push_str(&format!(
        "{:<16}{:>16.1}{:>20.1}{:>18.1}\n",
        "BestSeller",
        r.bestseller[0] * 100.0,
        r.bestseller[1] * 100.0,
        r.bestseller[2] * 100.0
    ));
    out.push_str(&format!(
        "{:<16}{:>16.1}{:>20.1}{:>18.1}\n",
        "Non-BestSeller",
        r.rest[0] * 100.0,
        r.rest[1] * 100.0,
        r.rest[2] * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_recovers_rest_without_hurting_bestseller() {
        let r = run(800);
        let [bs_shared, bs_part, bs_excl] = r.bestseller;
        let [rest_shared, rest_part, rest_excl] = r.rest;
        // The paper's headline: partitioned ≈ exclusive for the rest,
        // clearly better than shared.
        assert!(
            rest_part > rest_shared + 0.02,
            "partitioning must improve the rest: {rest_shared:.3} -> {rest_part:.3}"
        );
        assert!(
            rest_excl >= rest_part - 0.02,
            "exclusive is the ceiling: part {rest_part:.3} vs excl {rest_excl:.3}"
        );
        // BestSeller's scan is hidden by read-ahead everywhere: high and
        // roughly unchanged across configurations.
        assert!(
            bs_shared > 0.8,
            "prefetch keeps BestSeller high: {bs_shared:.3}"
        );
        assert!(
            (bs_part - bs_excl).abs() < 0.10,
            "quota ≈ isolation for BestSeller: {bs_part:.3} vs {bs_excl:.3}"
        );
    }
}
