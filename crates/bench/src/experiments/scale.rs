//! fig-scale — event hot-path scaling sweep (replicas × sessions).
//!
//! Not a paper figure: a capacity study of the reimplementation itself.
//! Each row runs an isolated cluster at a fixed (replica count, resident
//! session count) point on the calendar-queue event core, with the
//! hierarchical (rack → cluster) interval aggregation, and reports how
//! many events the driver dispatched. The top row is the headline
//! regime: **112 replicas with 1,000,000 concurrent sessions**, every
//! session resident in the event queue as a think-time or in-flight
//! event.
//!
//! The rendered table is fully deterministic (no wall-clock content), so
//! suite runs are byte-identical at any `--jobs` count; the wall-clock
//! side (events/sec) is carried out of band via
//! [`crate::suite::FigureOutput::elements`] and lands in
//! `BENCH_experiments.json`.

use odlb_cluster::{Simulation, SimulationConfig};
use odlb_engine::EngineConfig;
use odlb_metrics::{AppId, ServerId, Sla};
use odlb_sim::SimDuration;
use odlb_storage::{DomainId, SpaceId};
use odlb_telemetry::{SharedSpanProfiler, Telemetry};
use odlb_trace::Tracer;
use odlb_workload::{AccessPattern, ClientConfig, LoadFunction, QueryClassSpec, WorkloadSpec};

/// Applications per row; sessions and replicas split evenly across them.
const APPS: usize = 4;
/// Database instances per physical server.
const INSTANCES_PER_SERVER: usize = 4;
/// Instances per aggregation rack (hierarchical interval close).
const RACK_SIZE: usize = 16;

/// One (replicas, sessions) point of the sweep.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Database instances in the cluster.
    pub replicas: usize,
    /// Resident client sessions (cluster-wide).
    pub sessions: usize,
    /// Measurement intervals run.
    pub intervals: usize,
    /// Events the driver dispatched over the whole row.
    pub events: u64,
    /// Final-interval cluster throughput (queries/s, all apps).
    pub throughput: f64,
    /// Final-interval throughput-weighted mean latency (ms).
    pub latency_ms: f64,
}

/// The sweep, largest row last.
#[derive(Clone, Debug)]
pub struct ScaleResult {
    /// One row per (replicas, sessions) point.
    pub rows: Vec<ScaleRow>,
}

impl ScaleResult {
    /// Events dispatched across the whole sweep (the `elements` count
    /// behind the suite's events/sec record).
    pub fn total_events(&self) -> u64 {
        self.rows.iter().map(|r| r.events).sum()
    }
}

/// A deliberately cheap point-access workload: the sweep stresses the
/// *event core* (queue, routing, aggregation), not the storage model, so
/// queries touch one hot page and the per-query CPU is small. A thin
/// write slice keeps the read-one-write-all apply path exercised.
fn scale_workload(app: AppId) -> WorkloadSpec {
    let space = SpaceId(app.0);
    WorkloadSpec {
        name: format!("scale-{}", app.0),
        app,
        classes: vec![
            QueryClassSpec {
                name: "PointRead",
                sql: "SELECT v FROM kv WHERE k = ?",
                weight: 0.99,
                pattern: AccessPattern::UniformLookup {
                    space,
                    table_pages: 512,
                    count: 1,
                },
                cpu_base: SimDuration::from_micros(150),
                cpu_per_page: SimDuration::from_micros(20),
                is_write: false,
            },
            QueryClassSpec {
                name: "PointWrite",
                sql: "UPDATE kv SET v = ? WHERE k = ?",
                weight: 0.01,
                pattern: AccessPattern::UniformLookup {
                    space,
                    table_pages: 512,
                    count: 1,
                },
                cpu_base: SimDuration::from_micros(200),
                cpu_per_page: SimDuration::from_micros(25),
                is_write: true,
            },
        ],
    }
}

/// Runs one sweep point: `replicas` instances (over
/// `replicas / INSTANCES_PER_SERVER` servers), `sessions` resident
/// clients with ~200 s think times, `intervals` × 10 s measurement
/// intervals. Long think times are what make the session count a *queue
/// residency* figure: nearly every session sits in the calendar queue as
/// a pending `ClientIssue` at any instant.
fn run_row(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
    seed: u64,
    replicas: usize,
    sessions: usize,
    intervals: usize,
) -> ScaleRow {
    assert_eq!(replicas % (APPS * INSTANCES_PER_SERVER), 0);
    let mut sim = Simulation::new(SimulationConfig {
        seed,
        rack_size: RACK_SIZE,
        ..Default::default()
    });
    let servers = replicas / INSTANCES_PER_SERVER;
    for _ in 0..servers {
        // Plenty of cores and a wide stripe: the sweep must stay
        // event-core-bound, not model a saturated cluster.
        sim.add_server_with_disk(
            8,
            odlb_storage::DiskModel {
                positioning: SimDuration::from_micros(200),
                transfer_per_page: SimDuration::from_micros(20),
            },
        );
    }
    let engine = EngineConfig {
        pool_pages: 2_048,
        // Small MRC windows bound per-instance memory at 112 replicas.
        window_capacity: 8_192,
        ..Default::default()
    };
    let mut instances = Vec::with_capacity(replicas);
    for i in 0..replicas {
        let server = ServerId((i / INSTANCES_PER_SERVER) as u32);
        instances.push(sim.add_instance(server, DomainId(1), engine));
    }
    for a in 0..APPS {
        let app = sim.add_app(
            scale_workload(AppId(a as u32)),
            Sla::one_second(),
            ClientConfig {
                think_time_mean: SimDuration::from_secs(200),
                load_noise: 0.0,
            },
            LoadFunction::Constant(sessions / APPS),
        );
        // Each app owns an even share of the instances.
        let per_app = replicas / APPS;
        for &inst in &instances[a * per_app..(a + 1) * per_app] {
            sim.assign_replica(app, inst);
        }
    }
    sim.set_tracer(tracer);
    if telemetry.is_active() {
        sim.set_telemetry(telemetry);
    }
    if let Some(p) = profiler {
        sim.set_profiler(p);
    }
    sim.start();
    let mut throughput = 0.0;
    let mut latency_ms = 0.0;
    for _ in 0..intervals {
        let outcome = sim.run_interval();
        let mut lat_weight = 0.0;
        throughput = 0.0;
        for (app, tput) in &outcome.app_throughput {
            throughput += tput;
            if let Some(Some(lat)) = outcome.app_latency.get(app) {
                lat_weight += lat * tput;
            }
        }
        latency_ms = if throughput > 0.0 {
            lat_weight / throughput * 1e3
        } else {
            f64::NAN
        };
    }
    ScaleRow {
        replicas,
        sessions,
        intervals,
        events: sim.events_processed(),
        throughput,
        latency_ms,
    }
}

/// The full sweep: 16 → 112 replicas, 100k → 1M resident sessions.
/// Telemetry and the profiler attach to the headline row only, so the
/// metrics artifacts describe the 112-replica regime.
pub fn figure_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
) -> ScaleResult {
    let points: [(usize, usize, usize); 3] =
        [(16, 100_000, 2), (64, 400_000, 2), (112, 1_000_000, 3)];
    run_sweep(tracer, telemetry, profiler, &points)
}

/// CI-scale sweep (`fig-scale-mini`): same shape, two small points.
pub fn figure_mini_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
) -> ScaleResult {
    let points: [(usize, usize, usize); 2] = [(16, 10_000, 2), (32, 40_000, 2)];
    run_sweep(tracer, telemetry, profiler, &points)
}

fn run_sweep(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
    points: &[(usize, usize, usize)],
) -> ScaleResult {
    let mut rows = Vec::with_capacity(points.len());
    for (i, &(replicas, sessions, intervals)) in points.iter().enumerate() {
        let last = i + 1 == points.len();
        rows.push(run_row(
            tracer.clone(),
            if last {
                telemetry.clone()
            } else {
                Telemetry::inactive()
            },
            if last { profiler.clone() } else { None },
            9_2026 + i as u64,
            replicas,
            sessions,
            intervals,
        ));
    }
    tracer.flush();
    ScaleResult { rows }
}

/// Renders the sweep table. Deterministic by construction: event counts
/// and simulated metrics only — wall-clock throughput goes to the bench
/// ledger, never to stdout.
pub fn render(r: &ScaleResult) -> String {
    let mut out = String::new();
    out.push_str("fig-scale: event hot-path scaling (calendar queue, hierarchical aggregation)\n");
    out.push_str(&format!(
        "{:>9}  {:>10}  {:>10}  {:>12}  {:>12}  {:>12}\n",
        "replicas", "sessions", "intervals", "events", "tput(q/s)", "latency(ms)"
    ));
    for row in &r.rows {
        out.push_str(&format!(
            "{:>9}  {:>10}  {:>10}  {:>12}  {:>12.0}  {:>12.3}\n",
            row.replicas, row.sessions, row.intervals, row.events, row.throughput, row.latency_ms
        ));
    }
    out.push_str(&format!(
        "\ntotal events dispatched: {}\n",
        r.total_events()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_sweep_is_deterministic_and_processes_every_session() {
        let a = figure_mini_instrumented(Tracer::new(), Telemetry::inactive(), None);
        let b = figure_mini_instrumented(Tracer::new(), Telemetry::inactive(), None);
        assert_eq!(render(&a), render(&b), "sweep must be run-to-run stable");
        for row in &a.rows {
            // Every session issues at least once in the first interval
            // (and completes), so events strictly exceed 2 × sessions.
            assert!(
                row.events > 2 * row.sessions as u64,
                "row {row:?} dispatched too few events"
            );
            assert!(row.throughput > 0.0);
            assert!(row.latency_ms.is_finite());
        }
    }
}
