//! Ablations over the design choices DESIGN.md calls out.
//!
//! * **A1** — fence multipliers: detection counts across a grid of
//!   inner/outer multipliers on the Fig. 4 scenario's data.
//! * **A2** — impact weighting on/off on the same data.
//! * **A3** — fine-grained vs coarse-grained vs CPU-only controllers on
//!   the Table 2 scenario: recovery quality vs machines used.
//! * **A4** — MRC acceptability threshold: how the quota the controller
//!   would grant BestSeller moves with the threshold.
//! * **A5** — exact Mattson vs bucketed approximation: curve deviation.

use odlb_cluster::{Simulation, SimulationConfig};
use odlb_core::{
    ClusterController, CoarseGrainedController, ControllerConfig, CpuOnlyController,
    SelectiveRetuningController,
};
use odlb_engine::EngineConfig;
use odlb_metrics::{AppId, ClassId, MetricVector, Sla};
use odlb_mrc::{BucketedTracker, MattsonTracker};
use odlb_outlier::{detect, OutlierConfig, Weighting};
use odlb_sim::{SimRng, SimTime};
use odlb_storage::DomainId;
use odlb_workload::rubis::{rubis_workload, RubisConfig};
use odlb_workload::tpcw::{bestseller_pattern, tpcw_workload, TpcwConfig, BESTSELLER};
use odlb_workload::{ClientConfig, LoadFunction};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A1 at paper scale as a self-contained figure job: fence multiplier
/// sensitivity on the Fig. 4 snapshot.
pub fn figure_fences() -> String {
    let snap = capture_detection_snapshot(50);
    render_fences(&snap, &[0.5, 1.0, 1.5, 2.0, 3.0, 6.0])
}

/// Renders the A1 table, one line per multiplier.
pub fn render_fences(snap: &DetectionSnapshot, multipliers: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>18}",
        "inner", "contexts", "flags BestSeller"
    );
    for row in fence_ablation(snap, multipliers) {
        let _ = writeln!(
            out,
            "{:>8.1} {:>10} {:>18}",
            row.inner, row.contexts, row.flags_bestseller
        );
    }
    out
}

/// A2 at paper scale as a self-contained figure job: impact weighting
/// on/off on the Fig. 4 snapshot.
pub fn figure_weights() -> String {
    let snap = capture_detection_snapshot(50);
    render_weights(&snap)
}

/// Renders the A2 table.
pub fn render_weights(snap: &DetectionSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>22} {:>10} {:>18} {:>14}",
        "weighting", "contexts", "flags BestSeller", "separation"
    );
    for row in weight_ablation(snap) {
        let _ = writeln!(
            out,
            "{:>22} {:>10} {:>18} {:>14.1}",
            row.weighting, row.contexts, row.flags_bestseller, row.bestseller_separation
        );
    }
    out
}

/// A3 at paper scale as a self-contained figure job: controller
/// granularity comparison on the Table 2 scenario.
pub fn figure_coarse() -> String {
    render_coarse(&controller_ablation(50, 30, 25))
}

/// Renders the A3 table.
pub fn render_coarse(rows: &[ControllerAblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>22} {:>18} {:>14}",
        "controller", "final latency (s)", "servers used"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>22} {:>18.2} {:>14}",
            row.controller, row.final_latency_s, row.servers_used
        );
    }
    out
}

/// A4 at paper scale as a self-contained figure job: acceptability
/// threshold vs the BestSeller quota.
pub fn figure_threshold() -> String {
    render_threshold(&mrc_threshold_ablation(
        80,
        &[0.01, 0.02, 0.05, 0.10, 0.15, 0.20],
    ))
}

/// Renders the A4 table.
pub fn render_threshold(rows: &[(f64, usize)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>12} {:>20}", "threshold", "acceptable (pages)");
    for &(t, pages) in rows {
        let _ = writeln!(out, "{t:>12.2} {pages:>20}");
    }
    out
}

/// A5 at paper scale as a self-contained figure job: exact Mattson vs
/// the bucketed approximation.
pub fn figure_tracker() -> String {
    render_tracker(&tracker_ablation(150, &[1.1, 1.2, 1.5, 2.0, 4.0]))
}

/// Renders the A5 table.
pub fn render_tracker(rows: &[TrackerAblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>9} {:>16}", "ratio", "buckets", "max |Δmr|");
    for row in rows {
        let _ = writeln!(
            out,
            "{:>8.1} {:>9} {:>16.4}",
            row.ratio, row.buckets, row.max_deviation
        );
    }
    out
}

/// Captured (current, stable) metric maps from a Fig. 4-style run, the
/// common input to the detection ablations.
pub struct DetectionSnapshot {
    /// The violated interval's per-class metrics.
    pub current: BTreeMap<ClassId, MetricVector>,
    /// Stable-state metrics per class.
    pub stable: BTreeMap<ClassId, MetricVector>,
}

/// Runs the index-drop scenario just far enough to capture one violated
/// interval against its stable baseline.
pub fn capture_detection_snapshot(clients: usize) -> DetectionSnapshot {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 41_2007,
        ..Default::default()
    });
    let server = sim.add_server(4);
    let inst = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(clients),
    );
    sim.assign_replica(app, inst);
    sim.start();
    let mut stable = BTreeMap::new();
    for _ in 0..10 {
        let outcome = sim.run_interval();
        for (&class, &v) in &outcome.reports[&inst].per_class {
            stable.insert(class, v);
        }
    }
    sim.set_class_pattern(app, BESTSELLER, bestseller_pattern(false));
    let mut current = BTreeMap::new();
    for _ in 0..6 {
        let outcome = sim.run_interval();
        if outcome.sla[&app].is_violation() {
            current = outcome.reports[&inst].per_class.clone();
            break;
        }
    }
    DetectionSnapshot { current, stable }
}

/// A1: one grid point of the fence ablation.
#[derive(Clone, Debug)]
pub struct FenceAblationRow {
    /// Inner fence multiplier.
    pub inner: f64,
    /// Outlier contexts found.
    pub contexts: usize,
    /// Whether BestSeller was among them (the true positive).
    pub flags_bestseller: bool,
}

/// A1: sweeps the inner fence multiplier (outer = 2× inner).
pub fn fence_ablation(snapshot: &DetectionSnapshot, multipliers: &[f64]) -> Vec<FenceAblationRow> {
    multipliers
        .iter()
        .map(|&inner| {
            let config = OutlierConfig {
                inner_multiplier: inner,
                outer_multiplier: inner * 2.0,
                ..Default::default()
            };
            let report = detect(&config, &snapshot.current, |c| {
                snapshot.stable.get(&c).copied()
            });
            let contexts = report.outlier_contexts();
            FenceAblationRow {
                inner,
                contexts: contexts.len(),
                flags_bestseller: contexts.iter().any(|c| c.template == BESTSELLER as u32),
            }
        })
        .collect()
}

/// A2: weighting on vs off.
#[derive(Clone, Debug)]
pub struct WeightAblationRow {
    /// Which weighting.
    pub weighting: &'static str,
    /// Outlier contexts found.
    pub contexts: usize,
    /// BestSeller flagged?
    pub flags_bestseller: bool,
    /// BestSeller's misses-impact divided by the median impact — how far
    /// it stands out.
    pub bestseller_separation: f64,
}

/// A2: runs detection with and without impact weighting.
pub fn weight_ablation(snapshot: &DetectionSnapshot) -> Vec<WeightAblationRow> {
    [
        ("normalized-to-least", Weighting::NormalizedToLeast),
        ("unweighted", Weighting::None),
    ]
    .into_iter()
    .map(|(name, weighting)| {
        let config = OutlierConfig {
            weighting,
            ..Default::default()
        };
        let report = detect(&config, &snapshot.current, |c| {
            snapshot.stable.get(&c).copied()
        });
        let contexts = report.outlier_contexts();
        let mut impacts: Vec<f64> = report
            .impacts
            .iter()
            .filter(|((_, k), _)| *k == odlb_metrics::MetricKind::BufferMisses)
            .map(|(_, &v)| v)
            .collect();
        impacts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = impacts.get(impacts.len() / 2).copied().unwrap_or(1.0);
        let bs_impact = report
            .impacts
            .iter()
            .find(|((c, k), _)| {
                c.template == BESTSELLER as u32 && *k == odlb_metrics::MetricKind::BufferMisses
            })
            .map(|(_, &v)| v)
            .unwrap_or(0.0);
        WeightAblationRow {
            weighting: name,
            contexts: contexts.len(),
            flags_bestseller: contexts.iter().any(|c| c.template == BESTSELLER as u32),
            bestseller_separation: bs_impact / median.max(1e-12),
        }
    })
    .collect()
}

/// A3: one controller's outcome on the Table 2 scenario.
#[derive(Clone, Debug)]
pub struct ControllerAblationRow {
    /// Controller name.
    pub controller: &'static str,
    /// TPC-W latency at the end (s).
    pub final_latency_s: f64,
    /// Servers carrying at least one replica at the end.
    pub servers_used: usize,
}

/// A3: runs the Table 2 scenario under each controller.
pub fn controller_ablation(
    tpcw_clients: usize,
    rubis_clients: usize,
    intervals: usize,
) -> Vec<ControllerAblationRow> {
    let run_with =
        |name: &'static str, mut ctl: Box<dyn ClusterController>| -> ControllerAblationRow {
            let mut sim = Simulation::new(SimulationConfig {
                seed: 43_2007,
                ..Default::default()
            });
            let s0 = sim.add_server(4);
            sim.add_server(4);
            sim.add_server(4);
            let inst = sim.add_instance(s0, DomainId(1), EngineConfig::default());
            let tpcw = sim.add_app(
                tpcw_workload(TpcwConfig::default()),
                Sla::one_second(),
                ClientConfig::default(),
                LoadFunction::Constant(tpcw_clients),
            );
            let rubis = sim.add_app(
                rubis_workload(RubisConfig {
                    app: AppId(1),
                    ..Default::default()
                }),
                Sla::one_second(),
                ClientConfig::default(),
                LoadFunction::Step {
                    before: 0,
                    after: rubis_clients,
                    at: SimTime::from_secs(60),
                },
            );
            sim.assign_replica(tpcw, inst);
            sim.assign_replica(rubis, inst);
            sim.start();
            let mut final_latency = f64::NAN;
            for _ in 0..intervals {
                let outcome = sim.run_interval();
                ctl.on_interval(&mut sim, &outcome);
                if let Some(lat) = outcome.app_latency[&tpcw] {
                    final_latency = lat;
                }
            }
            let mut servers: Vec<odlb_metrics::ServerId> = sim
                .replicas_of(tpcw)
                .into_iter()
                .chain(sim.replicas_of(rubis))
                .map(|i| sim.server_of(i))
                .collect();
            servers.sort();
            servers.dedup();
            ControllerAblationRow {
                controller: name,
                final_latency_s: final_latency,
                servers_used: servers.len(),
            }
        };
    vec![
        run_with(
            "selective-retuning",
            Box::new(SelectiveRetuningController::new(ControllerConfig::default())),
        ),
        run_with("coarse-grained", Box::new(CoarseGrainedController::new(3))),
        run_with("cpu-only", Box::new(CpuOnlyController::new(0.9, 3))),
    ]
}

/// A4: acceptable memory vs threshold for the indexed BestSeller curve.
pub fn mrc_threshold_ablation(queries: usize, thresholds: &[f64]) -> Vec<(f64, usize)> {
    let workload = tpcw_workload(TpcwConfig::default());
    let mut rng = SimRng::new(44_2007);
    let mut tracker = MattsonTracker::new(8192);
    for _ in 0..queries {
        for page in workload.query_of_class(BESTSELLER, &mut rng).pages {
            tracker.access(page);
        }
    }
    thresholds
        .iter()
        .map(|&t| (t, tracker.curve().params(8192, t).acceptable_memory_needed))
        .collect()
}

/// A5: exact vs bucketed tracker deviation on a RUBiS trace.
#[derive(Clone, Copy, Debug)]
pub struct TrackerAblationRow {
    /// Bucket growth ratio.
    pub ratio: f64,
    /// Buckets used.
    pub buckets: usize,
    /// Max |Δ miss-ratio| across probed sizes.
    pub max_deviation: f64,
}

/// A5: runs both trackers over the same trace.
pub fn tracker_ablation(queries: usize, ratios: &[f64]) -> Vec<TrackerAblationRow> {
    let workload = rubis_workload(RubisConfig::default());
    ratios
        .iter()
        .map(|&ratio| {
            let mut rng = SimRng::new(45_2007);
            let mut bucketed = BucketedTracker::new(10_000, ratio);
            for _ in 0..queries {
                for page in workload.sample_query(&mut rng).pages {
                    bucketed.access(page);
                }
            }
            let max_deviation = (1..=20)
                .map(|i| i * 500)
                .map(|m| {
                    (bucketed.curve().miss_ratio(m) - bucketed.exact_curve().miss_ratio(m)).abs()
                })
                .fold(0.0, f64::max);
            TrackerAblationRow {
                ratio,
                buckets: bucketed.buckets(),
                max_deviation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_fences_find_more() {
        let snap = capture_detection_snapshot(50);
        assert!(!snap.current.is_empty(), "violation must be captured");
        let rows = fence_ablation(&snap, &[0.5, 1.5, 6.0]);
        assert!(rows[0].contexts >= rows[1].contexts);
        assert!(rows[1].contexts >= rows[2].contexts);
        assert!(rows[1].flags_bestseller, "classic fences find BestSeller");
    }

    #[test]
    fn weighting_separates_bestseller_more() {
        let snap = capture_detection_snapshot(50);
        let rows = weight_ablation(&snap);
        let weighted = &rows[0];
        let unweighted = &rows[1];
        assert!(weighted.flags_bestseller);
        assert!(
            weighted.bestseller_separation > unweighted.bestseller_separation,
            "weighting should amplify the heavyweight: {} vs {}",
            weighted.bestseller_separation,
            unweighted.bestseller_separation
        );
    }

    #[test]
    fn threshold_monotonically_shrinks_quota() {
        let rows = mrc_threshold_ablation(40, &[0.01, 0.05, 0.10, 0.20]);
        for pair in rows.windows(2) {
            assert!(
                pair[0].1 >= pair[1].1,
                "larger threshold, smaller quota: {pair:?}"
            );
        }
    }

    #[test]
    fn coarser_buckets_deviate_more_but_stay_pessimistic() {
        let rows = tracker_ablation(60, &[1.2, 2.0]);
        assert!(rows[0].buckets > rows[1].buckets);
        assert!(rows[0].max_deviation <= rows[1].max_deviation + 1e-9);
    }
}
