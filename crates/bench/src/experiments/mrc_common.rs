//! Shared machinery for the MRC figures (Fig. 5 and Fig. 6): build a
//! per-class reference trace from a workload model, run it through
//! Mattson's algorithm, and render the curve.

use odlb_mrc::{MattsonTracker, MrcParams};
use odlb_sim::SimRng;
use odlb_workload::WorkloadSpec;

/// The result of one MRC experiment.
#[derive(Clone, Debug)]
pub struct MrcResult {
    /// Which query class this curve belongs to.
    pub class_name: String,
    /// `(memory size in pages, miss ratio)` samples across the cap.
    pub curve: Vec<(usize, f64)>,
    /// The controller-facing parameters at the given threshold.
    pub params: MrcParams,
    /// References in the trace.
    pub accesses: u64,
}

/// Replays `queries` executions of one class through a Mattson tracker.
pub fn class_mrc(
    workload: &WorkloadSpec,
    class_index: usize,
    queries: usize,
    cap_pages: usize,
    threshold: f64,
    seed: u64,
) -> MrcResult {
    let mut rng = SimRng::new(seed);
    let mut tracker = MattsonTracker::new(cap_pages);
    for _ in 0..queries {
        for page in workload.query_of_class(class_index, &mut rng).pages {
            tracker.access(page);
        }
    }
    let accesses = tracker.accesses();
    let curve = tracker.curve().sampled(33);
    let params = tracker.curve().params(cap_pages, threshold);
    MrcResult {
        class_name: workload.classes[class_index].name.to_string(),
        curve,
        params,
        accesses,
    }
}

/// Renders the curve the way the paper plots it (miss ratio vs memory).
pub fn render(result: &MrcResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Miss Ratio Curve of {} ({} references)\n",
        result.class_name, result.accesses
    ));
    out.push_str(&format!(
        "  total memory needed      = {} pages (ideal miss ratio {:.4})\n",
        result.params.total_memory_needed, result.params.ideal_miss_ratio
    ));
    out.push_str(&format!(
        "  acceptable memory needed = {} pages (acceptable miss ratio {:.4})\n",
        result.params.acceptable_memory_needed, result.params.acceptable_miss_ratio
    ));
    out.push_str("  pages      miss-ratio\n");
    for &(size, mr) in &result.curve {
        let bar = "#".repeat((mr * 40.0).round() as usize);
        out.push_str(&format!("  {size:>7}    {mr:.4} |{bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use odlb_workload::tpcw::{tpcw_workload, TpcwConfig, BESTSELLER};

    #[test]
    fn curve_is_monotone_and_rendered() {
        let w = tpcw_workload(TpcwConfig::default());
        let r = class_mrc(&w, BESTSELLER, 20, 8192, 0.05, 7);
        for pair in r.curve.windows(2) {
            assert!(pair[0].1 >= pair[1].1 - 1e-12, "MRC must not increase");
        }
        let text = render(&r);
        assert!(text.contains("BestSeller"));
        assert!(text.contains("acceptable memory"));
    }
}
