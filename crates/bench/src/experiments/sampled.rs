//! Ablation A6 — SHARDS-style spatially sampled MRC vs exact Mattson.
//!
//! Sweeps the sampling rate on the fig. 5 BestSeller trace and reports,
//! per rate: how many references survive the hash filter, how far the
//! estimated curve strays from the exact one, and — the question the
//! controller actually cares about — whether the diagnosis it would
//! derive (problem-class verdict plus granted quota at the
//! `min_quota_pages` enforcement granularity) is unchanged.

use odlb_mrc::{
    compute_curve, fit_quotas, MissRatioCurve, MrcMode, MrcParams, QuotaRequest, SampledTracker,
};
use odlb_sim::SimRng;
use odlb_storage::PageId;
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig, BESTSELLER};
use std::fmt::Write as _;

/// Fig. 5 pool size (pages).
const CAP: usize = 8192;
/// Fig. 5 acceptability threshold.
const THRESHOLD: f64 = 0.05;
/// `ControllerConfig::min_quota_pages`: the granularity at which quota
/// decisions are compared.
const MIN_QUOTA_PAGES: usize = 512;

/// The fig. 5 reference trace (`queries` BestSeller executions, seed
/// 2007) — byte-identical to what `fig5::run(queries)` replays.
pub fn fig5_reference_trace(queries: usize) -> Vec<PageId> {
    let workload = tpcw_workload(TpcwConfig::default());
    let mut rng = SimRng::new(2007);
    let mut pages = Vec::new();
    for _ in 0..queries {
        pages.extend(workload.query_of_class(BESTSELLER, &mut rng).pages);
    }
    pages
}

/// One grid point of the sampling-rate sweep.
#[derive(Clone, Debug)]
pub struct SampledAblationRow {
    /// Sampling rate R.
    pub rate: f64,
    /// References that survived the hash filter.
    pub sampled_refs: u64,
    /// Mean |Δ miss-ratio| against the exact curve over the size grid.
    pub mean_deviation: f64,
    /// Max |Δ miss-ratio| against the exact curve over the size grid.
    pub max_deviation: f64,
    /// Exact acceptable memory (pages).
    pub exact_acceptable: usize,
    /// Sampled-estimate acceptable memory (pages).
    pub sampled_acceptable: usize,
    /// Whether the controller's decision — changed-verdict plus quota
    /// in `MIN_QUOTA_PAGES` units — matches exact mode.
    pub same_action: bool,
}

/// The controller decision a curve leads to: the problem-class verdict
/// against a canonical stale prior, and the quota `fit_quotas` grants,
/// in enforcement units.
fn decision(curve: &MissRatioCurve) -> (bool, usize) {
    let params = curve.params(CAP, THRESHOLD);
    // Canonical stale prior (the class used to be far cheaper), the
    // same reference the parity test in `tests/` uses.
    let stable = MrcParams {
        total_memory_needed: 3000,
        ideal_miss_ratio: 0.01,
        acceptable_memory_needed: 2500,
        acceptable_miss_ratio: 0.03,
    };
    let changed = params.significantly_different_from(&stable, 0.25, 0.10);
    let requests = [QuotaRequest {
        id: BESTSELLER as u64,
        curve,
        acceptable_pages: params.acceptable_memory_needed,
        access_rate: 1.0,
    }];
    let granted = match fit_quotas(CAP - 1, &requests) {
        Some(a) => a[0].pages,
        None => CAP, // over-committed sentinel: "re-place" decision
    };
    (changed, granted.div_ceil(MIN_QUOTA_PAGES))
}

/// Mean and max |Δ miss-ratio| between two curves on a uniform grid.
fn deviations(exact: &MissRatioCurve, sampled: &MissRatioCurve) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0u32;
    let mut m = 1;
    while m <= CAP {
        let d = (exact.miss_ratio(m) - sampled.miss_ratio(m)).abs();
        sum += d;
        max = max.max(d);
        n += 1;
        m += 64;
    }
    (sum / n as f64, max)
}

/// Runs the sweep: the exact curve once, then one sampled tracker per
/// rate over the identical trace.
pub fn sampled_ablation(queries: usize, rates: &[f64]) -> Vec<SampledAblationRow> {
    let trace = fig5_reference_trace(queries);
    let exact = compute_curve(MrcMode::Exact, CAP, trace.iter().copied());
    let exact_decision = decision(&exact);
    let exact_acceptable = exact.params(CAP, THRESHOLD).acceptable_memory_needed;
    rates
        .iter()
        .map(|&rate| {
            let mut tracker = SampledTracker::new(CAP, rate);
            for &p in &trace {
                tracker.access(p);
            }
            let sampled_refs = tracker.sampled_refs();
            let curve = tracker.into_curve();
            let (mean_deviation, max_deviation) = deviations(&exact, &curve);
            let sampled_acceptable = curve.params(CAP, THRESHOLD).acceptable_memory_needed;
            SampledAblationRow {
                rate,
                sampled_refs,
                mean_deviation,
                max_deviation,
                exact_acceptable,
                sampled_acceptable,
                same_action: decision(&curve) == exact_decision,
            }
        })
        .collect()
}

/// Renders the A6 table.
pub fn render(rows: &[SampledAblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>11} {:>10} {:>10} {:>10} {:>12}",
        "rate", "sampled-refs", "mean |Δmr|", "max |Δmr|", "exact-acc", "sampl-acc", "same-action"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>6.2} {:>12} {:>11.4} {:>10.4} {:>10} {:>10} {:>12}",
            row.rate,
            row.sampled_refs,
            row.mean_deviation,
            row.max_deviation,
            row.exact_acceptable,
            row.sampled_acceptable,
            if row.same_action { "yes" } else { "NO" }
        );
    }
    out
}

/// The paper-scale figure job.
pub fn figure() -> String {
    render(&sampled_ablation(120, &[0.5, 0.2, 0.1, 0.05, 0.01]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_the_controller_action_down_to_r_0_05() {
        // Paper scale (120 queries, as the figure runs): fewer queries
        // sharpen small-sample wobble at the lowest rates.
        let rows = sampled_ablation(120, &[0.5, 0.1, 0.05]);
        for row in &rows {
            assert!(
                row.same_action,
                "rate {}: controller action diverged ({} vs {} pages acceptable)",
                row.rate, row.exact_acceptable, row.sampled_acceptable
            );
            assert!(
                row.max_deviation < 0.15,
                "rate {}: {}",
                row.rate,
                row.max_deviation
            );
        }
        // Filter actually filters: survivors shrink with the rate.
        assert!(rows[0].sampled_refs > rows[1].sampled_refs);
        assert!(rows[1].sampled_refs > rows[2].sampled_refs);
    }

    #[test]
    fn rendered_table_lists_every_rate() {
        let text = render(&sampled_ablation(30, &[0.5, 0.1]));
        assert!(text.contains("same-action"));
        assert!(text.contains("  0.50"));
        assert!(text.contains("  0.10"));
    }
}
