//! Fig. 3 — alleviation of CPU saturation under a sinusoid load.
//!
//! §5.2: a TPC-W client emulator drives a sinusoid client population with
//! random noise; when CPU saturates, reactive provisioning allocates more
//! replicas and load balances all query classes across them; the average
//! query latency drops back below the 1 s SLA. Three panels:
//! (a) the load function, (b) the machine allocation, (c) the latency.
//!
//! Configuration notes: the paper's CPU-saturation run is not memory
//! constrained (the phenomenon under study is CPU queueing), so the
//! engines get a 512 MB pool (32768 pages) and TPC-W's CPU demands are
//! scaled up to stand in for the co-located PHP tier; once warm, latency
//! is CPU-dominated exactly as in the testbed.

use odlb_cluster::{Simulation, SimulationConfig};
use odlb_core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb_engine::EngineConfig;
use odlb_metrics::Sla;
use odlb_sim::SimDuration;
use odlb_storage::DomainId;
use odlb_telemetry::{SharedSpanProfiler, Telemetry};
use odlb_trace::Tracer;
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb_workload::{ClientConfig, LoadFunction, WorkloadSpec};

/// Time series for the three panels.
#[derive(Clone, Debug)]
pub struct Fig3Result {
    /// (a) nominal clients per interval.
    pub load: Vec<(f64, usize)>,
    /// (b) machines allocated to TPC-W per interval.
    pub machines: Vec<(f64, usize)>,
    /// (c) average query latency (s) per interval, NaN when idle.
    pub latency: Vec<(f64, f64)>,
    /// SLA outcome per interval (true = met).
    pub sla_met: Vec<bool>,
    /// Interval index where the controller was enabled (after warm-up).
    pub control_from: usize,
    /// Every action the controller took, rendered.
    pub actions: Vec<(f64, String)>,
}

impl Fig3Result {
    /// The largest machine allocation seen.
    pub fn max_machines(&self) -> usize {
        self.machines.iter().map(|&(_, m)| m).max().unwrap_or(0)
    }

    /// Fraction of post-warm-up intervals meeting the SLA.
    pub fn sla_compliance(&self) -> f64 {
        let post = &self.sla_met[self.control_from.min(self.sla_met.len())..];
        if post.is_empty() {
            return 1.0;
        }
        post.iter().filter(|&&m| m).count() as f64 / post.len() as f64
    }
}

/// Multiplies a workload's CPU demands (standing in for the co-located
/// web/application tier the paper's testbed ran alongside MySQL).
pub fn scale_cpu(mut spec: WorkloadSpec, factor: u64) -> WorkloadSpec {
    for class in &mut spec.classes {
        class.cpu_base = class.cpu_base * factor;
        class.cpu_per_page = class.cpu_per_page * factor;
    }
    spec
}

/// Runs the scenario: `intervals` measurement intervals (10 s each), a
/// sinusoid between `min_clients` and `max_clients` with one full period
/// over the post-warm-up run, on a pool of `servers` machines.
pub fn run(
    intervals: usize,
    warmup_intervals: usize,
    min_clients: usize,
    max_clients: usize,
    servers: usize,
) -> Fig3Result {
    run_with(
        Tracer::new(),
        intervals,
        warmup_intervals,
        min_clients,
        max_clients,
        servers,
    )
}

/// [`run`] with a decision tracer attached to the driver and controller
/// (the golden-trace suite and the `--trace` flag go through here).
pub fn run_with(
    tracer: Tracer,
    intervals: usize,
    warmup_intervals: usize,
    min_clients: usize,
    max_clients: usize,
    servers: usize,
) -> Fig3Result {
    run_instrumented(
        tracer,
        Telemetry::inactive(),
        None,
        intervals,
        warmup_intervals,
        min_clients,
        max_clients,
        servers,
    )
}

/// The paper-scale run as a self-contained figure job: 64 intervals
/// (14 warm-up), a 50→450-client sinusoid, 4 servers.
pub fn figure_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
) -> Fig3Result {
    run_instrumented(tracer, telemetry, profiler, 64, 14, 50, 450, 4)
}

/// The miniature smoke-run job (`fig3-mini`): same scenario at CI scale.
pub fn figure_mini_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
) -> Fig3Result {
    run_instrumented(tracer, telemetry, profiler, 30, 10, 30, 480, 3)
}

/// [`run_with`] plus runtime telemetry: the metrics registry is attached
/// to the driver and controller, and the optional profiler times the
/// controller phases. Telemetry is observation-only — the result and run
/// digest are identical to an uninstrumented run.
#[allow(clippy::too_many_arguments)]
pub fn run_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
    intervals: usize,
    warmup_intervals: usize,
    min_clients: usize,
    max_clients: usize,
    servers: usize,
) -> Fig3Result {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 3_2007,
        ..Default::default()
    });
    for _ in 0..servers {
        // Wide RAID stripe: CPU, not the disk, is the studied bottleneck.
        sim.add_server_with_disk(
            4,
            odlb_storage::DiskModel {
                positioning: odlb_sim::SimDuration::from_micros(400),
                transfer_per_page: odlb_sim::SimDuration::from_micros(30),
            },
        );
    }
    let engine = EngineConfig {
        pool_pages: 32_768,
        ..Default::default()
    };
    let inst = sim.add_instance(odlb_metrics::ServerId(0), DomainId(1), engine);
    let period = SimDuration::from_secs(((intervals - warmup_intervals) * 10) as u64);
    let app = sim.add_app(
        scale_cpu(tpcw_workload(TpcwConfig::default()), 12),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Sinusoid {
            min: min_clients,
            max: max_clients,
            period,
        },
    );
    sim.assign_replica(app, inst);
    sim.set_tracer(tracer.clone());
    if telemetry.is_active() {
        sim.set_telemetry(telemetry.clone());
    }
    if let Some(profiler) = &profiler {
        sim.set_profiler(profiler.clone());
    }
    sim.start();

    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    controller.set_tracer(tracer.clone());
    if telemetry.is_active() {
        controller.set_telemetry(telemetry.clone());
    }
    if let Some(profiler) = profiler {
        controller.set_profiler(profiler);
    }
    let mut result = Fig3Result {
        load: Vec::new(),
        machines: Vec::new(),
        latency: Vec::new(),
        sla_met: Vec::new(),
        control_from: warmup_intervals,
        actions: Vec::new(),
    };
    for i in 0..intervals {
        let outcome = sim.run_interval();
        let t = outcome.end.as_secs_f64();
        let nominal = min_clients
            + ((max_clients - min_clients) as f64
                * (1.0 - (2.0 * std::f64::consts::PI * t / period.as_secs_f64()).cos())
                / 2.0)
                .round() as usize;
        result.load.push((t, nominal));
        result.machines.push((t, sim.replicas_of(app).len()));
        result
            .latency
            .push((t, outcome.app_latency[&app].unwrap_or(f64::NAN)));
        result.sla_met.push(!outcome.sla[&app].is_violation());
        if i >= warmup_intervals {
            for action in controller.on_interval(&mut sim, &outcome) {
                if !matches!(action, Action::DetectedOutliers { .. }) {
                    result.actions.push((t, action.to_string()));
                }
            }
        }
    }
    tracer.flush();
    result
}

/// Renders the three panels as aligned columns.
pub fn render(r: &Fig3Result) -> String {
    let mut out = String::new();
    out.push_str("Fig. 3: Alleviation of CPU Contention\n");
    out.push_str(&format!(
        "{:>8}  {:>8}  {:>9}  {:>12}  {:>4}\n",
        "time(s)", "clients", "machines", "latency(s)", "SLA"
    ));
    for i in 0..r.load.len() {
        out.push_str(&format!(
            "{:>8.0}  {:>8}  {:>9}  {:>12.3}  {:>4}\n",
            r.load[i].0,
            r.load[i].1,
            r.machines[i].1,
            r.latency[i].1,
            if r.sla_met[i] { "ok" } else { "VIOL" }
        ));
    }
    out.push_str("\nControl actions:\n");
    for (t, a) in &r.actions {
        out.push_str(&format!("  t={t:>6.0}s  {a}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioning_tracks_the_sine() {
        // Miniature run: 1 period over 20 intervals post-warm-up.
        let r = run(30, 10, 30, 480, 3);
        assert!(
            r.max_machines() >= 2,
            "the peak must trigger provisioning (max {})",
            r.max_machines()
        );
        assert!(
            r.sla_compliance() > 0.5,
            "most intervals should meet the SLA ({:.2})",
            r.sla_compliance()
        );
        // Machines at the trough end are fewer than at the peak.
        let peak = r.machines.iter().map(|&(_, m)| m).max().unwrap();
        let last = r.machines.last().unwrap().1;
        assert!(
            last <= peak,
            "allocation should shrink after the peak: {last} vs {peak}"
        );
    }

    #[test]
    fn cpu_scaling_multiplies_demand() {
        let base = tpcw_workload(TpcwConfig::default());
        let scaled = scale_cpu(base.clone(), 8);
        assert_eq!(scaled.classes[0].cpu_base, base.classes[0].cpu_base * 8);
    }
}
