//! Experiment implementations, one per paper artifact.

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod mrc_common;
pub mod sampled;
pub mod scale;
pub mod table1;
pub mod table2;
pub mod table3;
