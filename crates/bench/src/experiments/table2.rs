//! Table 2 — memory contention in a shared buffer pool (§5.4).
//!
//! TPC-W runs alone in a DBMS with a 128 MB (8192-page) pool; then RUBiS
//! starts *inside the same DBMS*, sharing the pool. TPC-W's latency blows
//! up ~10× and throughput collapses. The controller's diagnosis finds that
//! TPC-W's own classes show outlier memory counters but unchanged MRCs —
//! the newly added RUBiS classes are the problem, and SearchItemsByRegion
//! (acceptable memory ≈ 7.9k pages) cannot co-locate — so it is re-placed
//! onto a different replica, after which TPC-W recovers most of its
//! throughput and latency.

use odlb_cluster::{Simulation, SimulationConfig};
use odlb_core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb_engine::EngineConfig;
use odlb_metrics::{AppId, Sla};
use odlb_sim::SimTime;
use odlb_storage::DomainId;
use odlb_workload::rubis::{rubis_workload, RubisConfig, SEARCH_ITEMS_BY_REGION};
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb_workload::{ClientConfig, LoadFunction};

/// One row of Table 2 (TPC-W's view).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// TPC-W mean latency (s).
    pub latency_s: f64,
    /// TPC-W throughput (interactions/s — the paper's WIPS analogue).
    pub throughput: f64,
}

/// The three phases of the scenario.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// TPC-W alone in the DBMS.
    pub alone: Table2Row,
    /// TPC-W + RUBiS sharing the pool (worst interval after the join).
    pub shared: Table2Row,
    /// After SearchItemsByRegion was re-placed on another replica.
    pub recovered: Table2Row,
    /// Whether the controller re-placed SearchItemsByRegion specifically.
    pub moved_sibr: bool,
    /// All actions, rendered.
    pub actions: Vec<String>,
}

/// Runs the scenario. Phase lengths in 10 s measurement intervals.
pub fn run(
    tpcw_clients: usize,
    rubis_clients: usize,
    alone_intervals: usize,
    shared_intervals: usize,
    recovery_intervals: usize,
) -> Table2Result {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 2_2007,
        ..Default::default()
    });
    let s0 = sim.add_server(4);
    sim.add_server(4); // free pool for the re-placement target
    let inst = sim.add_instance(s0, DomainId(1), EngineConfig::default());
    let tpcw = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(tpcw_clients),
    );
    let join_at = SimTime::from_secs((alone_intervals * 10) as u64);
    let rubis = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(1),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Step {
            before: 0,
            after: rubis_clients,
            at: join_at,
        },
    );
    sim.assign_replica(tpcw, inst);
    sim.assign_replica(rubis, inst);
    sim.start();

    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    let sibr = odlb_metrics::ClassId::new(AppId(1), SEARCH_ITEMS_BY_REGION as u32);
    let mut result = Table2Result {
        alone: Table2Row {
            latency_s: f64::NAN,
            throughput: 0.0,
        },
        shared: Table2Row {
            latency_s: 0.0,
            throughput: f64::INFINITY,
        },
        recovered: Table2Row {
            latency_s: f64::NAN,
            throughput: 0.0,
        },
        moved_sibr: false,
        actions: Vec::new(),
    };

    // Phase A: alone (controller records stable states).
    for _ in 0..alone_intervals {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
        if let Some(lat) = outcome.app_latency[&tpcw] {
            result.alone = Table2Row {
                latency_s: lat,
                throughput: outcome.app_throughput[&tpcw],
            };
        }
    }

    // Phase B: RUBiS joins; the controller is held off so the row shows
    // the full damage of the shared configuration (the paper measures the
    // broken placement as its own table row before applying the remedy).
    for _ in 0..shared_intervals {
        let outcome = sim.run_interval();
        if let Some(lat) = outcome.app_latency[&tpcw] {
            if lat > result.shared.latency_s {
                result.shared = Table2Row {
                    latency_s: lat,
                    throughput: outcome.app_throughput[&tpcw],
                };
            }
        }
    }

    // Phase C: the controller diagnoses and re-places. The "recovered"
    // row averages the intervals after the SearchItemsByRegion placement
    // and before any coarse-grained fallback — the paper's third row is
    // measured exactly at that stage.
    let mut recovered_lat = Vec::new();
    let mut recovered_tput = Vec::new();
    let mut fallback_seen = false;
    for _ in 0..recovery_intervals {
        let outcome = sim.run_interval();
        for action in controller.on_interval(&mut sim, &outcome) {
            match &action {
                Action::PlacedClass { class, .. } if *class == sibr => {
                    result.moved_sibr = true;
                    result.actions.push(action.to_string());
                }
                Action::CoarseFallback { .. } => {
                    fallback_seen = true;
                    result.actions.push(action.to_string());
                }
                Action::DetectedOutliers { .. } => {}
                _ => result.actions.push(action.to_string()),
            }
        }
        if result.moved_sibr && !fallback_seen {
            if let Some(lat) = outcome.app_latency[&tpcw] {
                recovered_lat.push(lat);
                recovered_tput.push(outcome.app_throughput[&tpcw]);
            }
        }
    }
    // Skip the first post-placement interval (warm-up of the new replica).
    let tail = recovered_lat
        .len()
        .min(recovered_lat.len().saturating_sub(1).max(1));
    if !recovered_lat.is_empty() {
        let from = recovered_lat.len() - tail;
        result.recovered = Table2Row {
            latency_s: recovered_lat[from..].iter().sum::<f64>() / tail as f64,
            throughput: recovered_tput[from..].iter().sum::<f64>() / tail as f64,
        };
    }
    result
}

/// Renders the table in the paper's layout.
/// The paper-scale run as a self-contained figure job: returns the
/// rendered table the experiments suite prints.
pub fn figure() -> String {
    render(&run(45, 80, 10, 6, 15))
}

pub fn render(r: &Table2Result) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Effect of memory contention in a shared buffer pool\n\n");
    out.push_str(&format!(
        "{:<44}{:>12}{:>16}\n",
        "Placement", "Latency (s)", "Tput (q/s)"
    ));
    let row = |label: &str, r: &Table2Row| {
        format!("{:<44}{:>12.2}{:>16.2}\n", label, r.latency_s, r.throughput)
    };
    out.push_str(&row("TPC-W | IDLE", &r.alone));
    out.push_str(&row("TPC-W + RUBiS (shared pool)", &r.shared));
    out.push_str(&row(
        "TPC-W + RUBiS-1 (SearchItemsByRegion re-placed)",
        &r.recovered,
    ));
    out.push_str(&format!(
        "\nSearchItemsByRegion re-placed automatically: {}\n",
        r.moved_sibr
    ));
    out.push_str("Actions:\n");
    for a in &r.actions {
        out.push_str(&format!("  {a}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_collapse_and_recovery() {
        let r = run(45, 80, 10, 6, 12);
        // Sharing degrades TPC-W severely (paper: ~10x).
        assert!(
            r.shared.latency_s > r.alone.latency_s * 3.0,
            "shared {:.2}s vs alone {:.2}s",
            r.shared.latency_s,
            r.alone.latency_s
        );
        // The controller moved SearchItemsByRegion specifically.
        assert!(r.moved_sibr, "actions: {:?}", r.actions);
        // Recovery: latency comes most of the way back (the paper's own
        // recovery is partial too: 5.42 s -> 1.27 s with a 0.6 s baseline).
        assert!(
            r.recovered.latency_s < r.shared.latency_s * 0.65,
            "recovered {:.2}s vs shared {:.2}s",
            r.recovered.latency_s,
            r.shared.latency_s
        );
    }
}
